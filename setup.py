"""Setuptools entry point.

Metadata lives here so that legacy editable installs
(``pip install -e . --no-build-isolation``) work in offline environments
where the ``wheel`` package is unavailable.

numpy powers the columnar data plane (``ClusterConfig.data_plane=
"columnar"``); ``repro.mapreduce.columnar`` imports it guardedly and the
engine falls back to the record path when it is missing, so the package
itself stays importable without it.  The lower bound tracks the oldest
release whose stable integer sorts and structured indexing the vectorized
kernels rely on.
"""

from setuptools import find_packages, setup

setup(
    name="repro-shares",
    version="0.6.0",
    description=(
        "Reproduction of 'Upper and Lower Bounds on the Cost of a "
        "Map-Reduce Computation' (Afrati et al., PVLDB 2013)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
)
