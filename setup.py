"""Setuptools entry point.

Kept alongside pyproject.toml so that legacy editable installs
(``pip install -e . --no-build-isolation``) work in offline environments
where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
