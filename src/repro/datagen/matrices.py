"""Matrix workload generators for the matrix-multiplication experiments.

The map-reduce matrix-multiplication algorithms operate on *element records*
``("R", i, j, value)`` / ``("S", j, k, value)`` rather than on dense arrays,
because the unit of communication in the paper's model is one matrix
element.  Helpers convert between dense numpy arrays and element records.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: An element record: (matrix name, row index, column index, value).
ElementRecord = Tuple[str, int, int, float]


def random_matrix(n: int, seed: int | None = None, low: float = -1.0, high: float = 1.0) -> np.ndarray:
    """A dense n×n matrix with uniform random entries (reproducible by seed)."""
    if n <= 0:
        raise ConfigurationError(f"matrix dimension must be positive, got {n}")
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=(n, n))


def integer_matrix(n: int, seed: int | None = None, low: int = 0, high: int = 10) -> np.ndarray:
    """A dense n×n integer matrix; exact arithmetic makes test comparisons easy."""
    if n <= 0:
        raise ConfigurationError(f"matrix dimension must be positive, got {n}")
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=(n, n)).astype(float)


def matrix_to_records(matrix: np.ndarray, name: str) -> List[ElementRecord]:
    """Flatten a dense matrix into element records tagged with ``name``."""
    if matrix.ndim != 2:
        raise ConfigurationError("matrix_to_records expects a 2-D array")
    rows, cols = matrix.shape
    records: List[ElementRecord] = []
    for i in range(rows):
        for j in range(cols):
            records.append((name, i, j, float(matrix[i, j])))
    return records


def multiplication_records(
    left: np.ndarray, right: np.ndarray, left_name: str = "R", right_name: str = "S"
) -> List[ElementRecord]:
    """Element records for both operands of a product ``left @ right``."""
    if left.shape[1] != right.shape[0]:
        raise ConfigurationError(
            f"inner dimensions do not match: {left.shape} @ {right.shape}"
        )
    return matrix_to_records(left, left_name) + matrix_to_records(right, right_name)


def records_to_matrix(
    records: Iterable[Tuple[int, int, float]], n_rows: int, n_cols: int
) -> np.ndarray:
    """Assemble ``(i, k, value)`` output records into a dense matrix.

    Missing entries default to zero, which is the correct completion for
    sparse products; duplicate entries are summed (partial sums from the
    two-phase algorithm can be fed directly).
    """
    result = np.zeros((n_rows, n_cols))
    for i, k, value in records:
        if not (0 <= i < n_rows and 0 <= k < n_cols):
            raise ConfigurationError(
                f"output record ({i}, {k}) outside a {n_rows}x{n_cols} matrix"
            )
        result[i, k] += value
    return result
