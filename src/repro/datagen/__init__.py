"""Workload generators: bit strings, graphs, matrices and relations.

Everything here is synthetic and seeded, replacing the real data sets
(social graphs, production relations) the paper's motivating applications
would use, per the substitution policy in DESIGN.md.
"""

from repro.datagen.bitstrings import (
    all_bitstrings,
    all_pairs_at_distance,
    bernoulli_bitstrings,
    from_text,
    hamming_distance,
    join_segments,
    neighbors_at_distance_one,
    random_bitstrings,
    split_segments,
    to_text,
    weight,
)
from repro.datagen.graphs import (
    complete_graph_edges,
    count_triangles_oracle,
    cycle_graph_edges,
    enumerate_triangles_oracle,
    enumerate_two_paths_oracle,
    gnm_random_graph,
    gnp_random_graph,
    node_degrees,
    normalize_edge,
    skewed_graph,
    to_networkx,
)
from repro.datagen.matrices import (
    ElementRecord,
    integer_matrix,
    matrix_to_records,
    multiplication_records,
    random_matrix,
    records_to_matrix,
)
from repro.datagen.relations import (
    RelationInstance,
    binary_join_instance,
    chain_join_instance,
    fk_chain_join_instance,
    multiway_join_oracle,
    natural_join_oracle,
    random_relation,
    skewed_chain_join_instance,
    star_join_instance,
    zipf_relation,
)

__all__ = [
    "ElementRecord",
    "RelationInstance",
    "all_bitstrings",
    "all_pairs_at_distance",
    "bernoulli_bitstrings",
    "binary_join_instance",
    "chain_join_instance",
    "complete_graph_edges",
    "count_triangles_oracle",
    "cycle_graph_edges",
    "enumerate_triangles_oracle",
    "enumerate_two_paths_oracle",
    "fk_chain_join_instance",
    "from_text",
    "gnm_random_graph",
    "gnp_random_graph",
    "hamming_distance",
    "integer_matrix",
    "join_segments",
    "matrix_to_records",
    "multiplication_records",
    "multiway_join_oracle",
    "natural_join_oracle",
    "neighbors_at_distance_one",
    "node_degrees",
    "normalize_edge",
    "random_bitstrings",
    "random_matrix",
    "random_relation",
    "records_to_matrix",
    "skewed_chain_join_instance",
    "skewed_graph",
    "split_segments",
    "star_join_instance",
    "to_networkx",
    "to_text",
    "weight",
    "zipf_relation",
]
