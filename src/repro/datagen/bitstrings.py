"""Bit-string universes and samples for the Hamming-distance problems.

Bit strings are represented as plain Python integers in ``range(2**b)``;
helper functions convert to and from ``'0'``/``'1'`` text when a printable
form is needed.  Integer representation keeps the universe of all ``2^b``
strings cheap to enumerate and makes Hamming-distance computation a popcount
of an XOR.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from repro.exceptions import ConfigurationError


def all_bitstrings(b: int) -> Iterator[int]:
    """Yield every bit string of length ``b`` as an integer in [0, 2^b)."""
    if b < 0:
        raise ConfigurationError(f"bit-string length must be non-negative, got {b}")
    return iter(range(1 << b))


def random_bitstrings(b: int, count: int, seed: int | None = None) -> List[int]:
    """Sample ``count`` distinct bit strings of length ``b`` uniformly.

    Raises :class:`ConfigurationError` if more strings are requested than
    exist in the universe.
    """
    universe_size = 1 << b
    if count > universe_size:
        raise ConfigurationError(
            f"cannot sample {count} distinct strings from a universe of {universe_size}"
        )
    rng = random.Random(seed)
    if count > universe_size // 2:
        population = list(range(universe_size))
        rng.shuffle(population)
        return population[:count]
    chosen: set[int] = set()
    while len(chosen) < count:
        chosen.add(rng.randrange(universe_size))
    return sorted(chosen)


def bernoulli_bitstrings(b: int, probability: float, seed: int | None = None) -> List[int]:
    """Include each of the ``2^b`` strings independently with ``probability``.

    This matches the independence assumption of Section 2.3, where each
    potential input is present with a fixed probability.
    """
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(f"probability must be in [0, 1], got {probability}")
    rng = random.Random(seed)
    return [word for word in range(1 << b) if rng.random() < probability]


def hamming_distance(x: int, y: int) -> int:
    """Hamming distance between two same-length bit strings (as integers)."""
    return (x ^ y).bit_count()


def neighbors_at_distance_one(word: int, b: int) -> Iterator[int]:
    """Yield the ``b`` strings at Hamming distance exactly 1 from ``word``."""
    for position in range(b):
        yield word ^ (1 << position)


def weight(word: int) -> int:
    """Number of 1 bits in the string (its weight, Section 3.4)."""
    return word.bit_count()


def split_segments(word: int, b: int, num_segments: int) -> Tuple[int, ...]:
    """Split a ``b``-bit string into ``num_segments`` equal-length segments.

    Segment 0 holds the most-significant ``b / num_segments`` bits, matching
    the "first half / second half" wording of Section 3.3.  ``num_segments``
    must divide ``b`` evenly.
    """
    if num_segments <= 0:
        raise ConfigurationError("num_segments must be positive")
    if b % num_segments != 0:
        raise ConfigurationError(
            f"num_segments={num_segments} must divide the string length b={b}"
        )
    segment_length = b // num_segments
    mask = (1 << segment_length) - 1
    segments = []
    for index in range(num_segments):
        shift = (num_segments - 1 - index) * segment_length
        segments.append((word >> shift) & mask)
    return tuple(segments)


def join_segments(segments: Sequence[int], segment_length: int) -> int:
    """Inverse of :func:`split_segments`: concatenate segments into a string."""
    word = 0
    for segment in segments:
        if segment < 0 or segment >= (1 << segment_length):
            raise ConfigurationError(
                f"segment {segment} does not fit in {segment_length} bits"
            )
        word = (word << segment_length) | segment
    return word


def to_text(word: int, b: int) -> str:
    """Render an integer bit string as a '0'/'1' text string of length b."""
    if word < 0 or word >= (1 << b):
        raise ConfigurationError(f"{word} is not a {b}-bit string")
    return format(word, f"0{b}b")


def from_text(text: str) -> int:
    """Parse a '0'/'1' text string into its integer representation."""
    if not text or any(char not in "01" for char in text):
        raise ConfigurationError(f"{text!r} is not a binary string")
    return int(text, 2)


def all_pairs_at_distance(words: Sequence[int], distance: int) -> List[Tuple[int, int]]:
    """Serial oracle: all unordered pairs of ``words`` at exactly ``distance``.

    Quadratic in the number of words; used by tests and benchmarks to verify
    the map-reduce similarity-join algorithms.
    """
    pairs: List[Tuple[int, int]] = []
    ordered = sorted(set(words))
    for index, first in enumerate(ordered):
        for second in ordered[index + 1 :]:
            if hamming_distance(first, second) == distance:
                pairs.append((first, second))
    return pairs
