"""Relation generators for the join experiments (Sections 2.1 and 5.5).

Relations are lists of tuples over small integer attribute domains.  The
generators cover the three join shapes the paper analyses:

* the binary natural join R(A,B) ⋈ S(B,C) of Example 2.1,
* chain joins R1(A0,A1) ⋈ R2(A1,A2) ⋈ ... ⋈ RN(A_{N-1},A_N),
* star joins of a large fact table with N smaller dimension tables.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError

Tuple_ = Tuple[int, ...]


@dataclass(frozen=True)
class RelationInstance:
    """A named relation: attribute names plus a list of tuples."""

    name: str
    attributes: Tuple[str, ...]
    tuples: Tuple[Tuple_, ...]

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def size(self) -> int:
        return len(self.tuples)

    def project(self, attribute: str) -> List[int]:
        """Values of one attribute across all tuples (with duplicates)."""
        try:
            index = self.attributes.index(attribute)
        except ValueError as error:
            raise ConfigurationError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from error
        return [row[index] for row in self.tuples]


def random_relation(
    name: str,
    attributes: Sequence[str],
    size: int,
    domain_size: int,
    seed: int | None = None,
) -> RelationInstance:
    """A relation with ``size`` distinct random tuples over [0, domain_size)."""
    if size < 0:
        raise ConfigurationError("relation size must be non-negative")
    if domain_size <= 0:
        raise ConfigurationError("domain size must be positive")
    max_tuples = domain_size ** len(attributes)
    if size > max_tuples:
        raise ConfigurationError(
            f"cannot build {size} distinct tuples over a domain of {max_tuples}"
        )
    rng = random.Random(seed)
    rows: set[Tuple_] = set()
    while len(rows) < size:
        rows.add(tuple(rng.randrange(domain_size) for _ in attributes))
    return RelationInstance(name=name, attributes=tuple(attributes), tuples=tuple(sorted(rows)))


def zipf_relation(
    name: str,
    attributes: Sequence[str],
    size: int,
    domain_size: int,
    skew: float = 1.2,
    skewed_attribute: str | None = None,
    seed: int | None = None,
) -> RelationInstance:
    """A relation whose ``skewed_attribute`` column is Zipf-distributed.

    Values of the skewed attribute are drawn from a truncated Zipf law over
    ``[0, domain_size)`` — value ``i`` with probability proportional to
    ``1 / (i + 1) ** skew`` — while every other attribute stays uniform, so
    value 0 is the heaviest join key and ``skew`` (the documented skew
    parameter; 0 recovers the uniform generator, the paper-style skewed
    workloads use 1.2) controls how hard it dominates.  Tuples are distinct,
    which models *degree* skew: the heavy value accumulates many distinct
    join partners.  Seeded and fully reproducible.

    Because heavy values exhaust their distinct-partner supply, the
    generator stops after a bounded number of attempts; the returned
    relation may then hold fewer than ``size`` tuples (it never silently
    un-skews the distribution to hit the count).
    """
    if size < 0:
        raise ConfigurationError("relation size must be non-negative")
    if domain_size <= 0:
        raise ConfigurationError("domain size must be positive")
    if skew < 0:
        raise ConfigurationError(f"skew must be non-negative, got {skew}")
    attributes = tuple(attributes)
    if skewed_attribute is None:
        skewed_attribute = attributes[0]
    if skewed_attribute not in attributes:
        raise ConfigurationError(
            f"skewed attribute {skewed_attribute!r} is not among {attributes}"
        )
    skew_index = attributes.index(skewed_attribute)
    # Cumulative weights computed once; random.choices would otherwise
    # rebuild the O(domain_size) table on every draw of the rejection loop.
    cumulative = list(
        itertools.accumulate(
            1.0 / (value + 1) ** skew for value in range(domain_size)
        )
    )
    domain = range(domain_size)
    rng = random.Random(seed)
    rows: set[Tuple_] = set()
    attempts = 0
    max_attempts = 50 * size + 100
    while len(rows) < size and attempts < max_attempts:
        attempts += 1
        row = [rng.randrange(domain_size) for _ in attributes]
        row[skew_index] = rng.choices(domain, cum_weights=cumulative)[0]
        rows.add(tuple(row))
    return RelationInstance(
        name=name, attributes=attributes, tuples=tuple(sorted(rows))
    )


def skewed_chain_join_instance(
    num_relations: int,
    size_each: int,
    domain_size: int,
    skew: float = 1.2,
    skewed_attribute: str = "A1",
    seed: int | None = None,
) -> List[RelationInstance]:
    """A chain-join instance with one Zipf-skewed shared attribute.

    Every relation containing ``skewed_attribute`` (for the default ``A1``:
    R1 and R2) draws that column from Zipf(``skew``); all other columns and
    relations are uniform.  This is the reproducible skew workload the
    skew-aware planner tests and ``bench_skew_join`` run on.
    """
    if num_relations < 2:
        raise ConfigurationError("a chain join needs at least 2 relations")
    relations: List[RelationInstance] = []
    for index in range(num_relations):
        relation_seed = None if seed is None else seed + index
        name = f"R{index + 1}"
        attributes = (f"A{index}", f"A{index + 1}")
        if skewed_attribute in attributes:
            relations.append(
                zipf_relation(
                    name,
                    attributes,
                    size_each,
                    domain_size,
                    skew=skew,
                    skewed_attribute=skewed_attribute,
                    seed=relation_seed,
                )
            )
        else:
            relations.append(
                random_relation(name, attributes, size_each, domain_size, seed=relation_seed)
            )
    return relations


def fk_chain_join_instance(
    num_relations: int,
    size_each: int,
    domain_size: int,
    degree_cap: int = 1,
    fk_skew: float = 0.0,
    seed: int | None = None,
) -> List[RelationInstance]:
    """A chain join whose *left* attributes are degree-capped (key → FK).

    Each relation ``Ri(A_{i-1}, A_i)`` uses its first attribute as a key:
    any value of ``A_{i-1}`` appears in at most ``degree_cap`` tuples of
    ``Ri``.  With the default cap of 1 the left column is a true key, so
    every relation carries the functional dependency ``A_{i-1} → A_i`` and
    the join result can never exceed ``|R1|`` — the regime where
    degree-constraint bounds are strictly tighter than AGM (which only
    sees row counts and charges the full fractional-cover product).

    ``fk_skew > 0`` draws the *right* column (the foreign key referencing
    the next relation's key) from a truncated Zipf law instead of
    uniformly — the classic fact-to-popular-dimension shape, where a few
    referenced keys dominate while the referencing side keeps its
    key/FD structure intact.  Seeded and fully reproducible; tuples are
    distinct and sorted.
    """
    if num_relations < 2:
        raise ConfigurationError("a chain join needs at least 2 relations")
    if degree_cap < 1:
        raise ConfigurationError(f"degree cap must be >= 1, got {degree_cap}")
    if fk_skew < 0:
        raise ConfigurationError(f"fk_skew must be non-negative, got {fk_skew}")
    if size_each > domain_size * degree_cap:
        raise ConfigurationError(
            f"cannot place {size_each} tuples with left-attribute degree "
            f"<= {degree_cap} over a domain of {domain_size}"
        )
    cumulative = (
        list(
            itertools.accumulate(
                1.0 / (value + 1) ** fk_skew for value in range(domain_size)
            )
        )
        if fk_skew > 0
        else None
    )
    domain = range(domain_size)
    relations: List[RelationInstance] = []
    for index in range(num_relations):
        rng = random.Random(None if seed is None else seed + index)
        rows: set[Tuple_] = set()
        degrees: Dict[int, int] = {}
        while len(rows) < size_each:
            key = rng.randrange(domain_size)
            if degrees.get(key, 0) >= degree_cap:
                continue
            if cumulative is not None:
                value = rng.choices(domain, cum_weights=cumulative)[0]
            else:
                value = rng.randrange(domain_size)
            row = (key, value)
            if row in rows:
                continue
            rows.add(row)
            degrees[key] = degrees.get(key, 0) + 1
        relations.append(
            RelationInstance(
                name=f"R{index + 1}",
                attributes=(f"A{index}", f"A{index + 1}"),
                tuples=tuple(sorted(rows)),
            )
        )
    return relations


def binary_join_instance(
    size_r: int, size_s: int, domain_size: int, seed: int | None = None
) -> Tuple[RelationInstance, RelationInstance]:
    """R(A,B) and S(B,C) instances for the Example 2.1 natural join."""
    r = random_relation("R", ("A", "B"), size_r, domain_size, seed=seed)
    s = random_relation("S", ("B", "C"), size_s, domain_size, seed=None if seed is None else seed + 1)
    return r, s


def chain_join_instance(
    num_relations: int,
    size_each: int,
    domain_size: int,
    seed: int | None = None,
) -> List[RelationInstance]:
    """Relations R1(A0,A1) ... RN(A_{N-1},A_N) of a chain join."""
    if num_relations < 2:
        raise ConfigurationError("a chain join needs at least 2 relations")
    relations = []
    for index in range(num_relations):
        relation_seed = None if seed is None else seed + index
        relations.append(
            random_relation(
                name=f"R{index + 1}",
                attributes=(f"A{index}", f"A{index + 1}"),
                size=size_each,
                domain_size=domain_size,
                seed=relation_seed,
            )
        )
    return relations


def star_join_instance(
    num_dimensions: int,
    fact_size: int,
    dimension_size: int,
    domain_size: int,
    seed: int | None = None,
) -> Tuple[RelationInstance, List[RelationInstance]]:
    """A fact table F(K1..KN) plus N dimension tables Di(Ki, Vi).

    Dimension tables pairwise share no attributes (as the paper assumes);
    each shares exactly its key attribute with the fact table.
    """
    if num_dimensions < 1:
        raise ConfigurationError("a star join needs at least one dimension table")
    fact_attributes = tuple(f"K{i + 1}" for i in range(num_dimensions))
    fact = random_relation("F", fact_attributes, fact_size, domain_size, seed=seed)
    dimensions = []
    for index in range(num_dimensions):
        dim_seed = None if seed is None else seed + 100 + index
        dimensions.append(
            random_relation(
                name=f"D{index + 1}",
                attributes=(f"K{index + 1}", f"V{index + 1}"),
                size=dimension_size,
                domain_size=domain_size,
                seed=dim_seed,
            )
        )
    return fact, dimensions


def natural_join_oracle(
    left: RelationInstance, right: RelationInstance
) -> List[Tuple_]:
    """Serial hash-join oracle producing the natural join of two relations.

    The output tuple layout is the left tuple followed by the right tuple's
    non-shared attributes, in attribute order.
    """
    shared = [attr for attr in left.attributes if attr in right.attributes]
    if not shared:
        raise ConfigurationError(
            f"relations {left.name!r} and {right.name!r} share no attributes"
        )
    left_indices = [left.attributes.index(attr) for attr in shared]
    right_indices = [right.attributes.index(attr) for attr in shared]
    right_keep = [
        index for index, attr in enumerate(right.attributes) if attr not in shared
    ]
    table: Dict[Tuple_, List[Tuple_]] = {}
    for row in right.tuples:
        key = tuple(row[i] for i in right_indices)
        table.setdefault(key, []).append(row)
    joined: List[Tuple_] = []
    for row in left.tuples:
        key = tuple(row[i] for i in left_indices)
        for match in table.get(key, []):
            joined.append(row + tuple(match[i] for i in right_keep))
    return joined


def multiway_join_oracle(relations: Sequence[RelationInstance]) -> Tuple[List[str], List[Tuple_]]:
    """Serial left-to-right multiway natural join oracle.

    Returns the output attribute order and the joined tuples.  Intended for
    verifying the Shares algorithm on small instances, not for performance.
    """
    if not relations:
        raise ConfigurationError("multiway join needs at least one relation")
    attributes = list(relations[0].attributes)
    rows = [tuple(row) for row in relations[0].tuples]
    for relation in relations[1:]:
        shared = [attr for attr in attributes if attr in relation.attributes]
        new_attrs = [attr for attr in relation.attributes if attr not in attributes]
        rel_shared_idx = [relation.attributes.index(attr) for attr in shared]
        rel_new_idx = [relation.attributes.index(attr) for attr in new_attrs]
        acc_shared_idx = [attributes.index(attr) for attr in shared]
        table: Dict[Tuple_, List[Tuple_]] = {}
        for row in relation.tuples:
            key = tuple(row[i] for i in rel_shared_idx)
            table.setdefault(key, []).append(row)
        next_rows: List[Tuple_] = []
        for row in rows:
            key = tuple(row[i] for i in acc_shared_idx)
            for match in table.get(key, []):
                next_rows.append(row + tuple(match[i] for i in rel_new_idx))
        rows = next_rows
        attributes.extend(new_attrs)
    return attributes, rows
