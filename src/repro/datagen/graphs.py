"""Graph generators for the triangle / subgraph / 2-path experiments.

Graphs are represented as sorted tuples of undirected edges, each edge being
a pair ``(u, v)`` with ``u < v`` over nodes ``0 .. n-1``.  Conversion to and
from :mod:`networkx` is provided for the oracles used in tests.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.exceptions import ConfigurationError

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (min, max) form of an undirected edge."""
    if u == v:
        raise ConfigurationError(f"self-loop ({u}, {v}) is not a valid edge")
    return (u, v) if u < v else (v, u)


def complete_graph_edges(n: int) -> List[Edge]:
    """All C(n, 2) edges of the complete graph on nodes 0..n-1."""
    if n < 0:
        raise ConfigurationError(f"node count must be non-negative, got {n}")
    return [(u, v) for u, v in itertools.combinations(range(n), 2)]


def gnm_random_graph(n: int, m: int, seed: int | None = None) -> List[Edge]:
    """Uniform random graph with exactly ``m`` of the C(n,2) possible edges.

    This is the G(n, m) model assumed by the sparse-graph analysis of
    Section 4.2: the present edges are a uniformly random m-subset of all
    possible edges.
    """
    possible = n * (n - 1) // 2
    if m > possible:
        raise ConfigurationError(
            f"cannot place {m} edges in a graph with only {possible} possible edges"
        )
    rng = random.Random(seed)
    all_edges = complete_graph_edges(n)
    rng.shuffle(all_edges)
    return sorted(all_edges[:m])


def gnp_random_graph(n: int, p: float, seed: int | None = None) -> List[Edge]:
    """Erdős–Rényi G(n, p): include each possible edge with probability p."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
    rng = random.Random(seed)
    return [edge for edge in complete_graph_edges(n) if rng.random() < p]


def skewed_graph(
    n: int, m: int, hub_fraction: float = 0.1, seed: int | None = None
) -> List[Edge]:
    """A graph with a few high-degree "hub" nodes and a random remainder.

    Used to exercise the skew discussion of Section 1.4: nodes whose degree
    exceeds the reducer limit ``q`` force alternative algorithms.  Roughly
    half the edges touch a hub node chosen from the first
    ``hub_fraction * n`` nodes; the rest are uniform.
    """
    if not 0.0 < hub_fraction <= 1.0:
        raise ConfigurationError("hub_fraction must be in (0, 1]")
    rng = random.Random(seed)
    num_hubs = max(1, int(hub_fraction * n))
    edges: Set[Edge] = set()
    attempts = 0
    max_attempts = 50 * m + 100
    while len(edges) < m and attempts < max_attempts:
        attempts += 1
        if rng.random() < 0.5:
            hub = rng.randrange(num_hubs)
            other = rng.randrange(n)
            if other == hub:
                continue
            edges.add(normalize_edge(hub, other))
        else:
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            edges.add(normalize_edge(u, v))
    return sorted(edges)


def cycle_graph_edges(n: int) -> List[Edge]:
    """Edges of the n-node cycle 0-1-...-(n-1)-0."""
    if n < 3:
        raise ConfigurationError("a cycle needs at least 3 nodes")
    return sorted(normalize_edge(i, (i + 1) % n) for i in range(n))


def to_networkx(edges: Iterable[Edge]) -> nx.Graph:
    """Build a networkx graph from an edge list (used by test oracles)."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return graph


def count_triangles_oracle(edges: Iterable[Edge]) -> int:
    """Serial triangle count via networkx, used to verify the MR algorithms."""
    graph = to_networkx(edges)
    return sum(nx.triangles(graph).values()) // 3


def enumerate_triangles_oracle(edges: Iterable[Edge]) -> Set[Tuple[int, int, int]]:
    """Serial triangle enumeration returning sorted node triples."""
    graph = to_networkx(edges)
    triangles: Set[Tuple[int, int, int]] = set()
    for clique in nx.enumerate_all_cliques(graph):
        if len(clique) == 3:
            triangles.add(tuple(sorted(clique)))
        elif len(clique) > 3:
            break
    return triangles


def enumerate_two_paths_oracle(edges: Iterable[Edge]) -> Set[Tuple[int, int, int]]:
    """Serial enumeration of 2-paths, as (end, middle, end) with ends sorted.

    A 2-path v-u-w is identified by its middle node u and the unordered pair
    of its endpoints {v, w}; the canonical form is (min(v, w), u, max(v, w)).
    """
    adjacency: dict[int, Set[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    result: Set[Tuple[int, int, int]] = set()
    for middle, neighbors in adjacency.items():
        for v, w in itertools.combinations(sorted(neighbors), 2):
            result.add((v, middle, w))
    return result


def node_degrees(edges: Iterable[Edge]) -> dict[int, int]:
    """Degree of every node appearing in the edge list."""
    degrees: dict[int, int] = {}
    for u, v in edges:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    return degrees
