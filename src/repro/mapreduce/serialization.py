"""Closure-aware job serialization for persistent worker pools.

Every schema family builds its :class:`~repro.mapreduce.job.MapReduceJob`
from closures (the mapper captures the schema object), which stock
``pickle`` refuses to serialize.  The original parallel executor therefore
forked a fresh pool per run, publishing the job in parent memory just
before the fork so workers inherit it — correct, but the pool can never be
reused: an already-forked worker would keep serving the *old* job.

This module removes that restriction with a small, self-contained function
serializer: plain functions (including nested closures and lambdas) are
packed as ``(marshal'd code object, module name, defaults, packed closure
cells)`` and rebuilt in the worker with :class:`types.FunctionType`; cell
contents and everything else go through ordinary :mod:`pickle`, recursing
back into the function path when a cell holds another function.  Globals
are re-bound to the function's origin module, which fork-started workers
share with the parent by construction (they inherit ``sys.modules`` at
fork time).

Anything outside that envelope — builtin-method callables, closures over
unpicklable non-function objects — raises :class:`JobSerializationError`,
and the executor falls back to the original fork-publication path for that
run.  No third-party serializer (cloudpickle & co.) is required.
"""

from __future__ import annotations

import importlib
import marshal
import pickle
import sys
import types
from typing import Any, Dict, Optional, Tuple

from repro.mapreduce.job import MapReduceJob


class JobSerializationError(Exception):
    """The job cannot be shipped to an already-running worker."""


#: Guard against pathological closure chains.
_MAX_DEPTH = 16


def _pack_value(value: Any, depth: int) -> Tuple[str, Any]:
    if depth > _MAX_DEPTH:
        raise JobSerializationError("closure nesting too deep to serialize")
    if isinstance(value, types.FunctionType):
        # Module-level functions pickle by reference (cheap, and robust to
        # decorators); only genuinely nested functions need the code path.
        try:
            return ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return ("function", _pack_function(value, depth))
    try:
        return ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as error:
        if isinstance(value, tuple):
            return ("tuple", tuple(_pack_value(item, depth + 1) for item in value))
        raise JobSerializationError(
            f"cannot serialize closure value {value!r}: {error}"
        ) from error


def _unpack_value(packed: Tuple[str, Any]) -> Any:
    tag, payload = packed
    if tag == "pickle":
        return pickle.loads(payload)
    if tag == "function":
        return _unpack_function(payload)
    if tag == "tuple":
        return tuple(_unpack_value(item) for item in payload)
    raise JobSerializationError(f"unknown serialization tag {tag!r}")


def _pack_function(fn: types.FunctionType, depth: int) -> Dict[str, Any]:
    module = getattr(fn, "__module__", None)
    if not module:
        raise JobSerializationError(
            f"function {fn!r} has no origin module; cannot rebind its globals"
        )
    try:
        code = marshal.dumps(fn.__code__)
    except ValueError as error:
        raise JobSerializationError(
            f"cannot marshal code of {fn!r}: {error}"
        ) from error
    return {
        "module": module,
        "name": fn.__name__,
        "qualname": fn.__qualname__,
        "code": code,
        "defaults": (
            None
            if fn.__defaults__ is None
            else tuple(_pack_value(item, depth + 1) for item in fn.__defaults__)
        ),
        "kwdefaults": (
            None
            if fn.__kwdefaults__ is None
            else {
                key: _pack_value(item, depth + 1)
                for key, item in fn.__kwdefaults__.items()
            }
        ),
        "closure": (
            None
            if fn.__closure__ is None
            else tuple(
                _pack_value(cell.cell_contents, depth + 1)
                for cell in fn.__closure__
            )
        ),
    }


def _unpack_function(data: Dict[str, Any]) -> types.FunctionType:
    module_name = data["module"]
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except ImportError as error:
            raise JobSerializationError(
                f"cannot import module {module_name!r} to rebind function "
                f"{data['name']!r}: {error}"
            ) from error
    code = marshal.loads(data["code"])
    closure = data["closure"]
    cells = (
        None
        if closure is None
        else tuple(types.CellType(_unpack_value(item)) for item in closure)
    )
    defaults = data["defaults"]
    fn = types.FunctionType(
        code,
        module.__dict__,
        data["name"],
        None if defaults is None else tuple(_unpack_value(item) for item in defaults),
        cells,
    )
    if data["kwdefaults"] is not None:
        fn.__kwdefaults__ = {
            key: _unpack_value(item) for key, item in data["kwdefaults"].items()
        }
    fn.__qualname__ = data["qualname"]
    fn.__module__ = module_name
    return fn


def _pack_callable(fn: Optional[Any]) -> Optional[Tuple[str, Any]]:
    if fn is None:
        return None
    return _pack_value(fn, 0)


def pack_job(job: MapReduceJob) -> bytes:
    """Serialize a job (closures included) for shipment to a live worker.

    Raises :class:`JobSerializationError` when some callable or captured
    value falls outside the supported envelope; callers treat that as "use
    the fork-publication path instead".
    """
    payload = {
        "mapper": _pack_callable(job.mapper),
        "reducer": _pack_callable(job.reducer),
        "combiner": _pack_callable(job.combiner),
        "name": job.name,
        "reducer_capacity": job.reducer_capacity,
    }
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:  # packed payloads are picklable by design
        raise JobSerializationError(f"cannot pickle packed job: {error}") from error


def unpack_job(data: bytes) -> MapReduceJob:
    """Rebuild a job previously serialized with :func:`pack_job`."""
    payload = pickle.loads(data)
    combiner = payload["combiner"]
    return MapReduceJob(
        mapper=_unpack_value(payload["mapper"]),
        reducer=_unpack_value(payload["reducer"]),
        combiner=None if combiner is None else _unpack_value(combiner),
        name=payload["name"],
        reducer_capacity=payload["reducer_capacity"],
    )
