"""Fundamental value types used by the simulated map-reduce engine.

The engine manipulates three kinds of records:

* input records handed to mappers (arbitrary hashable or unhashable Python
  objects supplied by the caller),
* intermediate :class:`KeyValue` pairs emitted by mappers and delivered,
  grouped by key, to reducers,
* output records emitted by reducers.

Keeping these types tiny and explicit makes the shuffle accounting in
:mod:`repro.mapreduce.metrics` unambiguous: the paper's *communication cost*
is the number of :class:`KeyValue` pairs crossing the map → reduce boundary,
and the *replication rate* is that count divided by the number of inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator, List, Tuple

#: Type alias for a reduce key.  Keys must be hashable because the shuffle
#: groups intermediate pairs by key with a dictionary.
Key = Hashable

#: Type alias for an intermediate or output value.  Values are unconstrained.
Value = Any

#: A mapper is a callable from one input record to an iterable of key-value
#: pairs.  Mappers must be pure functions of their single argument: the model
#: of the paper (Section 2.3) assumes each input is mapped independently of
#: every other input.
MapFunction = Callable[[Any], Iterable[Tuple[Key, Value]]]

#: A reducer is a callable from a reduce key and the list of values grouped
#: under that key to an iterable of output records.
ReduceFunction = Callable[[Key, List[Value]], Iterable[Any]]

#: A combiner has the same signature as a reducer but runs map-side; it is
#: optional and only used by jobs that declare an associative aggregation.
CombineFunction = Callable[[Key, List[Value]], Iterable[Tuple[Key, Value]]]


@dataclass(frozen=True)
class KeyValue:
    """A single intermediate key-value pair produced by a mapper.

    Attributes
    ----------
    key:
        The reduce key.  All pairs sharing a key are delivered to the same
        reducer.
    value:
        The payload delivered alongside the key.
    """

    key: Key
    value: Value

    def as_tuple(self) -> Tuple[Key, Value]:
        """Return the pair as a plain ``(key, value)`` tuple."""
        return (self.key, self.value)


@dataclass(frozen=True)
class ReducerInput:
    """The complete input delivered to one reducer: a key plus its values.

    In the terminology of the paper a "reducer" *is* this object — a reduce
    key together with its list of associated values — rather than the worker
    process that executes it.
    """

    key: Key
    values: Tuple[Value, ...]

    @property
    def size(self) -> int:
        """Number of values delivered to this reducer (the paper's ``q_i``)."""
        return len(self.values)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.values)


def ensure_key_value(item: Any) -> KeyValue:
    """Normalize a mapper emission into a :class:`KeyValue`.

    Mappers may emit either ``KeyValue`` instances or plain 2-tuples; this
    helper accepts both and rejects anything else with a :class:`TypeError`
    carrying a clear message.
    """
    if isinstance(item, KeyValue):
        return item
    if isinstance(item, tuple) and len(item) == 2:
        return KeyValue(item[0], item[1])
    raise TypeError(
        "mappers must emit (key, value) tuples or KeyValue instances, "
        f"got {item!r}"
    )
