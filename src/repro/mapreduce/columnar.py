"""Typed columnar batches and the vectorized (columnar) data plane.

The record data plane moves one Python object at a time through
map → shuffle → reduce.  That is the bit-identity oracle, but for the
regular, integer-heavy workloads this library studies (edge lists,
bitstrings, matrix entries) it spends most of its time in the interpreter.
This module provides the columnar alternative:

* :class:`ColumnBatch` — a set of named, equally-long 1-D numpy arrays
  standing in for a list of records;
* :class:`BatchKernel` — the vectorized counterpart of a job's
  mapper/reducer pair: ``encode`` packs records into a batch, ``map_batch``
  computes every emitted pair's reducer key as an integer *code* with array
  arithmetic, and ``reduce_groups`` / ``reduce_group`` produce outputs from
  contiguous group slices;
* :class:`EncodedRun` — a block of shuffled groups in global stable-hash
  order, pair-aligned, as produced by the shuffle backends'
  ``encoded_runs``;
* :class:`ColumnarExecutor` — an :class:`~repro.mapreduce.executor.Executor`
  that runs kernel-carrying jobs on batches and transparently delegates
  everything else to a record-path fallback executor.

Bit-identity contract
---------------------
The columnar plane is an *optimization*, never a semantic change: for any
job, outputs and every cost metric (communication, reducer sizes, worker
loads, compute cost) must equal the record path's exactly.  The pieces that
guarantee this:

* codes are decoded to the record path's reduce keys, and groups are
  ordered by the shared ``(stable_hash(key), repr(key))`` rule
  (:func:`build_encoded_run`);
* within a group, pair arrival order is preserved (stable sorts only);
* metric accounting goes through the same
  :class:`~repro.mapreduce.executor._ReduceBookkeeper` as the record
  executors, fed the same sizes in the same order.

numpy is imported guardedly: this module is importable without it, and the
executor falls back to the record path when it is missing.
"""

from __future__ import annotations

import os
import struct
import tempfile
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import ConfigurationError, ExecutionError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.executor import (
    ExecutionOutcome,
    Executor,
    SerialExecutor,
    _guarded_iteration,
    _ReduceBookkeeper,
    _TimedGroups,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import PhaseTimings
from repro.mapreduce.shuffle import ShuffleBackend, _group_order_key

try:  # pragma: no cover - exercised by environment, not by branches
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    np = None  # type: ignore[assignment]


def numpy_available() -> bool:
    """Whether the columnar data plane can run in this environment."""
    return np is not None


def require_numpy():
    """numpy, or a :class:`ConfigurationError` explaining what to do."""
    if np is None:
        raise ConfigurationError(
            "the columnar data plane requires numpy, which is not "
            "importable in this environment; install numpy or use "
            "data_plane='records'"
        )
    return np


class BatchEncodingError(Exception):
    """Raised by a kernel's ``encode`` when records do not fit its layout.

    This is a *decline*, not a failure: the columnar executor catches it
    and runs the job on the record path instead.  Kernels raise it for
    inputs outside their typed schema (wrong arity, non-integer fields,
    values overflowing the column dtype, ...).
    """


# ----------------------------------------------------------------------
# Column batches
# ----------------------------------------------------------------------
class ColumnBatch:
    """Named, equally-long 1-D arrays standing in for a list of records.

    Batches are immutable by convention: every operation returns a new
    batch (``take``) or a view (``slice``); callers never mutate columns
    in place (spill read-back hands out read-only buffer views).
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Dict[str, Any]) -> None:
        require_numpy()
        if not columns:
            raise ConfigurationError("a ColumnBatch needs at least one column")
        length: Optional[int] = None
        for name, column in columns.items():
            if getattr(column, "ndim", None) != 1:
                raise ConfigurationError(
                    f"column {name!r} must be a 1-D array, got {column!r}"
                )
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ConfigurationError(
                    f"column {name!r} has length {len(column)}, expected "
                    f"{length}; all columns of a batch must align"
                )
        self.columns = columns

    def __len__(self) -> int:
        for column in self.columns.values():
            return len(column)
        return 0  # pragma: no cover - constructor forbids zero columns

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.columns)

    def column(self, name: str):
        return self.columns[name]

    def take(self, indices) -> "ColumnBatch":
        """Gather rows by index (a copy; accepts any integer array)."""
        return ColumnBatch(
            {name: column[indices] for name, column in self.columns.items()}
        )

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """Contiguous row range as zero-copy views."""
        return ColumnBatch(
            {name: column[start:stop] for name, column in self.columns.items()}
        )

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        if not batches:
            raise ConfigurationError("cannot concatenate zero batches")
        if len(batches) == 1:
            return batches[0]
        first = batches[0]
        return cls(
            {
                name: np.concatenate([batch.columns[name] for batch in batches])
                for name in first.columns
            }
        )

    @classmethod
    def from_int_tuples(
        cls, records: Sequence[Any], names: Sequence[str]
    ) -> "ColumnBatch":
        """Pack uniform tuples of Python ints into int64 columns.

        Raises :class:`BatchEncodingError` (a fallback signal, not a
        failure) when the records are ragged, non-integer, or overflow
        int64 — exactly the inputs the record path must keep handling.
        """
        require_numpy()
        try:
            table = np.asarray(records)
        except (ValueError, OverflowError) as error:
            raise BatchEncodingError(f"records are not a uniform table: {error}")
        if table.ndim != 2 or table.shape[1] != len(names):
            raise BatchEncodingError(
                f"expected tuples of arity {len(names)}, got array of shape "
                f"{table.shape}"
            )
        # kind 'i' only: floats would silently truncate, bools and objects
        # (int64 overflow) would change reduce-key identity.
        if table.dtype.kind != "i":
            raise BatchEncodingError(
                f"records are not int64-representable (dtype {table.dtype})"
            )
        table = table.astype(np.int64, copy=False)
        return cls({name: table[:, i].copy() for i, name in enumerate(names)})

    def to_tuples(self) -> List[Tuple[Any, ...]]:
        """Back to Python tuples (Python scalars, bit-identical records)."""
        return list(zip(*(column.tolist() for column in self.columns.values())))


# ----------------------------------------------------------------------
# Encoded shuffle runs
# ----------------------------------------------------------------------
@dataclass
class EncodedRun:
    """A block of shuffled groups, sorted and pair-aligned.

    Groups appear in the global record-path order —
    ascending ``(stable_hash(key), repr(key))`` — and group ``g`` owns the
    contiguous value rows ``values[starts[g]:starts[g+1]]``, in mapper
    arrival order.
    """

    keys: List[Hashable]
    codes: Any  # int64 array, one code per group, aligned with ``keys``
    sizes: Any  # int64 array, one size per group
    starts: Any  # int64 array of length ``len(keys) + 1`` (prefix sums)
    values: ColumnBatch

    @property
    def num_groups(self) -> int:
        return len(self.keys)

    def group_values(self, index: int) -> ColumnBatch:
        return self.values.slice(int(self.starts[index]), int(self.starts[index + 1]))


def build_encoded_run(
    entries: Sequence[Tuple[Any, Optional[Any], Any]],
    keys_by_code: Dict[int, Hashable],
) -> Optional[EncodedRun]:
    """Sort raw ``(codes, row_indices, batch)`` entries into one run.

    ``row_indices`` maps each code to its source row in ``batch``
    (``None`` when the batch is already pair-aligned).  The group order is
    the record-path contract; pair order within a group is arrival order
    (entry order, then row order — a stable argsort preserves it).
    Returns ``None`` for empty input.
    """
    require_numpy()
    live = [entry for entry in entries if len(entry[0]) > 0]
    if not live:
        return None
    all_codes = (
        live[0][0]
        if len(live) == 1
        else np.concatenate([codes for codes, _, _ in live])
    )
    aligned: List[ColumnBatch] = []
    for codes, rows, batch in live:
        aligned.append(batch if rows is None else batch.take(rows))
    combined = ColumnBatch.concat(aligned)
    unique_codes, inverse = np.unique(all_codes, return_inverse=True)
    # stable_hash is a digest of repr() and cannot be vectorized, so the
    # ordering work happens once per distinct reduce key, in Python, and
    # is then broadcast back over the pairs through a rank array.
    code_list = unique_codes.tolist()
    order = sorted(
        range(len(code_list)),
        key=lambda position: _group_order_key(keys_by_code[code_list[position]]),
    )
    rank = np.empty(len(code_list), dtype=np.int64)
    rank[np.asarray(order, dtype=np.int64)] = np.arange(len(order), dtype=np.int64)
    pair_rank = rank[inverse]
    permutation = np.argsort(pair_rank, kind="stable")
    sizes = np.bincount(pair_rank, minlength=len(code_list)).astype(np.int64)
    starts = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64))
    )
    return EncodedRun(
        keys=[keys_by_code[code_list[position]] for position in order],
        codes=unique_codes[np.asarray(order, dtype=np.int64)],
        sizes=sizes,
        starts=starts,
        values=combined.take(permutation),
    )


# ----------------------------------------------------------------------
# Zero-copy spill format
# ----------------------------------------------------------------------
#: Chunk header magic for struct-packed columnar spill blocks.
_SPILL_MAGIC = b"RCB1"
_CHUNK_HEADER = struct.Struct("<qi")
_COLUMN_HEADER = struct.Struct("<iiq")


def pack_encoded_chunk(codes: Any, batch: ColumnBatch) -> bytes:
    """Serialize one (codes, pair-aligned batch) chunk as raw column bytes.

    Unlike the record plane's pickled spills, no per-record Python objects
    are created: each column is written as one contiguous ``tobytes`` blob
    and read back with ``numpy.frombuffer`` (:func:`unpack_encoded_chunks`).
    """
    require_numpy()
    code_array = np.ascontiguousarray(codes, dtype=np.int64)
    parts: List[bytes] = [
        _SPILL_MAGIC,
        _CHUNK_HEADER.pack(len(code_array), len(batch.columns)),
        code_array.tobytes(),
    ]
    for name, column in batch.columns.items():
        data = np.ascontiguousarray(column).tobytes()
        name_bytes = name.encode("utf-8")
        dtype_bytes = column.dtype.str.encode("ascii")
        parts.append(
            _COLUMN_HEADER.pack(len(name_bytes), len(dtype_bytes), len(data))
        )
        parts.append(name_bytes)
        parts.append(dtype_bytes)
        parts.append(data)
    return b"".join(parts)


def unpack_encoded_chunks(payload: bytes) -> Iterator[Tuple[Any, ColumnBatch]]:
    """Yield ``(codes, batch)`` chunks from concatenated packed blocks.

    Arrays are zero-copy views onto ``payload`` (read-only, like all
    shuffle-held batches).
    """
    require_numpy()
    offset, total = 0, len(payload)
    while offset < total:
        if payload[offset : offset + 4] != _SPILL_MAGIC:
            raise ExecutionError(
                "corrupt columnar spill chunk: bad magic at offset "
                f"{offset} of {total} bytes"
            )
        offset += 4
        num_pairs, num_columns = _CHUNK_HEADER.unpack_from(payload, offset)
        offset += _CHUNK_HEADER.size
        codes = np.frombuffer(payload, dtype=np.int64, count=num_pairs, offset=offset)
        offset += num_pairs * 8
        columns: Dict[str, Any] = {}
        for _ in range(num_columns):
            name_len, dtype_len, data_len = _COLUMN_HEADER.unpack_from(
                payload, offset
            )
            offset += _COLUMN_HEADER.size
            name = payload[offset : offset + name_len].decode("utf-8")
            offset += name_len
            dtype = np.dtype(payload[offset : offset + dtype_len].decode("ascii"))
            offset += dtype_len
            columns[name] = np.frombuffer(
                payload, dtype=dtype, count=data_len // dtype.itemsize, offset=offset
            )
            offset += data_len
        yield codes, ColumnBatch(columns)


# ----------------------------------------------------------------------
# Kernel protocol
# ----------------------------------------------------------------------
class BatchKernel:
    """Vectorized counterpart of a job's mapper/reducer pair.

    A kernel must be *behaviourally identical* to the scalar functions of
    the job that carries it: same reduce keys, same per-key value
    multisets in the same arrival order, same outputs in the same order.
    The columnar executor treats the record path as the oracle; the
    equivalence tests enforce it.

    Subclasses implement:

    ``encode(records) -> ColumnBatch``
        Pack a materialized record list into typed columns, or raise
        :class:`BatchEncodingError` to send the job down the record path.
    ``map_batch(batch) -> (codes, row_indices, values)``
        The whole map phase as array arithmetic: one int64 *code* per
        emitted pair.  ``values`` is the pair's value payload —
        either pair-aligned (``row_indices is None``) or indexed into by
        ``row_indices``.
    ``key_of_code(code) -> Hashable``
        Decode a code into the exact reduce key the scalar mapper emits.
        Called once per distinct code.

    and at least one reduce strategy, tried in this order:

    ``reduce_groups(run) -> Optional[List]``
        Vectorized across all groups of an :class:`EncodedRun`; return
        ``None`` to decline.
    ``reduce_group(key, code, values) -> Optional[Iterable]``
        Vectorized within one group; return ``None`` to decline.
    ``decode_records(values) -> List``
        Group values back as scalar records, for the final fallback: the
        job's own reducer runs on them (always available, always exact).
    """

    def encode(self, records: Sequence[Any]) -> ColumnBatch:
        raise NotImplementedError

    def map_batch(
        self, batch: ColumnBatch
    ) -> Tuple[Any, Optional[Any], ColumnBatch]:
        raise NotImplementedError

    def key_of_code(self, code: int) -> Hashable:
        raise NotImplementedError

    def reduce_groups(self, run: EncodedRun) -> Optional[List[Any]]:
        return None

    def reduce_group(
        self, key: Hashable, code: int, values: ColumnBatch
    ) -> Optional[Iterable[Any]]:
        return None

    def decode_records(self, values: ColumnBatch) -> List[Any]:
        return values.to_tuples()


class EncodedInput:
    """A pre-encoded input batch paired with its scalar records.

    Produced by callers that already hold inputs in columnar form (e.g. a
    pipeline feeding one round's output to the next).  The columnar
    executor reuses ``batch`` directly when the consuming job carries the
    same kernel instance; every record-path consumer just iterates the
    scalar records, so the wrapper is transparent to the rest of the
    engine.
    """

    def __init__(
        self, batch: ColumnBatch, records: Sequence[Any], kernel: Optional[Any] = None
    ) -> None:
        self.batch = batch
        self.records = records
        self.kernel = kernel

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


# ----------------------------------------------------------------------
# Vectorization helpers shared by the schema kernels
# ----------------------------------------------------------------------
def unique_sorted_within_groups(
    group_ids: Any, values: Any
) -> Tuple[Any, Any]:
    """Per-group ``sorted(set(values))``, vectorized across all groups.

    Both inputs are parallel 1-D arrays; the result keeps group blocks in
    ascending ``group_ids`` order with values ascending and deduplicated
    inside each block — exactly the scalar reducers' canonical ordering.
    """
    require_numpy()
    order = np.lexsort((values, group_ids))
    sorted_groups = group_ids[order]
    sorted_values = values[order]
    if len(sorted_groups) == 0:
        return sorted_groups, sorted_values
    keep = np.empty(len(sorted_groups), dtype=bool)
    keep[0] = True
    keep[1:] = (sorted_groups[1:] != sorted_groups[:-1]) | (
        sorted_values[1:] != sorted_values[:-1]
    )
    return sorted_groups[keep], sorted_values[keep]


def pairs_within_groups(sizes: Any) -> Tuple[Any, Any, Any]:
    """All index pairs ``i < j`` inside each group, in nested-loop order.

    Given group sizes ``s_0, s_1, ...`` (groups laid out contiguously),
    returns ``(group_of_pair, left_local, right_local)`` where the pairs
    of group ``g`` appear consecutively in the row-major
    ``for i: for j > i`` order the scalar all-pairs reducers use.  Built
    from one ``triu_indices`` template per *distinct* size, written
    straight into the output at each group's offset — no per-group Python
    loop.
    """
    require_numpy()
    sizes = np.asarray(sizes, dtype=np.int64)
    pair_counts = sizes * (sizes - 1) // 2
    out_starts = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(pair_counts, dtype=np.int64))
    )
    total = int(out_starts[-1])
    group_of_pair = np.repeat(np.arange(len(sizes), dtype=np.int64), pair_counts)
    left = np.empty(total, dtype=np.int64)
    right = np.empty(total, dtype=np.int64)
    for size in np.unique(sizes).tolist():
        if size < 2:
            continue
        template_left, template_right = np.triu_indices(size, k=1)
        members = np.nonzero(sizes == size)[0]
        positions = (
            out_starts[members][:, None]
            + np.arange(len(template_left), dtype=np.int64)[None, :]
        ).ravel()
        left[positions] = np.tile(template_left, len(members))
        right[positions] = np.tile(template_right, len(members))
    return group_of_pair, left, right


# ----------------------------------------------------------------------
# Pipeline-intermediate spilling
# ----------------------------------------------------------------------
class SpilledRows:
    """Uniform int tuples spilled to disk as one packed int64 table.

    The pipeline executor uses this to keep multi-round cascades from
    holding every intermediate resident: rows are written once as raw
    column bytes (no per-record pickling) and re-materialized lazily —
    iteration yields bit-identical Python tuples.  Supports repeated
    iteration and ``len``, which is all the downstream rounds need.
    """

    def __init__(self, path: str, num_rows: int, num_columns: int) -> None:
        self.path = path
        self.num_rows = num_rows
        self.num_columns = num_columns
        self.nbytes = num_rows * num_columns * 8

    @classmethod
    def try_spill(
        cls, rows: Sequence[Any], directory: Optional[str] = None
    ) -> Optional["SpilledRows"]:
        """Spill ``rows`` if they form a uniform int table, else ``None``.

        ``None`` means "keep them in memory": ragged, non-integer or
        overflowing rows are outside the packed layout, and silently
        coercing them would break bit identity.
        """
        if np is None or not rows:
            return None
        try:
            table = np.asarray(rows)
        except (ValueError, OverflowError):  # pragma: no cover - numpy>=2 raises below
            return None
        if table.ndim != 2 or table.dtype.kind != "i":
            return None
        table = table.astype(np.int64, copy=False)
        handle, path = tempfile.mkstemp(
            prefix="repro-intermediate-", suffix=".cols", dir=directory
        )
        with os.fdopen(handle, "wb") as sink:
            sink.write(table.tobytes())
        return cls(path, table.shape[0], table.shape[1])

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        with open(self.path, "rb") as source:
            payload = source.read()
        table = np.frombuffer(payload, dtype=np.int64).reshape(
            self.num_rows, self.num_columns
        )
        for row in table.tolist():
            yield tuple(row)

    def close(self) -> None:
        try:
            os.remove(self.path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


# ----------------------------------------------------------------------
# The columnar executor
# ----------------------------------------------------------------------
class ColumnarExecutor(Executor):
    """Runs kernel-carrying jobs on column batches; delegates the rest.

    The vectorized path applies only when *all* of these hold — otherwise
    the job runs on ``fallback`` unchanged, so enabling
    ``data_plane="columnar"`` is always safe:

    * numpy is importable;
    * the job carries a ``batch_kernel`` and no combiner (combiners are a
      record-path construct: they re-group inside map tasks, which the
      single-pass encoded shuffle has no equivalent for);
    * the shuffle backend supports encoded batches;
    * the fallback is the serial executor (under the parallel executor
      the process pool is the optimization; batching inside it is future
      work);
    * the kernel accepts the inputs (``encode`` may raise
      :class:`BatchEncodingError` to decline).

    Unlike the record path, the columnar path materializes the input
    iterable (encoding needs the records twice on a declined encode).
    """

    name = "columnar"

    def __init__(self, fallback: Optional[Executor] = None) -> None:
        self.fallback = fallback if fallback is not None else SerialExecutor()

    def execute(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]] = None,
    ) -> ExecutionOutcome:
        if (
            np is None
            or job.batch_kernel is None
            or job.combiner is not None
            or not getattr(backend, "supports_encoded", False)
            or not isinstance(self.fallback, SerialExecutor)
        ):
            return self.fallback.execute(job, inputs, backend, config, reducer_cost)
        kernel = job.batch_kernel
        map_start = time.perf_counter()
        if isinstance(inputs, EncodedInput) and inputs.kernel is kernel:
            records: Sequence[Any] = inputs.records
            batch = inputs.batch
        else:
            records = inputs if isinstance(inputs, (list, tuple)) else list(inputs)
            try:
                batch = kernel.encode(records)
            except BatchEncodingError:
                return self.fallback.execute(
                    job, records, backend, config, reducer_cost
                )
        num_inputs = len(records)
        codes, row_indices, values = self._map_batch(job, kernel, batch)
        keys_by_code = {
            code: kernel.key_of_code(code) for code in np.unique(codes).tolist()
        }
        map_seconds = time.perf_counter() - map_start
        write_start = time.perf_counter()
        backend.add_encoded(codes, row_indices, values, keys_by_code)
        write_seconds = time.perf_counter() - write_start
        outcome = self._reduce_phase(
            job, kernel, backend, config, reducer_cost, num_inputs
        )
        assert outcome.timings is not None
        outcome.timings.map_seconds = map_seconds
        outcome.timings.shuffle_seconds += write_seconds
        return outcome

    @staticmethod
    def _map_batch(job: MapReduceJob, kernel: BatchKernel, batch: ColumnBatch):
        try:
            return kernel.map_batch(batch)
        except Exception as error:
            raise ExecutionError(
                f"batch kernel of job {job.name!r} failed in map_batch: {error}"
            ) from error

    def _reduce_phase(
        self,
        job: MapReduceJob,
        kernel: BatchKernel,
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]],
        num_inputs: int,
    ) -> ExecutionOutcome:
        bookkeeper = _ReduceBookkeeper(job, config, reducer_cost)
        outputs: List[Any] = []
        phase_start = time.perf_counter()
        runs = _TimedGroups(backend.encoded_runs())
        for run in runs:
            # Observe every group of the run first (in global order):
            # capacity violations must surface at the same key, with the
            # same already-accounted prefix, as the record path.
            for key, size in zip(run.keys, run.sizes.tolist()):
                bookkeeper.observe_size(key, size)
            outputs.extend(self._reduce_run(job, kernel, run))
        phase_seconds = time.perf_counter() - phase_start
        outcome = bookkeeper.outcome(num_inputs, outputs)
        outcome.timings = PhaseTimings(
            shuffle_seconds=runs.seconds,
            reduce_seconds=max(0.0, phase_seconds - runs.seconds),
        )
        return outcome

    def _reduce_run(
        self, job: MapReduceJob, kernel: BatchKernel, run: EncodedRun
    ) -> List[Any]:
        try:
            produced = kernel.reduce_groups(run)
        except Exception as error:
            raise ExecutionError(
                f"batch kernel of job {job.name!r} failed in reduce_groups: "
                f"{error}"
            ) from error
        if produced is not None:
            return produced
        outputs: List[Any] = []
        code_list = run.codes.tolist()
        for index, key in enumerate(run.keys):
            values = run.group_values(index)
            try:
                group_out = kernel.reduce_group(key, code_list[index], values)
            except Exception as error:
                raise ExecutionError(
                    f"batch kernel of job {job.name!r} failed in reduce_group "
                    f"on key {key!r}: {error}"
                ) from error
            if group_out is not None:
                outputs.extend(group_out)
                continue
            # Final fallback: the job's own scalar reducer on decoded
            # records — always exact, with the record path's error shape.
            described = f"reducer of job {job.name!r} failed on key {key!r}"
            try:
                scalar_out = job.reducer(key, kernel.decode_records(values))
            except Exception as error:
                raise ExecutionError(f"{described}: {error}") from error
            if scalar_out is not None:
                outputs.extend(_guarded_iteration(scalar_out, described))
        return outputs


__all__ = [
    "BatchEncodingError",
    "BatchKernel",
    "ColumnBatch",
    "ColumnarExecutor",
    "EncodedInput",
    "EncodedRun",
    "SpilledRows",
    "build_encoded_run",
    "numpy_available",
    "pack_encoded_chunk",
    "pairs_within_groups",
    "require_numpy",
    "unique_sorted_within_groups",
    "unpack_encoded_chunks",
]
