"""Partitioners: assignment of reduce keys to reduce workers.

The paper distinguishes a *reducer* (a reduce key with its list of values)
from a *reduce worker* (a compute node that may process many reducers).  The
replication-rate analysis only depends on reducers, but a faithful substrate
also models workers so that the load-balancing footnote of Section 3.4 ("in
the best implementation, we would combine the cells with relatively small
population at a single compute node") can be exercised and measured.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Dict, Hashable, Iterable, List, Sequence

from repro.exceptions import ConfigurationError


def stable_hash(key: Hashable) -> int:
    """Deterministic, process-independent hash of a reduce key.

    Python's built-in ``hash`` is randomized per process for strings, which
    would make simulated runs non-reproducible across interpreter
    invocations.  This helper hashes the ``repr`` of the key with blake2b
    instead, which is stable and good enough for partitioning purposes.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Partitioner(ABC):
    """Maps reduce keys to worker indices in ``range(num_workers)``."""

    @abstractmethod
    def assign(self, key: Hashable, num_workers: int) -> int:
        """Return the worker index responsible for ``key``."""

    def partition(
        self, keys: Iterable[Hashable], num_workers: int
    ) -> Dict[int, List[Hashable]]:
        """Group ``keys`` by worker, returning ``{worker_index: [keys]}``."""
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        assignment: Dict[int, List[Hashable]] = {}
        for key in keys:
            worker = self.assign(key, num_workers)
            if worker < 0 or worker >= num_workers:
                raise ConfigurationError(
                    f"partitioner returned worker {worker} outside "
                    f"range(0, {num_workers}) for key {key!r}"
                )
            assignment.setdefault(worker, []).append(key)
        return assignment


class HashPartitioner(Partitioner):
    """Default partitioner: stable hash of the key modulo worker count."""

    def assign(self, key: Hashable, num_workers: int) -> int:
        return stable_hash(key) % num_workers


class RoundRobinPartitioner(Partitioner):
    """Assign keys to workers in arrival order, cycling through workers.

    Unlike hashing this is sensitive to key order, but it produces perfectly
    balanced *reducer counts* per worker, which is useful when benchmarking
    worker-level skew in isolation from key distribution.
    """

    def __init__(self) -> None:
        self._counter = 0

    def assign(self, key: Hashable, num_workers: int) -> int:
        worker = self._counter % num_workers
        self._counter += 1
        return worker


class GreedyLoadBalancingPartitioner(Partitioner):
    """Assign each key to the currently least-loaded worker.

    Load is measured in announced key *weights* (e.g. the number of values a
    reducer will receive, which schema-derived jobs know in advance).  This
    implements the "combine small cells at a single compute node" remark of
    Section 3.4: reducers with small input can share a worker so that worker
    loads equalize even when reducer sizes are skewed.
    """

    def __init__(self, weights: Dict[Hashable, float] | None = None) -> None:
        self._weights = dict(weights) if weights else {}
        self._loads: List[float] = []

    def assign(self, key: Hashable, num_workers: int) -> int:
        if len(self._loads) != num_workers:
            self._loads = [0.0] * num_workers
        weight = float(self._weights.get(key, 1.0))
        worker = min(range(num_workers), key=lambda index: self._loads[index])
        self._loads[worker] += weight
        return worker

    @property
    def loads(self) -> Sequence[float]:
        """Current per-worker load totals (read-only view for diagnostics)."""
        return tuple(self._loads)
