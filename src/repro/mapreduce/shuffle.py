"""Pluggable shuffle backends: where intermediate key-value pairs live.

The shuffle is the map → reduce boundary.  The engine streams mapper
emissions into a :class:`ShuffleBackend` one pair at a time and later asks
for the grouped data back, one reduce key at a time, in a deterministic
order.  Two implementations are provided:

* :class:`InMemoryShuffle` — a plain dictionary, fastest for workloads whose
  intermediate data fits in memory (the seed behaviour);
* :class:`PartitionedShuffle` — range-partitions the stable-hash space into
  ``num_partitions`` buckets and spills each bucket to a temporary file once
  its in-memory buffer fills up.  At reduce time only one partition is
  resident at a time, so peak memory is bounded by the largest partition
  plus the write buffers instead of the whole shuffle.

Both backends deliver groups in the same global order — ascending
``(stable_hash(key), repr(key))`` — and preserve the arrival order of the
values within each group, so swapping backends changes neither the outputs
nor the metrics of a job, only the memory profile.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError, ExecutionError
from repro.mapreduce.partitioner import stable_hash

#: stable_hash digests are 8 bytes, so the hash space is [0, 2^64).
_HASH_BITS = 64


def _group_order_key(key: Hashable) -> Tuple[int, str]:
    """Deterministic reduce-key ordering shared by every backend."""
    return (stable_hash(key), repr(key))


class ShuffleBackend(ABC):
    """Receives mapper emissions and hands back groups deterministically.

    The engine drives a backend through a strict lifecycle: any number of
    :meth:`add` calls, then one pass over :meth:`groups`, then
    :meth:`close`.  Backends are single-use; a new job gets a new backend.

    Backends that can hold typed column batches (the columnar data plane)
    additionally set :attr:`supports_encoded` and implement
    :meth:`add_encoded` / :meth:`encoded_runs`.  A backend instance serves
    one plane per lifetime: mixing record-at-a-time ``add`` calls with
    encoded-batch calls raises
    :class:`~repro.exceptions.ExecutionError`.
    """

    #: Whether this backend implements the encoded-batch (columnar) protocol.
    supports_encoded: bool = False

    @abstractmethod
    def add(self, key: Hashable, value: Any) -> None:
        """Accept one intermediate key-value pair from the map phase."""

    def add_group(self, key: Hashable, values: List[Any]) -> None:
        """Accept several values for one key at once (order preserved).

        Equivalent to ``add(key, v)`` for each value; backends may override
        with a bulk fast path.  The parallel executor uses this to merge a
        map task's pre-grouped emissions without a per-pair Python call.
        """
        for value in values:
            self.add(key, value)

    @abstractmethod
    def groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        """Yield ``(key, values)`` groups in stable-hash order.

        Values appear in arrival order.  May only be consumed once, and
        only while the backend is open: a closed backend raises
        :class:`~repro.exceptions.ExecutionError` instead of silently
        yielding nothing.
        """

    def add_encoded(
        self,
        codes: Any,
        row_indices: Optional[Any],
        batch: Any,
        keys_by_code: Dict[int, Hashable],
    ) -> None:
        """Accept one encoded emission batch from the columnar map phase.

        ``codes`` is an int64 array with one reducer-key code per emitted
        pair, ``row_indices`` maps each pair back to its source row in
        ``batch`` (a :class:`repro.mapreduce.columnar.ColumnBatch`), or is
        ``None`` when ``batch`` is already pair-aligned, and
        ``keys_by_code`` decodes every distinct code appearing in ``codes``
        to the reduce key the record path would have used.  Communication
        accounting is identical to ``add``: one pair per code.
        """
        raise ConfigurationError(
            f"{type(self).__name__} cannot hold encoded column batches; "
            "use InMemoryShuffle or PartitionedShuffle for the columnar "
            "data plane"
        )

    def encoded_runs(self) -> Iterator[Any]:
        """Yield sorted :class:`repro.mapreduce.columnar.EncodedRun` blocks.

        Runs arrive in global stable-hash key order, and the groups inside
        one run are contiguous slices of its pair-aligned value batch in
        that same order.  Like :meth:`groups`, this is a single-pass
        iterator on spilling backends.
        """
        raise ConfigurationError(
            f"{type(self).__name__} cannot hold encoded column batches; "
            "use InMemoryShuffle or PartitionedShuffle for the columnar "
            "data plane"
        )

    @abstractmethod
    def close(self) -> None:
        """Release any resources (buffers, spill files).  Idempotent."""

    @property
    @abstractmethod
    def num_pairs(self) -> int:
        """Number of pairs that crossed the map → reduce boundary so far.

        Only meaningful while the backend is open; a closed backend raises
        :class:`~repro.exceptions.ExecutionError` rather than reporting a
        count whose underlying data is gone.
        """

    def __enter__(self) -> "ShuffleBackend":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class InMemoryShuffle(ShuffleBackend):
    """Dictionary-backed shuffle: everything stays resident (seed behaviour)."""

    supports_encoded = True

    def __init__(self) -> None:
        self._groups: Dict[Hashable, List[Any]] = {}
        self._num_pairs = 0
        self._closed = False
        # Encoded-batch (columnar) state: raw (codes, rows, batch) entries,
        # gathered lazily at read time so ingestion stays zero-copy.
        self._encoded: List[Tuple[Any, Optional[Any], Any]] = []
        self._encoded_keys: Dict[int, Hashable] = {}

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "shuffle backend already closed; backends are single-use — "
                "create a fresh one per executed job"
            )

    def _check_plane(self, encoded: bool) -> None:
        if encoded and self._groups:
            raise ExecutionError(
                "cannot add encoded column batches to an InMemoryShuffle "
                "already holding record-at-a-time pairs; one backend serves "
                "one data plane per job"
            )
        if not encoded and self._encoded:
            raise ExecutionError(
                "cannot add record-at-a-time pairs to an InMemoryShuffle "
                "already holding encoded column batches; one backend serves "
                "one data plane per job"
            )

    def add(self, key: Hashable, value: Any) -> None:
        self._check_open()
        self._check_plane(encoded=False)
        self._groups.setdefault(key, []).append(value)
        self._num_pairs += 1

    def add_group(self, key: Hashable, values: List[Any]) -> None:
        self._check_open()
        if not values:
            return
        self._check_plane(encoded=False)
        self._groups.setdefault(key, []).extend(values)
        self._num_pairs += len(values)

    def add_encoded(
        self,
        codes: Any,
        row_indices: Optional[Any],
        batch: Any,
        keys_by_code: Dict[int, Hashable],
    ) -> None:
        self._check_open()
        self._check_plane(encoded=True)
        if len(codes) == 0:
            return
        self._encoded.append((codes, row_indices, batch))
        self._encoded_keys.update(keys_by_code)
        self._num_pairs += len(codes)

    def encoded_runs(self) -> Iterator[Any]:
        self._ensure_readable()
        if self._groups:
            raise ExecutionError(
                "this InMemoryShuffle holds record-at-a-time pairs; use "
                "groups() instead of encoded_runs()"
            )
        return self._iter_encoded_runs()

    def _iter_encoded_runs(self) -> Iterator[Any]:
        from repro.mapreduce.columnar import build_encoded_run

        self._ensure_readable()
        if self._encoded:
            run = build_encoded_run(self._encoded, self._encoded_keys)
            if run is not None:
                self._ensure_readable()
                yield run

    def _ensure_readable(self) -> None:
        if self._closed:
            raise ExecutionError(
                "cannot read groups from a closed InMemoryShuffle: its data "
                "was released on close(); create a fresh backend per job"
            )

    def groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        # Checked eagerly (this is not a generator function) so a closed
        # backend fails at the groups() call, not on the first next().
        self._ensure_readable()
        return self._iter_groups()

    def _iter_groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        # Re-checked on every step: a close() racing an already-obtained
        # iterator must raise, not quietly exhaust over emptied containers.
        self._ensure_readable()
        for key in sorted(self._groups.keys(), key=_group_order_key):
            self._ensure_readable()
            yield key, self._groups[key]

    def close(self) -> None:
        self._closed = True
        self._groups = {}
        self._encoded = []
        self._encoded_keys = {}

    @property
    def num_pairs(self) -> int:
        if self._closed:
            raise ExecutionError(
                "cannot read num_pairs from a closed InMemoryShuffle: read "
                "it before close(), or use the job metrics' communication "
                "cost, which records the same count"
            )
        return self._num_pairs


class PartitionedShuffle(ShuffleBackend):
    """Hash-range-partitioned shuffle that spills partitions to disk.

    On the record plane each spill is a pickled list of ``(key, value)``
    pairs.  On the columnar plane (:meth:`add_encoded`) a spill is a
    struct-packed block of raw column buffers — one contiguous ``tobytes``
    per column plus the pair's key codes — which is read back zero-copy
    with ``numpy.frombuffer``; no per-record Python objects are ever
    pickled.

    Parameters
    ----------
    num_partitions:
        Number of hash ranges.  Reduce-time peak memory is roughly the
        shuffle size divided by this (plus the write buffers), assuming the
        stable hash spreads keys evenly.
    buffer_size:
        Pairs buffered per partition before a spill to that partition's file.
    spill_dir:
        Directory for spill files; a private temporary directory is created
        (lazily, on first spill) when omitted.
    """

    supports_encoded = True

    def __init__(
        self,
        num_partitions: int = 16,
        buffer_size: int = 8192,
        spill_dir: Optional[str] = None,
    ) -> None:
        if num_partitions <= 0:
            raise ConfigurationError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        if buffer_size <= 0:
            raise ConfigurationError(f"buffer_size must be positive, got {buffer_size}")
        self.num_partitions = num_partitions
        self.buffer_size = buffer_size
        self._spill_dir = spill_dir
        self._owns_spill_dir = spill_dir is None
        self._buffers: List[List[Tuple[Hashable, Any]]] = [
            [] for _ in range(num_partitions)
        ]
        self._spill_paths: List[Optional[str]] = [None] * num_partitions
        self._num_pairs = 0
        self.spill_count = 0
        self.spilled_bytes = 0
        self._closed = False
        self._consumed = False
        # Encoded-batch (columnar) state: per-partition lists of
        # (codes, pair-aligned ColumnBatch) chunks plus buffered pair counts.
        self._plane: Optional[str] = None
        self._enc_buffers: List[List[Tuple[Any, Any]]] = [
            [] for _ in range(num_partitions)
        ]
        self._enc_counts: List[int] = [0] * num_partitions
        self._code_key: Dict[int, Hashable] = {}
        self._code_part: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _partition_of(self, key: Hashable) -> int:
        # Range partitioning (not modulo): partition i holds a contiguous
        # slice of the hash space, so visiting partitions in index order and
        # sorting within each yields the global stable-hash order.
        return (stable_hash(key) * self.num_partitions) >> _HASH_BITS

    def _check_plane(self, plane: str) -> None:
        if self._plane is None:
            self._plane = plane
        elif self._plane != plane:
            raise ExecutionError(
                f"cannot mix {plane!r} ingestion with {self._plane!r} "
                "ingestion on one PartitionedShuffle; one backend serves "
                "one data plane per job"
            )

    def add(self, key: Hashable, value: Any) -> None:
        self._check_open()
        self._check_plane("records")
        index = self._partition_of(key)
        buffer = self._buffers[index]
        buffer.append((key, value))
        self._num_pairs += 1
        if len(buffer) >= self.buffer_size:
            self._spill(index)

    def add_group(self, key: Hashable, values: List[Any]) -> None:
        self._check_open()
        if not values:
            return
        self._check_plane("records")
        index = self._partition_of(key)
        buffer = self._buffers[index]
        buffer.extend((key, value) for value in values)
        self._num_pairs += len(values)
        # The buffer may transiently exceed buffer_size by one group's worth
        # of pairs; spill cadence is a memory knob, not part of the metrics.
        if len(buffer) >= self.buffer_size:
            self._spill(index)

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "shuffle backend already closed; backends are single-use — "
                "create a fresh one per executed job"
            )

    def _spill_target(self, index: int) -> Tuple[str, str]:
        """Resolve (path, open mode) for one partition's next spill write."""
        path = self._spill_paths[index]
        if path is None:
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix="repro-shuffle-")
            path = os.path.join(self._spill_dir, f"partition-{index:05d}.spill")
            self._spill_paths[index] = path
            # Truncate on the first open: a caller-supplied spill_dir may
            # hold partition files left behind by an unclean earlier run,
            # and appending to them would silently resurrect stale pairs.
            return path, "wb"
        return path, "ab"

    def _spill(self, index: int) -> None:
        buffer = self._buffers[index]
        if not buffer:
            return
        path, mode = self._spill_target(index)
        payload = pickle.dumps(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, mode) as handle:
            handle.write(payload)
        self.spill_count += 1
        self.spilled_bytes += len(payload)
        self._buffers[index] = []

    # ------------------------------------------------------------------
    # Encoded-batch (columnar) ingest
    # ------------------------------------------------------------------
    def add_encoded(
        self,
        codes: Any,
        row_indices: Optional[Any],
        batch: Any,
        keys_by_code: Dict[int, Hashable],
    ) -> None:
        self._check_open()
        if len(codes) == 0:
            return
        self._check_plane("columnar")
        import numpy as np

        # Partition by the *decoded* key's stable hash, computed once per
        # distinct code — the hash-range invariant (partition i holds a
        # contiguous hash slice) is what makes partition-major read-back
        # come out in global stable-hash order, exactly like the record
        # plane.
        unique_codes, inverse = np.unique(codes, return_inverse=True)
        partition_of_code = np.empty(len(unique_codes), dtype=np.int64)
        for position, code in enumerate(unique_codes.tolist()):
            part = self._code_part.get(code)
            if part is None:
                key = keys_by_code[code]
                self._code_key[code] = key
                part = (stable_hash(key) * self.num_partitions) >> _HASH_BITS
                self._code_part[code] = part
            partition_of_code[position] = part
        partitions = partition_of_code[inverse]
        self._num_pairs += len(codes)
        for part in np.unique(partitions).tolist():
            selection = np.nonzero(partitions == part)[0]
            part_codes = codes[selection]
            if row_indices is None:
                part_batch = batch.take(selection)
            else:
                part_batch = batch.take(row_indices[selection])
            self._enc_buffers[part].append((part_codes, part_batch))
            self._enc_counts[part] += len(part_codes)
            if self._enc_counts[part] >= self.buffer_size:
                self._spill_encoded(part)

    def _spill_encoded(self, index: int) -> None:
        from repro.mapreduce.columnar import pack_encoded_chunk

        chunks = self._enc_buffers[index]
        if not chunks:
            return
        path, mode = self._spill_target(index)
        with open(path, mode) as handle:
            for codes, values in chunks:
                payload = pack_encoded_chunk(codes, values)
                handle.write(payload)
                self.spilled_bytes += len(payload)
        self.spill_count += 1
        self._enc_buffers[index] = []
        self._enc_counts[index] = 0

    def encoded_runs(self) -> Iterator[Any]:
        self._ensure_readable()
        if self._plane == "records":
            raise ExecutionError(
                "this PartitionedShuffle holds record-at-a-time pairs; use "
                "groups() instead of encoded_runs()"
            )
        if self._consumed:
            raise ExecutionError(
                "PartitionedShuffle encoded_runs() is a single-pass iterator "
                "and was already consumed; its partition buffers are freed "
                "during the first traversal, so a second pass would yield "
                "incomplete runs — create a fresh backend per executed job"
            )
        self._consumed = True
        return self._iter_encoded_runs()

    def _iter_encoded_runs(self) -> Iterator[Any]:
        from repro.mapreduce.columnar import (
            build_encoded_run,
            unpack_encoded_chunks,
        )

        # One run per partition; partitions hold contiguous hash ranges, so
        # index order + sorting inside build_encoded_run reproduces the
        # global group order of the record plane.
        for index in range(self.num_partitions):
            self._ensure_readable()
            entries: List[Tuple[Any, Optional[Any], Any]] = []
            path = self._spill_paths[index]
            if path is not None and os.path.exists(path):
                with open(path, "rb") as handle:
                    payload = handle.read()
                for codes, values in unpack_encoded_chunks(payload):
                    entries.append((codes, None, values))
            for codes, values in self._enc_buffers[index]:
                entries.append((codes, None, values))
            # Free the sources before handing the run out, so only one
            # partition's data is resident at a time.
            self._enc_buffers[index] = []
            self._enc_counts[index] = 0
            run = build_encoded_run(entries, self._code_key)
            entries = []
            if run is not None:
                self._ensure_readable()
                yield run

    # ------------------------------------------------------------------
    # Grouped read-back
    # ------------------------------------------------------------------
    def _ensure_readable(self) -> None:
        if self._closed:
            raise ExecutionError(
                "cannot read groups from a closed PartitionedShuffle: its "
                "buffers were cleared and spill files removed on close(); "
                "create a fresh backend per job"
            )

    def groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        """Single-pass iterator over the grouped pairs, in stable-hash order.

        The first pass frees each partition's buffers as it hands the
        partition out (that is the whole point of a spilling shuffle: only
        one partition resident at a time), so a second traversal would see
        cleared buffers next to intact spill files — silently wrong data.
        A repeated call is therefore an execution-lifecycle violation and
        raises :class:`~repro.exceptions.ExecutionError` loudly instead of
        yielding nothing.
        """
        self._ensure_readable()
        if self._plane == "columnar":
            raise ExecutionError(
                "this PartitionedShuffle holds encoded column batches; use "
                "encoded_runs() instead of groups()"
            )
        if self._consumed:
            raise ExecutionError(
                "PartitionedShuffle groups() is a single-pass iterator and "
                "was already consumed; its partition buffers are freed "
                "during the first traversal, so a second pass would yield "
                "incomplete groups — create a fresh backend per executed job"
            )
        self._consumed = True
        return self._iter_groups()

    def _iter_groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        # Re-checked per partition and per group: a close() racing an
        # already-obtained iterator must raise, not quietly exhaust over
        # cleared buffers and removed spill files.
        for index in range(self.num_partitions):
            self._ensure_readable()
            grouped: Dict[Hashable, List[Any]] = {}
            for key, value in self._partition_pairs(index):
                grouped.setdefault(key, []).append(value)
            # Free the sources before handing the partition out, so only one
            # partition's data is resident at a time.
            self._buffers[index] = []
            for key in sorted(grouped.keys(), key=_group_order_key):
                self._ensure_readable()
                yield key, grouped[key]
            grouped = {}

    def _partition_pairs(self, index: int) -> Iterator[Tuple[Hashable, Any]]:
        """Spilled chunks first, then the live buffer: arrival order."""
        path = self._spill_paths[index]
        if path is not None and os.path.exists(path):
            with open(path, "rb") as handle:
                while True:
                    try:
                        chunk = pickle.load(handle)
                    except EOFError:
                        break
                    for pair in chunk:
                        yield pair
        for pair in self._buffers[index]:
            yield pair

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buffers = [[] for _ in range(self.num_partitions)]
        self._enc_buffers = [[] for _ in range(self.num_partitions)]
        self._enc_counts = [0] * self.num_partitions
        self._code_key = {}
        self._code_part = {}
        if self._owns_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
        else:
            for path in self._spill_paths:
                if path is not None and os.path.exists(path):
                    try:
                        os.remove(path)
                    except OSError:  # pragma: no cover - best-effort cleanup
                        pass
        self._spill_paths = [None] * self.num_partitions

    @property
    def num_pairs(self) -> int:
        if self._closed:
            raise ExecutionError(
                "cannot read num_pairs from a closed PartitionedShuffle: "
                "read it before close(), or use the job metrics' "
                "communication cost, which records the same count"
            )
        return self._num_pairs
