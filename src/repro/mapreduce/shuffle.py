"""Pluggable shuffle backends: where intermediate key-value pairs live.

The shuffle is the map → reduce boundary.  The engine streams mapper
emissions into a :class:`ShuffleBackend` one pair at a time and later asks
for the grouped data back, one reduce key at a time, in a deterministic
order.  Two implementations are provided:

* :class:`InMemoryShuffle` — a plain dictionary, fastest for workloads whose
  intermediate data fits in memory (the seed behaviour);
* :class:`PartitionedShuffle` — range-partitions the stable-hash space into
  ``num_partitions`` buckets and spills each bucket to a temporary file once
  its in-memory buffer fills up.  At reduce time only one partition is
  resident at a time, so peak memory is bounded by the largest partition
  plus the write buffers instead of the whole shuffle.

Both backends deliver groups in the same global order — ascending
``(stable_hash(key), repr(key))`` — and preserve the arrival order of the
values within each group, so swapping backends changes neither the outputs
nor the metrics of a job, only the memory profile.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError, ExecutionError
from repro.mapreduce.partitioner import stable_hash

#: stable_hash digests are 8 bytes, so the hash space is [0, 2^64).
_HASH_BITS = 64


def _group_order_key(key: Hashable) -> Tuple[int, str]:
    """Deterministic reduce-key ordering shared by every backend."""
    return (stable_hash(key), repr(key))


class ShuffleBackend(ABC):
    """Receives mapper emissions and hands back groups deterministically.

    The engine drives a backend through a strict lifecycle: any number of
    :meth:`add` calls, then one pass over :meth:`groups`, then
    :meth:`close`.  Backends are single-use; a new job gets a new backend.
    """

    @abstractmethod
    def add(self, key: Hashable, value: Any) -> None:
        """Accept one intermediate key-value pair from the map phase."""

    def add_group(self, key: Hashable, values: List[Any]) -> None:
        """Accept several values for one key at once (order preserved).

        Equivalent to ``add(key, v)`` for each value; backends may override
        with a bulk fast path.  The parallel executor uses this to merge a
        map task's pre-grouped emissions without a per-pair Python call.
        """
        for value in values:
            self.add(key, value)

    @abstractmethod
    def groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        """Yield ``(key, values)`` groups in stable-hash order.

        Values appear in arrival order.  May only be consumed once, and
        only while the backend is open: a closed backend raises
        :class:`~repro.exceptions.ExecutionError` instead of silently
        yielding nothing.
        """

    @abstractmethod
    def close(self) -> None:
        """Release any resources (buffers, spill files).  Idempotent."""

    @property
    @abstractmethod
    def num_pairs(self) -> int:
        """Number of pairs that crossed the map → reduce boundary so far.

        Only meaningful while the backend is open; a closed backend raises
        :class:`~repro.exceptions.ExecutionError` rather than reporting a
        count whose underlying data is gone.
        """

    def __enter__(self) -> "ShuffleBackend":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class InMemoryShuffle(ShuffleBackend):
    """Dictionary-backed shuffle: everything stays resident (seed behaviour)."""

    def __init__(self) -> None:
        self._groups: Dict[Hashable, List[Any]] = {}
        self._num_pairs = 0
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "shuffle backend already closed; backends are single-use — "
                "create a fresh one per executed job"
            )

    def add(self, key: Hashable, value: Any) -> None:
        self._check_open()
        self._groups.setdefault(key, []).append(value)
        self._num_pairs += 1

    def add_group(self, key: Hashable, values: List[Any]) -> None:
        self._check_open()
        if not values:
            return
        self._groups.setdefault(key, []).extend(values)
        self._num_pairs += len(values)

    def _ensure_readable(self) -> None:
        if self._closed:
            raise ExecutionError(
                "cannot read groups from a closed InMemoryShuffle: its data "
                "was released on close(); create a fresh backend per job"
            )

    def groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        # Checked eagerly (this is not a generator function) so a closed
        # backend fails at the groups() call, not on the first next().
        self._ensure_readable()
        return self._iter_groups()

    def _iter_groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        # Re-checked on every step: a close() racing an already-obtained
        # iterator must raise, not quietly exhaust over emptied containers.
        self._ensure_readable()
        for key in sorted(self._groups.keys(), key=_group_order_key):
            self._ensure_readable()
            yield key, self._groups[key]

    def close(self) -> None:
        self._closed = True
        self._groups = {}

    @property
    def num_pairs(self) -> int:
        if self._closed:
            raise ExecutionError(
                "cannot read num_pairs from a closed InMemoryShuffle: read "
                "it before close(), or use the job metrics' communication "
                "cost, which records the same count"
            )
        return self._num_pairs


class PartitionedShuffle(ShuffleBackend):
    """Hash-range-partitioned shuffle that spills partitions to disk.

    Parameters
    ----------
    num_partitions:
        Number of hash ranges.  Reduce-time peak memory is roughly the
        shuffle size divided by this (plus the write buffers), assuming the
        stable hash spreads keys evenly.
    buffer_size:
        Pairs buffered per partition before a spill to that partition's file.
    spill_dir:
        Directory for spill files; a private temporary directory is created
        (lazily, on first spill) when omitted.
    """

    def __init__(
        self,
        num_partitions: int = 16,
        buffer_size: int = 8192,
        spill_dir: Optional[str] = None,
    ) -> None:
        if num_partitions <= 0:
            raise ConfigurationError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        if buffer_size <= 0:
            raise ConfigurationError(f"buffer_size must be positive, got {buffer_size}")
        self.num_partitions = num_partitions
        self.buffer_size = buffer_size
        self._spill_dir = spill_dir
        self._owns_spill_dir = spill_dir is None
        self._buffers: List[List[Tuple[Hashable, Any]]] = [
            [] for _ in range(num_partitions)
        ]
        self._spill_paths: List[Optional[str]] = [None] * num_partitions
        self._num_pairs = 0
        self.spill_count = 0
        self.spilled_bytes = 0
        self._closed = False
        self._consumed = False

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _partition_of(self, key: Hashable) -> int:
        # Range partitioning (not modulo): partition i holds a contiguous
        # slice of the hash space, so visiting partitions in index order and
        # sorting within each yields the global stable-hash order.
        return (stable_hash(key) * self.num_partitions) >> _HASH_BITS

    def add(self, key: Hashable, value: Any) -> None:
        self._check_open()
        index = self._partition_of(key)
        buffer = self._buffers[index]
        buffer.append((key, value))
        self._num_pairs += 1
        if len(buffer) >= self.buffer_size:
            self._spill(index)

    def add_group(self, key: Hashable, values: List[Any]) -> None:
        self._check_open()
        if not values:
            return
        index = self._partition_of(key)
        buffer = self._buffers[index]
        buffer.extend((key, value) for value in values)
        self._num_pairs += len(values)
        # The buffer may transiently exceed buffer_size by one group's worth
        # of pairs; spill cadence is a memory knob, not part of the metrics.
        if len(buffer) >= self.buffer_size:
            self._spill(index)

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "shuffle backend already closed; backends are single-use — "
                "create a fresh one per executed job"
            )

    def _spill(self, index: int) -> None:
        buffer = self._buffers[index]
        if not buffer:
            return
        path = self._spill_paths[index]
        if path is None:
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix="repro-shuffle-")
            path = os.path.join(self._spill_dir, f"partition-{index:05d}.spill")
            self._spill_paths[index] = path
            # Truncate on the first open: a caller-supplied spill_dir may
            # hold partition files left behind by an unclean earlier run,
            # and appending to them would silently resurrect stale pairs.
            mode = "wb"
        else:
            mode = "ab"
        payload = pickle.dumps(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, mode) as handle:
            handle.write(payload)
        self.spill_count += 1
        self.spilled_bytes += len(payload)
        self._buffers[index] = []

    # ------------------------------------------------------------------
    # Grouped read-back
    # ------------------------------------------------------------------
    def _ensure_readable(self) -> None:
        if self._closed:
            raise ExecutionError(
                "cannot read groups from a closed PartitionedShuffle: its "
                "buffers were cleared and spill files removed on close(); "
                "create a fresh backend per job"
            )

    def groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        self._ensure_readable()
        if self._consumed:
            # A second pass would see cleared buffers next to intact spill
            # files — silently wrong data.  Fail loudly instead.
            raise ConfigurationError(
                "PartitionedShuffle groups() may only be consumed once; "
                "create a fresh backend per executed job"
            )
        self._consumed = True
        return self._iter_groups()

    def _iter_groups(self) -> Iterator[Tuple[Hashable, List[Any]]]:
        # Re-checked per partition and per group: a close() racing an
        # already-obtained iterator must raise, not quietly exhaust over
        # cleared buffers and removed spill files.
        for index in range(self.num_partitions):
            self._ensure_readable()
            grouped: Dict[Hashable, List[Any]] = {}
            for key, value in self._partition_pairs(index):
                grouped.setdefault(key, []).append(value)
            # Free the sources before handing the partition out, so only one
            # partition's data is resident at a time.
            self._buffers[index] = []
            for key in sorted(grouped.keys(), key=_group_order_key):
                self._ensure_readable()
                yield key, grouped[key]
            grouped = {}

    def _partition_pairs(self, index: int) -> Iterator[Tuple[Hashable, Any]]:
        """Spilled chunks first, then the live buffer: arrival order."""
        path = self._spill_paths[index]
        if path is not None and os.path.exists(path):
            with open(path, "rb") as handle:
                while True:
                    try:
                        chunk = pickle.load(handle)
                    except EOFError:
                        break
                    for pair in chunk:
                        yield pair
        for pair in self._buffers[index]:
            yield pair

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buffers = [[] for _ in range(self.num_partitions)]
        if self._owns_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
        else:
            for path in self._spill_paths:
                if path is not None and os.path.exists(path):
                    try:
                        os.remove(path)
                    except OSError:  # pragma: no cover - best-effort cleanup
                        pass
        self._spill_paths = [None] * self.num_partitions

    @property
    def num_pairs(self) -> int:
        if self._closed:
            raise ExecutionError(
                "cannot read num_pairs from a closed PartitionedShuffle: "
                "read it before close(), or use the job metrics' "
                "communication cost, which records the same count"
            )
        return self._num_pairs
