"""Simulated cluster configuration.

The cluster abstraction is deliberately small: the paper's analysis only
needs (i) a reducer-size limit ``q``, (ii) a number of reduce workers over
which reducers (reduce keys) are spread, and (iii) rate constants used by
the Section 1.2 cost model.  Everything else about a physical cluster
(network topology, disk, stragglers) is irrelevant to the quantities the
paper studies and is intentionally not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.mapreduce.partitioner import HashPartitioner, Partitioner
from repro.obs import NULL_METRICS, NULL_TRACER


@dataclass
class ClusterConfig:
    """Configuration of the simulated execution environment.

    Parameters
    ----------
    num_workers:
        Number of simulated reduce workers.  Reduce keys are spread across
        the workers by ``partitioner``.  This does not affect replication
        rate, only the worker-load statistics.
    reducer_capacity:
        Optional global reducer-size limit ``q``.  Jobs may override it with
        their own ``reducer_capacity``.
    enforce_capacity:
        If True, exceeding the effective capacity raises
        :class:`repro.exceptions.ReducerCapacityExceededError`; if False the
        violation is only recorded in the job metrics.
    partitioner:
        Strategy for mapping reduce keys to workers.
    communication_cost_per_record:
        Cost charged per shuffled key-value pair by the Section 1.2 cost
        model (the constant of proportionality of the ``a·r`` term).
    worker_cost_per_unit:
        Cost charged per unit of reducer computation (the ``b·q`` term).
    planning_cost_per_second:
        Cost charged per wall-clock second the planner/optimizer spends
        choosing a configuration.  Defaults to 0 (planning is free, the
        paper's accounting); set it to amortize optimizer time over runs.
    map_batch_size:
        Number of consecutive input records processed by one simulated map
        task.  A job's combiner runs once per map task, before the task's
        emissions cross the shuffle boundary — the batch size therefore
        controls how much pre-aggregation a combiner can achieve, exactly
        like Hadoop's input-split size does.  Under the parallel executor a
        map task is also the unit of work shipped to one worker process.
    executor:
        Execution backend the engine uses for this cluster: ``"serial"``
        (everything in-process, the default), ``"parallel"`` (a process
        pool sized by ``num_workers``), or a pre-built
        :class:`~repro.mapreduce.executor.Executor` instance.  Both
        backends produce bit-identical outputs and metrics.
    data_plane:
        Representation records take through map → shuffle → reduce:
        ``"records"`` streams one Python record at a time (the seed
        behaviour); ``"columnar"`` routes jobs that carry a batch kernel
        through vectorized numpy kernels, falling back transparently to the
        record path for jobs without one (or when numpy is unavailable, the
        job has a combiner, the executor is parallel, or the shuffle
        backend cannot hold encoded batches).  Both planes produce
        bit-identical outputs and metrics.
    tracer:
        Span tracer the engine (and everything running on this cluster)
        reports to — see :mod:`repro.obs`.  ``None`` resolves to the
        shared zero-overhead :data:`~repro.obs.NULL_TRACER`; runs under
        the null tracer are bit-identical to untraced runs.
    metrics:
        Metrics registry for the same layers (job counters, replication
        rate, max reducer load ``q_i``, spill volume).  ``None`` resolves
        to the shared no-op :data:`~repro.obs.NULL_METRICS`.
    """

    num_workers: int = 4
    reducer_capacity: Optional[int] = None
    enforce_capacity: bool = False
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    communication_cost_per_record: float = 1.0
    worker_cost_per_unit: float = 1.0
    planning_cost_per_second: float = 0.0
    map_batch_size: int = 1024
    executor: object = "serial"
    data_plane: str = "records"
    tracer: Optional[object] = None
    metrics: Optional[object] = None

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ConfigurationError(
                f"num_workers must be positive, got {self.num_workers}"
            )
        if self.reducer_capacity is not None and self.reducer_capacity <= 0:
            raise ConfigurationError(
                f"reducer_capacity must be positive, got {self.reducer_capacity}"
            )
        if self.communication_cost_per_record < 0:
            raise ConfigurationError("communication_cost_per_record must be >= 0")
        if self.worker_cost_per_unit < 0:
            raise ConfigurationError("worker_cost_per_unit must be >= 0")
        if self.planning_cost_per_second < 0:
            raise ConfigurationError("planning_cost_per_second must be >= 0")
        if self.map_batch_size <= 0:
            raise ConfigurationError(
                f"map_batch_size must be positive, got {self.map_batch_size}"
            )
        if isinstance(self.executor, str):
            # Imported lazily: the executor module imports this one.
            from repro.mapreduce.executor import known_executor_names

            names = known_executor_names()
            if self.executor not in names:
                raise ConfigurationError(
                    f"executor must be one of {list(names)} or an Executor "
                    f"instance, got {self.executor!r}"
                )
        elif not callable(getattr(self.executor, "execute", None)):
            # Duck-typed so this module need not import the executor layer
            # at module level.
            raise ConfigurationError(
                f"executor must be a registered name or an Executor "
                f"instance, got {self.executor!r}"
            )
        if self.data_plane not in ("records", "columnar"):
            raise ConfigurationError(
                f"data_plane must be 'records' or 'columnar', "
                f"got {self.data_plane!r}"
            )
        # Duck-typed like the executor: anything with the Tracer /
        # MetricsRegistry call surface works, and ``None`` means the
        # shared zero-overhead null objects.
        if self.tracer is None:
            self.tracer = NULL_TRACER
        elif not callable(getattr(self.tracer, "span", None)):
            raise ConfigurationError(
                f"tracer must provide a span() method, got {self.tracer!r}"
            )
        if self.metrics is None:
            self.metrics = NULL_METRICS
        elif not callable(getattr(self.metrics, "counter", None)):
            raise ConfigurationError(
                f"metrics must provide a counter() method, got {self.metrics!r}"
            )

    def effective_capacity(self, job_capacity: Optional[int]) -> Optional[int]:
        """Resolve the reducer-size limit for a job.

        A job-level limit overrides the cluster-level one; if neither is set
        the capacity is unbounded (``None``).
        """
        if job_capacity is not None:
            return job_capacity
        return self.reducer_capacity

    def with_capacity(self, q: Optional[int]) -> "ClusterConfig":
        """Return a copy of this configuration with a different ``q``."""
        return ClusterConfig(
            num_workers=self.num_workers,
            reducer_capacity=q,
            enforce_capacity=self.enforce_capacity,
            partitioner=self.partitioner,
            communication_cost_per_record=self.communication_cost_per_record,
            worker_cost_per_unit=self.worker_cost_per_unit,
            planning_cost_per_second=self.planning_cost_per_second,
            map_batch_size=self.map_batch_size,
            executor=self.executor,
            data_plane=self.data_plane,
            tracer=self.tracer,
            metrics=self.metrics,
        )
