"""Pluggable execution backends: who runs the map and reduce work.

The engine in :mod:`repro.mapreduce.engine` owns *what* a job execution
means — streaming inputs through the mapper into a shuffle backend, then
streaming groups through the reducer while metrics are collected.  The
:class:`Executor` layer owns *where* that work runs:

* :class:`SerialExecutor` — everything in the calling process, one record /
  one group at a time.  This is the seed behaviour, bit for bit.
* :class:`ParallelExecutor` — map tasks run over input chunks in worker
  processes (a :class:`concurrent.futures.ProcessPoolExecutor` using the
  ``fork`` start method), each chunk with its own per-task combiner, and the
  reduce phase runs worker-parallel over blocks of shuffle groups.  Results
  are merged in task-submission order, so outputs, communication metrics and
  worker statistics are identical to the serial executor's.

Determinism contract (both executors, any worker count):

* the shuffle backend receives exactly the same multiset of post-combiner
  pairs, with the same per-key value order, so ``num_pairs`` and every
  reducer size match the serial run;
* outputs appear in stable-hash group order (blocks are collected FIFO);
* partitioner worker assignments are computed in the parent while groups
  stream by in stable-hash order, so even *stateful* partitioners
  (round-robin, greedy) see the exact key sequence the serial executor
  shows them.

Jobs are built from closures (every schema family's ``job()`` is), which
plain ``pickle`` cannot ship to a ``spawn``-started process.  The parallel
executor therefore requires the ``fork`` start method.  Jobs reach the
workers one of two ways:

* **warm path** (default): the job — closures included — is packed with
  :mod:`repro.mapreduce.serialization` and attached to each task, so the
  executor's process pool stays **warm across runs**: the first ``execute``
  forks it lazily, later ``execute`` / ``run_chain`` rounds reuse the live
  workers (each caches recently unpacked jobs by version, so concurrent
  jobs interleaving on one pool stay cheap).  Call
  :meth:`ParallelExecutor.close` (or use the executor / engine as a context
  manager) to release the workers; they are also reclaimed when the
  executor is garbage-collected.
* **fork-publication fallback**: jobs whose callables fall outside the
  serializer's envelope are published in a module-level slot just before a
  run-scoped pool forks, exactly the pre-warm behaviour, then the pool is
  torn down with the run.

On platforms without ``fork`` the executor raises a clear
:class:`~repro.exceptions.ConfigurationError` at construction time.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import threading
import time
import warnings
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import (
    ConfigurationError,
    ExecutionError,
    ReducerCapacityExceededError,
)
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import PhaseTimings, WorkerStats
from repro.mapreduce.serialization import JobSerializationError, pack_job, unpack_job
from repro.mapreduce.shuffle import ShuffleBackend
from repro.mapreduce.types import ensure_key_value

logger = logging.getLogger(__name__)


def _guarded_iteration(iterable: Iterable[Any], described: str) -> Iterable[Any]:
    """Re-wrap exceptions raised *while iterating* a user callable's result.

    Mappers, combiners and reducers are usually generators, so their bodies
    run during iteration, not at call time; guarding only the call would let
    their errors escape the engine's ExecutionError contract.
    """
    iterator = iter(iterable)
    while True:
        try:
            item = next(iterator)
        except StopIteration:
            return
        except Exception as error:
            raise ExecutionError(f"{described}: {error}") from error
        yield item


def _emit(job: MapReduceJob, record: Any) -> Iterable[Any]:
    described = f"mapper of job {job.name!r} failed on record {record!r}"
    try:
        pairs = job.mapper(record)
    except Exception as error:
        raise ExecutionError(f"{described}: {error}") from error
    if pairs is None:
        return ()
    return _guarded_iteration(pairs, described)


def _combine_buffer(
    job: MapReduceJob, buffer: Dict[Hashable, List[Any]]
) -> Iterator[Tuple[Hashable, Any]]:
    """Run the combiner over one map task's buffered emissions."""
    for key, values in buffer.items():
        described = f"combiner of job {job.name!r} failed on key {key!r}"
        try:
            combined = job.combiner(key, values)
        except Exception as error:
            raise ExecutionError(f"{described}: {error}") from error
        for item in _guarded_iteration(combined, described):
            pair = ensure_key_value(item)
            yield pair.key, pair.value


class _ReduceBookkeeper:
    """Per-group metric accounting shared by every executor.

    Both executors observe groups in the same stable-hash order; keeping the
    bookkeeping (reducer sizes, capacity enforcement, partitioner
    assignment, compute cost) in one place is what guarantees their metrics
    cannot drift apart.
    """

    def __init__(
        self,
        job: MapReduceJob,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]],
    ) -> None:
        self._capacity = config.effective_capacity(job.reducer_capacity)
        self._enforce = self._capacity is not None and config.enforce_capacity
        self._config = config
        self._reducer_cost = reducer_cost
        self.reducer_sizes: Dict[Hashable, int] = {}
        self.workers = WorkerStats()
        self.compute_cost = 0.0

    def observe(self, key: Hashable, values: List[Any]) -> None:
        """Account for one group; raises if it exceeds the enforced capacity."""
        self.observe_size(key, len(values))

    def observe_size(self, key: Hashable, size: int) -> None:
        """Account for one group given only its size.

        The columnar executor holds group values as array slices, never as
        Python lists; routing its accounting through the same code path as
        the record executors is what keeps the two planes' metrics
        bit-identical by construction.
        """
        self.reducer_sizes[key] = size
        if self._enforce and size > self._capacity:
            raise ReducerCapacityExceededError(key, size, self._capacity)
        worker = self._config.partitioner.assign(key, self._config.num_workers)
        self.workers.keys_per_worker[worker] = (
            self.workers.keys_per_worker.get(worker, 0) + 1
        )
        self.workers.values_per_worker[worker] = (
            self.workers.values_per_worker.get(worker, 0) + size
        )
        if self._reducer_cost is not None:
            self.compute_cost += float(self._reducer_cost(size))

    def outcome(self, num_inputs: int, outputs: List[Any]) -> "ExecutionOutcome":
        return ExecutionOutcome(
            num_inputs=num_inputs,
            outputs=outputs,
            reducer_sizes=self.reducer_sizes,
            workers=self.workers,
            reducer_compute_cost=self.compute_cost,
        )


@dataclass
class ExecutionOutcome:
    """Raw results of one executed job, before metrics assembly.

    The engine turns this into :class:`~repro.mapreduce.metrics.JobMetrics`
    (adding the shuffle backend's pair count); executors stay free of the
    metrics classes' construction details.
    """

    num_inputs: int
    outputs: List[Any]
    reducer_sizes: Dict[Hashable, int] = field(default_factory=dict)
    workers: WorkerStats = field(default_factory=WorkerStats)
    reducer_compute_cost: float = 0.0
    timings: Optional[PhaseTimings] = None


class _TimedGroups:
    """Iterator wrapper accumulating the time spent pulling groups.

    The reduce phase interleaves shuffle read-back (grouping, spill reads,
    sorting) with reducer calls inside one loop; wrapping the backend's
    group iterator is what lets the phase report separate shuffle and
    reduce seconds without restructuring the streaming loop.
    """

    def __init__(self, iterable: Iterable[Any]) -> None:
        self._iterator = iter(iterable)
        self.seconds = 0.0

    def __iter__(self) -> "_TimedGroups":
        return self

    def __next__(self) -> Any:
        start = time.perf_counter()
        try:
            return next(self._iterator)
        finally:
            self.seconds += time.perf_counter() - start


@dataclass(frozen=True)
class WarmPoolStats:
    """Atomic snapshot of one executor's warm-vs-fallback accounting.

    Taken under the executor's lock, so ``warm_runs + fallback_runs`` always
    equals the number of executes whose path decision has been recorded —
    concurrent submitters can never observe a half-updated pair, which the
    individual attribute reads cannot promise.
    """

    warm_runs: int
    fallback_runs: int
    used_warm_pool: Optional[bool]
    active_runs: int

    @property
    def total_runs(self) -> int:
        return self.warm_runs + self.fallback_runs


class WarmPoolFallbackWarning(UserWarning):
    """A job could not be shipped to the warm worker pool.

    Raised as a :mod:`warnings` category (not an error): the run still
    succeeds on the run-scoped fork-publication pool, but it pays a fresh
    pool fork and the persistent workers sit idle.  Filterable with the
    standard warnings machinery — which also means Python's default
    ``"default"`` action may display repeated identical warnings only once
    per process; :attr:`ParallelExecutor.used_warm_pool` and the
    ``warm_runs`` / ``fallback_runs`` counters are the authoritative
    per-run channel, updated on every execute regardless of filters.
    """


class Executor(ABC):
    """Strategy for running a job's map and reduce phases.

    Executors are stateless between ``execute`` calls and may be shared by
    many engines; any per-run resources (process pools) live inside one
    ``execute`` invocation.
    """

    #: Short name used by ``ClusterConfig.executor`` string resolution.
    name: str = "abstract"

    @abstractmethod
    def execute(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]] = None,
    ) -> ExecutionOutcome:
        """Run ``job`` over ``inputs`` through ``backend`` and return results."""


# ----------------------------------------------------------------------
# Serial execution (the seed behaviour)
# ----------------------------------------------------------------------
class SerialExecutor(Executor):
    """Runs everything in the calling process, streaming record by record."""

    name = "serial"

    def execute(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]] = None,
    ) -> ExecutionOutcome:
        map_start = time.perf_counter()
        num_inputs = self._map_phase(job, inputs, backend, config)
        map_seconds = time.perf_counter() - map_start
        outcome = self._reduce_phase(job, backend, config, reducer_cost, num_inputs)
        if outcome.timings is not None:
            outcome.timings.map_seconds = map_seconds
        return outcome

    # -- map phase ------------------------------------------------------
    def _map_phase(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
    ) -> int:
        """Stream inputs through the mapper into the shuffle backend.

        Returns the number of input records consumed.  When the job has a
        combiner, mapper emissions are buffered per map task (a contiguous
        batch of ``map_batch_size`` records) and combined before entering
        the shuffle, so the recorded communication is post-combiner — the
        pairs that would really cross the network.
        """
        if job.combiner is None:
            return self._map_streaming(job, inputs, backend)
        return self._map_with_combiner(job, inputs, backend, config)

    @staticmethod
    def _map_streaming(
        job: MapReduceJob, inputs: Iterable[Any], backend: ShuffleBackend
    ) -> int:
        num_inputs = 0
        for record in inputs:
            num_inputs += 1
            for item in _emit(job, record):
                pair = ensure_key_value(item)
                backend.add(pair.key, pair.value)
        return num_inputs

    @staticmethod
    def _map_with_combiner(
        job: MapReduceJob,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
    ) -> int:
        batch_size = config.map_batch_size
        buffer: Dict[Hashable, List[Any]] = {}
        in_batch = 0
        num_inputs = 0
        for record in inputs:
            num_inputs += 1
            for item in _emit(job, record):
                pair = ensure_key_value(item)
                buffer.setdefault(pair.key, []).append(pair.value)
            in_batch += 1
            if in_batch >= batch_size:
                for key, value in _combine_buffer(job, buffer):
                    backend.add(key, value)
                buffer = {}
                in_batch = 0
        if buffer:
            for key, value in _combine_buffer(job, buffer):
                backend.add(key, value)
        return num_inputs

    # -- reduce phase ---------------------------------------------------
    @staticmethod
    def _reduce_phase(
        job: MapReduceJob,
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]],
        num_inputs: int,
    ) -> ExecutionOutcome:
        """Stream groups out of the backend through the reducer.

        Capacity is enforced as groups stream by, so with
        ``enforce_capacity`` the reducers of groups ordered before an
        oversized key (in stable-hash order) have already run when the
        :class:`ReducerCapacityExceededError` aborts the job — a deliberate
        consequence of never materializing the full shuffle.
        """
        bookkeeper = _ReduceBookkeeper(job, config, reducer_cost)
        outputs: List[Any] = []
        phase_start = time.perf_counter()
        groups = _TimedGroups(backend.groups())
        for key, values in groups:
            bookkeeper.observe(key, values)
            described = f"reducer of job {job.name!r} failed on key {key!r}"
            try:
                produced = job.reducer(key, values)
            except Exception as error:
                raise ExecutionError(f"{described}: {error}") from error
            if produced is not None:
                outputs.extend(_guarded_iteration(produced, described))
        phase_seconds = time.perf_counter() - phase_start
        outcome = bookkeeper.outcome(num_inputs, outputs)
        outcome.timings = PhaseTimings(
            shuffle_seconds=groups.seconds,
            reduce_seconds=max(0.0, phase_seconds - groups.seconds),
        )
        return outcome


# ----------------------------------------------------------------------
# Process-pool execution
# ----------------------------------------------------------------------
#: Slot the parent fills before forking a fallback pool; workers inherit the
#: job through it.  Keyed storage (not a bare global) so a traceback in one
#: run cannot leave a stale job visible as "the" job of the next run.
_FORK_STATE: Dict[str, MapReduceJob] = {}

#: Serializes fallback-path executes process-wide.  Fallback workers are
#: forked lazily (one per submit), so the job slot must stay stable for the
#: whole pool lifetime; two concurrent executes would otherwise race on it
#: and could fork workers holding the *other* run's job.
_FORK_STATE_LOCK = threading.Lock()

#: Worker-side cache of recently unpacked jobs, keyed by version token.
#: Several entries are kept because concurrent warm executes (the query
#: service runs rounds of many jobs on one shared pool) interleave tasks of
#: different versions on the same worker; a single-entry cache would thrash
#: — unpack on every task flip — while staying correct.  The bound caps
#: worker memory; eviction drops the oldest version (tokens are monotonic).
_JOB_CACHE: Dict[int, MapReduceJob] = {}
_JOB_CACHE_LIMIT = 16

#: Parent-side version tokens for warm-path jobs, unique per process.
_JOB_VERSIONS = itertools.count(1)


def _cached_job(version: int, packed: Optional[bytes]) -> MapReduceJob:
    """The job a worker task should run.

    Warm-path tasks carry ``(version, packed job)``: the worker unpacks on
    first sight of a version and serves later tasks from cache.  Fallback
    tasks carry ``packed=None`` and read the fork-inherited slot.
    """
    if packed is None:
        return _FORK_STATE["job"]
    job = _JOB_CACHE.get(version)
    if job is None:
        try:
            unpacked = unpack_job(packed)
        except Exception as error:
            raise ExecutionError(
                f"worker failed to deserialize job (version {version}): {error}"
            ) from error
        while len(_JOB_CACHE) >= _JOB_CACHE_LIMIT:
            del _JOB_CACHE[min(_JOB_CACHE)]
        _JOB_CACHE[version] = unpacked
        job = unpacked
    return job


def _worker_map_chunk(
    version: int, packed: Optional[bytes], records: Sequence[Any]
) -> Tuple[int, List[Tuple[Hashable, List[Any]]]]:
    """Run the mapper (and per-task combiner) over one input chunk.

    One chunk *is* one simulated map task — the parent cuts chunks of
    exactly ``map_batch_size`` records — so combiner scope matches the
    serial executor's.  Emissions are grouped per key (first-emission
    order), which preserves per-key value order while letting the parent
    merge whole value lists instead of pair-at-a-time.
    """
    job = _cached_job(version, packed)
    grouped: Dict[Hashable, List[Any]] = {}
    if job.combiner is None:
        for record in records:
            for item in _emit(job, record):
                pair = ensure_key_value(item)
                grouped.setdefault(pair.key, []).append(pair.value)
    else:
        buffer: Dict[Hashable, List[Any]] = {}
        for record in records:
            for item in _emit(job, record):
                pair = ensure_key_value(item)
                buffer.setdefault(pair.key, []).append(pair.value)
        for key, value in _combine_buffer(job, buffer):
            grouped.setdefault(key, []).append(value)
    return len(records), list(grouped.items())


def _worker_reduce_block(
    version: int,
    packed: Optional[bytes],
    block: Sequence[Tuple[Hashable, List[Any]]],
) -> List[Any]:
    """Run the reducer over one block of shuffle groups, returning outputs."""
    job = _cached_job(version, packed)
    outputs: List[Any] = []
    for key, values in block:
        described = f"reducer of job {job.name!r} failed on key {key!r}"
        try:
            produced = job.reducer(key, values)
        except Exception as error:
            raise ExecutionError(f"{described}: {error}") from error
        if produced is not None:
            outputs.extend(_guarded_iteration(produced, described))
    return outputs


class ParallelExecutor(Executor):
    """Process-pool execution of the map and reduce phases.

    Parameters
    ----------
    num_workers:
        Worker processes in the pool.  Defaults (``None``) to the cluster's
        ``num_workers`` at execute time, so one knob sizes both the
        simulated reduce workers and the real process pool.
    reduce_block_size:
        Shuffle groups dispatched to a worker per reduce task.  Larger
        blocks amortize pickling; smaller blocks balance better when
        reducer sizes are skewed.
    max_pending_factor:
        At most ``max_pending_factor * num_workers`` tasks are in flight at
        once; beyond that the parent drains the oldest task first.  This
        bounds parent-side memory (chunks and blocks are materialized while
        in flight) without stalling the pool.
    keep_warm:
        Reuse one lazily-created process pool across ``execute`` calls
        (and therefore across ``MapReduceEngine.run`` / ``run_chain`` calls
        on an engine holding this executor).  Jobs are shipped per task via
        :mod:`repro.mapreduce.serialization`; a job the serializer cannot
        handle uses a run-scoped fork-publication pool instead, emitting a
        :class:`WarmPoolFallbackWarning` and recording the outcome in
        :attr:`used_warm_pool` / the run counters.  Release the pool with
        :meth:`close` or a ``with`` block.  Set False to fork a fresh pool
        per run (the pre-warm behaviour; explicit, so no warning).
    """

    name = "parallel"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        reduce_block_size: int = 64,
        max_pending_factor: int = 4,
        keep_warm: bool = True,
    ) -> None:
        if num_workers is not None and num_workers <= 0:
            raise ConfigurationError(
                f"num_workers must be positive, got {num_workers}"
            )
        if reduce_block_size <= 0:
            raise ConfigurationError(
                f"reduce_block_size must be positive, got {reduce_block_size}"
            )
        if max_pending_factor <= 0:
            raise ConfigurationError(
                f"max_pending_factor must be positive, got {max_pending_factor}"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "ParallelExecutor requires the 'fork' start method (jobs are "
                "closures, which cannot be pickled to spawn-started workers); "
                "this platform does not support fork — use SerialExecutor"
            )
        self.num_workers = num_workers
        self.reduce_block_size = reduce_block_size
        self.max_pending_factor = max_pending_factor
        self.keep_warm = keep_warm
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers: Optional[int] = None
        self._lock = threading.Lock()
        #: Warm-path executes currently in flight on the shared pool.  The
        #: pool is only resized (torn down and re-forked) when this is
        #: zero: a resize mid-run would shut the pool down under the other
        #: run's feet.
        self._active_runs = 0
        #: Whether the most recent ``execute`` *decision* chose the warm
        #: pool (``None`` until the first run).  ``False`` means the run
        #: used a run-scoped fork pool — either ``keep_warm=False`` or a
        #: job the serializer could not ship (the latter also warns).
        #: Under concurrent executes this single slot is last-writer-wins;
        #: :meth:`warm_stats` gives the consistent counter snapshot.
        self.used_warm_pool: Optional[bool] = None
        #: Lifetime counters of warm-path and fallback executions.
        self.warm_runs: int = 0
        self.fallback_runs: int = 0

    def warm_stats(self) -> WarmPoolStats:
        """Consistent snapshot of the warm/fallback counters.

        The decision and its counter update happen in one critical section
        (see :meth:`execute`), and this read takes the same lock — so the
        snapshot's ``total_runs`` exactly counts decided executes even while
        other threads are mid-submission.
        """
        with self._lock:
            return WarmPoolStats(
                warm_runs=self.warm_runs,
                fallback_runs=self.fallback_runs,
                used_warm_pool=self.used_warm_pool,
                active_runs=self._active_runs,
            )

    def effective_workers(self, config: ClusterConfig) -> int:
        return self.num_workers if self.num_workers is not None else config.num_workers

    # -- warm-pool lifecycle --------------------------------------------
    @property
    def pool_is_warm(self) -> bool:
        """Whether a live worker pool is currently held."""
        return self._pool is not None

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """The persistent pool, (re)created lazily and resized on demand.

        Caller must hold ``self._lock``.  A resize request while other
        executes are in flight is deferred — the current pool keeps serving
        (its worker count is a throughput knob, not a correctness one) and
        the next idle moment re-forks at the requested size.
        """
        if (
            self._pool is not None
            and self._pool_workers != workers
            and self._active_runs == 0
        ):
            self._release_pool(wait=True)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            self._pool_workers = workers
        return self._pool

    def _release_pool(self, wait: bool) -> None:
        pool, self._pool, self._pool_workers = self._pool, None, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def close(self) -> None:
        """Shut the persistent pool down; the next execute re-forks one.

        Intended to be called when no executes are in flight; closing
        under a concurrent warm run makes that run's remaining submissions
        fail (the pool refuses work after shutdown).
        """
        with self._lock:
            self._release_pool(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    # -- execution ------------------------------------------------------
    def execute(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]] = None,
    ) -> ExecutionOutcome:
        packed: Optional[bytes] = None
        fallback_error: Optional[JobSerializationError] = None
        if self.keep_warm:
            try:
                packed = pack_job(job)
            except JobSerializationError as error:
                fallback_error = error
                packed = None
        # The path decision and its counter update form one critical
        # section: concurrent executes on one executor are supported, and
        # a decision recorded separately from its counter would let another
        # job interleave between them, making the pair inconsistent to any
        # observer (warm_stats() reads under the same lock).
        with self._lock:
            self.used_warm_pool = packed is not None
            if packed is not None:
                self.warm_runs += 1
            else:
                self.fallback_runs += 1
        registry = config.metrics
        if registry.enabled:
            if packed is not None:
                registry.counter(
                    "executor_warm_runs_total",
                    "Executions shipped to the persistent warm worker pool",
                ).inc()
            else:
                registry.counter(
                    "executor_fallback_runs_total",
                    "Executions on a run-scoped fork pool (warm path "
                    "unavailable or disabled)",
                ).inc()
        if fallback_error is not None:
            logger.warning(
                "job %r cannot be shipped to the warm worker pool (%s); "
                "falling back to a run-scoped fork pool",
                job.name,
                fallback_error,
            )
            # The fallback is correct but costly (a fresh pool fork per
            # run, idle warm workers) — make it observable instead of
            # silent.  keep_warm=False reaches the same path by explicit
            # configuration and therefore does not warn.  Emitted outside
            # the lock: warning filters can run arbitrary user hooks.
            warnings.warn(
                f"job {job.name!r} cannot be shipped to the warm worker "
                f"pool ({fallback_error}); falling back to a run-scoped "
                f"fork pool",
                WarmPoolFallbackWarning,
                stacklevel=2,
            )
        if packed is not None:
            return self._execute_warm(
                job, packed, inputs, backend, config, reducer_cost
            )
        return self._execute_forked(job, inputs, backend, config, reducer_cost)

    def _execute_warm(
        self,
        job: MapReduceJob,
        packed: bytes,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]],
    ) -> ExecutionOutcome:
        """Run on the persistent pool; tasks carry the packed job.

        The executor lock is held only while acquiring the pool, not for
        the duration of the run: concurrent executes from different threads
        (the query service schedules many jobs' rounds onto one shared
        executor) overlap on the same process pool.  Each run drains its
        own futures FIFO and every task carries its own versioned job, so
        interleaved jobs stay bit-identical to their serial runs; the
        workers' multi-entry job cache keeps the interleaving cheap.
        """
        workers = self.effective_workers(config)
        version = next(_JOB_VERSIONS)
        with self._lock:
            pool = self._ensure_pool(workers)
            self._active_runs += 1
        map_task = partial(_worker_map_chunk, version, packed)
        reduce_task = partial(_worker_reduce_block, version, packed)
        try:
            map_start = time.perf_counter()
            num_inputs = self._map_phase(
                inputs, backend, config, pool, workers, map_task
            )
            map_seconds = time.perf_counter() - map_start
            outcome = self._reduce_phase(
                job, backend, config, reducer_cost, num_inputs, pool,
                workers, reduce_task,
            )
            if outcome.timings is not None:
                outcome.timings.map_seconds = map_seconds
            return outcome
        except BrokenProcessPool as error:
            # A dead worker poisons the whole pool; drop it so the next
            # execute forks a healthy one (unless a concurrent run already
            # replaced it — only drop the pool this run was using).
            with self._lock:
                if self._pool is pool:
                    self._release_pool(wait=False)
            raise ExecutionError(
                f"worker pool died while executing job {job.name!r} "
                f"(a worker process was killed or crashed): {error}"
            ) from error
        finally:
            with self._lock:
                self._active_runs -= 1

    def _execute_forked(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]],
    ) -> ExecutionOutcome:
        """Fallback: run-scoped pool inheriting the job through a fork slot.

        Workers fork lazily (one per submit), so the published job must
        stay stable for the whole pool lifetime; the global lock keeps a
        concurrent fallback execute (engines shared across threads) from
        swapping it mid-run.  Concurrent fallback executes therefore
        serialize.
        """
        workers = self.effective_workers(config)
        map_task = partial(_worker_map_chunk, 0, None)
        reduce_task = partial(_worker_reduce_block, 0, None)
        with _FORK_STATE_LOCK:
            # The job must be visible *before* the pool forks its workers.
            _FORK_STATE["job"] = job
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            try:
                map_start = time.perf_counter()
                num_inputs = self._map_phase(
                    inputs, backend, config, pool, workers, map_task
                )
                map_seconds = time.perf_counter() - map_start
                outcome = self._reduce_phase(
                    job, backend, config, reducer_cost, num_inputs, pool,
                    workers, reduce_task,
                )
                if outcome.timings is not None:
                    outcome.timings.map_seconds = map_seconds
                return outcome
            except BrokenProcessPool as error:
                raise ExecutionError(
                    f"worker pool died while executing job {job.name!r} "
                    f"(a worker process was killed or crashed): {error}"
                ) from error
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
                _FORK_STATE.pop("job", None)

    # -- map phase ------------------------------------------------------
    def _map_phase(
        self,
        inputs: Iterable[Any],
        backend: ShuffleBackend,
        config: ClusterConfig,
        pool: ProcessPoolExecutor,
        workers: int,
        map_task: Callable[[Sequence[Any]], Any],
    ) -> int:
        """Fan map chunks out to the pool, merge results in submission order.

        Chunks are cut at ``map_batch_size`` records — the same map-task
        boundary the serial executor gives the combiner — and their grouped
        emissions enter the shuffle backend in chunk order, so the backend
        sees the same per-key value order as a serial run.  ``map_task`` is
        the worker callable carrying the job (packed bytes on the warm
        path, the fork-slot sentinel on the fallback path).
        """
        max_pending = self.max_pending_factor * workers
        batch_size = config.map_batch_size
        registry = config.metrics
        # Per-task wait histogram: how long the coordinating thread blocked
        # on each map task's result.  Resolved once per phase (not per
        # task); ``None`` keeps the uninstrumented path allocation-free.
        waits = (
            registry.histogram(
                "executor_map_task_wait_seconds",
                "Seconds the coordinator blocked awaiting one map task",
            )
            if registry.enabled
            else None
        )
        tasks = 0
        pending: deque = deque()
        num_inputs = 0
        iterator = iter(inputs)
        chunk: List[Any] = []
        input_error: Optional[BaseException] = None
        while True:
            try:
                record = next(iterator)
            except StopIteration:
                break
            except Exception as error:
                # The input iterable itself failed.  Every record pulled
                # before this point was mapped by the serial executor before
                # it could hit the same failure, so map them here too (the
                # trailing partial chunk included) and let any mapper error
                # among them win — exactly the serial error order.
                input_error = error
                break
            chunk.append(record)
            if len(chunk) >= batch_size:
                if len(pending) >= max_pending:
                    num_inputs += self._drain_map_result(
                        pending, backend, waits
                    )
                pending.append(pool.submit(map_task, chunk))
                tasks += 1
                chunk = []
        if chunk:
            pending.append(pool.submit(map_task, chunk))
            tasks += 1
        while pending:
            num_inputs += self._drain_map_result(pending, backend, waits)
        if registry.enabled:
            registry.counter(
                "executor_map_tasks_total",
                "Map tasks shipped to the worker pool",
            ).inc(tasks)
        if input_error is not None:
            raise input_error
        return num_inputs

    @staticmethod
    def _drain_map_result(
        pending: deque, backend: ShuffleBackend, waits: Any = None
    ) -> int:
        future = pending.popleft()
        if waits is not None:
            wait_start = time.perf_counter()
            chunk_size, grouped = future.result()
            waits.observe(time.perf_counter() - wait_start)
        else:
            chunk_size, grouped = future.result()
        for key, values in grouped:
            backend.add_group(key, values)
        return chunk_size

    # -- reduce phase ---------------------------------------------------
    def _reduce_phase(
        self,
        job: MapReduceJob,
        backend: ShuffleBackend,
        config: ClusterConfig,
        reducer_cost: Optional[Callable[[int], float]],
        num_inputs: int,
        pool: ProcessPoolExecutor,
        workers: int,
        reduce_task: Callable[[Sequence[Tuple[Hashable, List[Any]]]], List[Any]],
    ) -> ExecutionOutcome:
        """Dispatch blocks of groups to the pool, collecting outputs FIFO.

        All metric bookkeeping (reducer sizes, capacity enforcement,
        partitioner assignment, compute cost) happens in the parent while
        groups stream by in stable-hash order — exactly the sequence the
        serial executor processes (the accounting itself is shared via
        :class:`_ReduceBookkeeper`) — so stateful partitioners and capacity
        errors behave identically.  Only the reducer calls travel to the
        workers, through ``reduce_task`` (which carries the job as packed
        bytes on the warm path, or reads the fork slot on the fallback).
        """
        bookkeeper = _ReduceBookkeeper(job, config, reducer_cost)
        outputs: List[Any] = []
        max_pending = self.max_pending_factor * workers
        pending: deque = deque()
        blocks = 0
        block: List[Tuple[Hashable, List[Any]]] = []
        phase_start = time.perf_counter()
        groups = _TimedGroups(backend.groups())
        for key, values in groups:
            try:
                bookkeeper.observe(key, values)
            except Exception:
                # By the time the serial executor detects a capacity
                # violation at this key, every earlier key's reducer has
                # already run — and a reducer error among them would have
                # surfaced *instead*.  Finish the earlier work (in-flight
                # blocks plus the partial one) so its errors take
                # precedence here too.
                if block:
                    pending.append(pool.submit(reduce_task, block))
                while pending:
                    pending.popleft().result()
                raise
            block.append((key, values))
            if len(block) >= self.reduce_block_size:
                if len(pending) >= max_pending:
                    outputs.extend(pending.popleft().result())
                pending.append(pool.submit(reduce_task, block))
                blocks += 1
                block = []
        if block:
            pending.append(pool.submit(reduce_task, block))
            blocks += 1
        while pending:
            outputs.extend(pending.popleft().result())
        phase_seconds = time.perf_counter() - phase_start
        registry = config.metrics
        if registry.enabled:
            registry.counter(
                "executor_reduce_blocks_total",
                "Reduce blocks shipped to the worker pool",
            ).inc(blocks)
        outcome = bookkeeper.outcome(num_inputs, outputs)
        outcome.timings = PhaseTimings(
            shuffle_seconds=groups.seconds,
            reduce_seconds=max(0.0, phase_seconds - groups.seconds),
        )
        return outcome


# ----------------------------------------------------------------------
# Resolution from configuration
# ----------------------------------------------------------------------
#: What ``ClusterConfig.executor`` / ``MapReduceEngine(executor=...)`` accept.
ExecutorSpec = Union[str, Executor, None]

def _columnar_executor_factory() -> Executor:
    # Imported lazily: the columnar module imports this one (and degrades
    # gracefully when numpy is missing — jobs then take its record-path
    # fallback).
    from repro.mapreduce.columnar import ColumnarExecutor

    return ColumnarExecutor()


_EXECUTOR_NAMES: Dict[str, Callable[[], Executor]] = {
    "serial": SerialExecutor,
    "parallel": ParallelExecutor,
    "columnar": _columnar_executor_factory,
}


def known_executor_names() -> Tuple[str, ...]:
    """The executor names ``ClusterConfig.executor`` accepts, sorted.

    Single source of truth for name validation — ``ClusterConfig`` checks
    against this, so registering a new named executor here makes it valid
    configuration everywhere.
    """
    return tuple(sorted(_EXECUTOR_NAMES))


def resolve_executor(spec: ExecutorSpec) -> Executor:
    """Turn an executor spec (name, instance or None) into an Executor.

    ``None`` resolves to :class:`SerialExecutor`, matching the seed
    behaviour; strings resolve through the registered names (``"serial"``,
    ``"parallel"``); instances pass through unchanged.  Matching
    ``ClusterConfig``'s validation, any object with a callable ``execute``
    counts as an executor — subclassing :class:`Executor` is recommended
    but not required.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        factory = _EXECUTOR_NAMES.get(spec)
        if factory is None:
            raise ConfigurationError(
                f"unknown executor {spec!r}; expected one of "
                f"{sorted(_EXECUTOR_NAMES)} or an Executor instance"
            )
        return factory()
    if isinstance(spec, Executor) or callable(getattr(spec, "execute", None)):
        return spec
    raise ConfigurationError(
        f"executor must be a name, an Executor instance or None, got {spec!r}"
    )


def default_parallel_workers(cap: int = 8) -> int:
    """A sensible process count for benchmarks: available cores, capped."""
    return max(1, min(cap, os.cpu_count() or 1))
