"""Job specifications for the simulated map-reduce engine.

A :class:`MapReduceJob` bundles a map function, a reduce function and an
optional combiner, mirroring what a user would submit to Hadoop.  Jobs are
plain data: the engine in :mod:`repro.mapreduce.engine` executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidJobError
from repro.mapreduce.types import (
    CombineFunction,
    Key,
    MapFunction,
    ReduceFunction,
    Value,
)


@dataclass
class MapReduceJob:
    """Specification of a single map-reduce round.

    Parameters
    ----------
    mapper:
        Function from one input record to an iterable of ``(key, value)``
        pairs.  Must treat each input independently (Section 2.3 of the
        paper).
    reducer:
        Function from ``(key, values)`` to an iterable of output records.
    combiner:
        Optional map-side pre-aggregation with reducer semantics.  Only
        useful for associative-commutative reductions (e.g. the partial sums
        of the two-phase matrix-multiplication algorithm).
    name:
        Human-readable job name used in metrics reports.
    reducer_capacity:
        Optional reducer-size limit ``q``.  When set, the engine raises
        :class:`repro.exceptions.ReducerCapacityExceededError` if any reduce
        key receives more than ``q`` values; when ``None`` the engine only
        records the observed maximum.
    batch_kernel:
        Optional vectorized kernel (a
        :class:`repro.mapreduce.columnar.BatchKernel`) equivalent to the
        mapper/reducer pair.  When the cluster's ``data_plane`` is
        ``"columnar"``, jobs carrying a kernel run on typed column batches
        instead of one record at a time; jobs without one (or whose kernel
        declines the inputs) take the record path unchanged.  The kernel
        must be behaviourally identical to the scalar functions — the
        engine treats the record path as the bit-identity oracle.
    """

    mapper: MapFunction
    reducer: ReduceFunction
    combiner: Optional[CombineFunction] = None
    name: str = "map-reduce-job"
    reducer_capacity: Optional[int] = None
    batch_kernel: Optional[object] = None

    def __post_init__(self) -> None:
        if not callable(self.mapper):
            raise InvalidJobError(f"job {self.name!r}: mapper must be callable")
        if not callable(self.reducer):
            raise InvalidJobError(f"job {self.name!r}: reducer must be callable")
        if self.combiner is not None and not callable(self.combiner):
            raise InvalidJobError(f"job {self.name!r}: combiner must be callable")
        if self.reducer_capacity is not None and self.reducer_capacity <= 0:
            raise InvalidJobError(
                f"job {self.name!r}: reducer_capacity must be positive, "
                f"got {self.reducer_capacity}"
            )
        if self.batch_kernel is not None and not callable(
            getattr(self.batch_kernel, "map_batch", None)
        ):
            # Duck-typed so this module need not import the columnar layer
            # (and with it numpy) at module level.
            raise InvalidJobError(
                f"job {self.name!r}: batch_kernel must provide a callable "
                f"map_batch (see repro.mapreduce.columnar.BatchKernel), "
                f"got {self.batch_kernel!r}"
            )

    def with_capacity(self, q: Optional[int]) -> "MapReduceJob":
        """Return a copy of this job with a different reducer-size limit."""
        return MapReduceJob(
            mapper=self.mapper,
            reducer=self.reducer,
            combiner=self.combiner,
            name=self.name,
            reducer_capacity=q,
            batch_kernel=self.batch_kernel,
        )


def identity_reducer(key: Key, values: List[Value]) -> Iterable[Any]:
    """Reducer that re-emits every value it receives, tagged with its key."""
    for value in values:
        yield (key, value)


def collecting_reducer(key: Key, values: List[Value]) -> Iterable[Any]:
    """Reducer that emits the full ``(key, values)`` group as one record."""
    yield (key, list(values))


def make_filtering_mapper(
    route: Callable[[Any], Iterable[Key]],
) -> MapFunction:
    """Build a mapper that sends each input, unchanged, to a set of keys.

    This is the shape of every mapping-schema-derived mapper in this library:
    the *value* is always the input record itself and the routing function
    decides which reducers (keys) receive it.
    """

    def mapper(record: Any) -> Iterable[Tuple[Key, Value]]:
        for key in route(record):
            yield (key, record)

    return mapper


@dataclass
class JobChain:
    """An ordered sequence of jobs forming a multi-round computation.

    The output records of round *i* become the input records of round
    *i + 1*.  Rounds may declare that their mappers are co-located with the
    previous round's reducers (``colocated_rounds``), in which case the
    engine does not charge map-input communication for that round — this is
    exactly the accounting used by the paper's two-phase matrix
    multiplication (Section 6.3), where the second-phase mappers "reside at
    the same compute node" as the first-phase reducers.
    """

    jobs: Sequence[MapReduceJob]
    name: str = "job-chain"
    colocated_rounds: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.jobs:
            raise InvalidJobError("a JobChain needs at least one job")
        for index in self.colocated_rounds:
            if index <= 0 or index >= len(self.jobs):
                raise InvalidJobError(
                    f"colocated round index {index} out of range for a chain "
                    f"of {len(self.jobs)} jobs (round 0 cannot be colocated)"
                )

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)
