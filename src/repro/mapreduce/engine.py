"""Deterministic streaming execution engine for simulated map-reduce jobs.

The engine is the substrate that replaces Hadoop in this reproduction.  It
executes :class:`~repro.mapreduce.job.MapReduceJob` specifications over an
iterable of input records and produces both the outputs and a complete
:class:`~repro.mapreduce.metrics.JobMetrics` cost report.  The shuffle is
modelled exactly: every key-value pair crossing the map → reduce boundary is
counted as one unit of communication, pairs are grouped by key, and each
group is handed to the reduce function.

Three properties distinguish the engine from a naive simulator:

* **Streaming map phase.**  Inputs are consumed one record at a time and
  mapper emissions flow straight into a pluggable
  :class:`~repro.mapreduce.shuffle.ShuffleBackend`; the input list is never
  materialized by the engine, so generators of arbitrary length work.
* **Faithful combiners.**  A combiner runs per simulated map task (a
  contiguous batch of ``ClusterConfig.map_batch_size`` input records), i.e.
  *before* pairs cross the shuffle boundary — exactly where Hadoop runs it.
  Communication cost therefore reflects what a combiner actually saves; it
  is never computed from globally grouped data.
* **Incremental metrics.**  Reducer sizes, worker loads and compute cost are
  collected while groups stream out of the shuffle backend, never from a
  fully materialized intermediate dictionary.

Determinism matters for reproducibility of the benchmarks: reduce keys are
processed in sorted order of their stable hash (falling back to ``repr``
order on ties), and no randomness is used anywhere in the engine.  Note
that *stateful* partitioners (round-robin, greedy load-balancing) therefore
see keys in stable-hash order, not mapper-emission order as the
pre-streaming engine did; their worker assignments remain deterministic but
differ from runs recorded before the streaming rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence

from repro.exceptions import (
    ConfigurationError,
    ExecutionError,
    ReducerCapacityExceededError,
)
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.job import JobChain, MapReduceJob
from repro.mapreduce.metrics import (
    JobMetrics,
    PipelineMetrics,
    ShuffleStats,
    WorkerStats,
)
from repro.mapreduce.shuffle import InMemoryShuffle, ShuffleBackend
from repro.mapreduce.types import ensure_key_value

#: A callable producing a fresh shuffle backend for one job execution.
ShuffleFactory = Callable[[], ShuffleBackend]


def _guarded_iteration(iterable: Iterable[Any], described: str) -> Iterable[Any]:
    """Re-wrap exceptions raised *while iterating* a user callable's result.

    Mappers, combiners and reducers are usually generators, so their bodies
    run during iteration, not at call time; guarding only the call would let
    their errors escape the engine's ExecutionError contract.
    """
    iterator = iter(iterable)
    while True:
        try:
            item = next(iterator)
        except StopIteration:
            return
        except Exception as error:
            raise ExecutionError(f"{described}: {error}") from error
        yield item


@dataclass
class JobResult:
    """Outputs plus metrics of a single executed job."""

    outputs: List[Any]
    metrics: JobMetrics

    @property
    def replication_rate(self) -> float:
        return self.metrics.replication_rate

    @property
    def communication_cost(self) -> int:
        return self.metrics.communication_cost


@dataclass
class PipelineResult:
    """Outputs plus metrics of an executed multi-round job chain."""

    outputs: List[Any]
    metrics: PipelineMetrics
    round_results: List[JobResult] = field(default_factory=list)

    @property
    def total_communication(self) -> int:
        return self.metrics.total_communication


class MapReduceEngine:
    """Executes jobs and job chains on a simulated cluster.

    Parameters
    ----------
    config:
        Cluster configuration.  A default configuration (4 workers, no
        reducer-size limit) is used when omitted.
    shuffle_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.mapreduce.shuffle.ShuffleBackend` per executed job.
        Defaults to :class:`~repro.mapreduce.shuffle.InMemoryShuffle`; pass
        ``PartitionedShuffle`` (or a configured lambda) to bound peak memory
        on large workloads.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        shuffle_factory: Optional[ShuffleFactory] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.shuffle_factory: ShuffleFactory = shuffle_factory or InMemoryShuffle

    # ------------------------------------------------------------------
    # Single-round execution
    # ------------------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        reducer_cost: Optional[Callable[[int], float]] = None,
        shuffle: Optional[ShuffleBackend] = None,
    ) -> JobResult:
        """Execute ``job`` over ``inputs`` and return outputs plus metrics.

        Parameters
        ----------
        job:
            The job specification.
        inputs:
            Input records; consumed once, streamed (never materialized).
        reducer_cost:
            Optional function from a reducer's input size ``q_i`` to its
            computation cost.  The summed cost over all reducers is reported
            as ``reducer_compute_cost`` in the metrics (e.g. pass
            ``lambda q: q * q`` for the all-pairs reducers of Example 1.1).
        shuffle:
            Optional pre-built shuffle backend for this run only, overriding
            the engine's ``shuffle_factory``.
        """
        backend = shuffle if shuffle is not None else self.shuffle_factory()
        try:
            num_inputs = self._map_phase(job, inputs, backend)
            return self._reduce_phase(job, backend, num_inputs, reducer_cost)
        finally:
            backend.close()

    # ------------------------------------------------------------------
    # Multi-round execution
    # ------------------------------------------------------------------
    def run_chain(
        self,
        chain: JobChain,
        inputs: Iterable[Any],
        reducer_costs: Optional[Sequence[Optional[Callable[[int], float]]]] = None,
    ) -> PipelineResult:
        """Execute a multi-round :class:`JobChain`.

        The outputs of each round feed the next round's mappers.  Rounds
        listed in ``chain.colocated_rounds`` are assumed to read their input
        locally (no extra transfer is modelled between rounds; the only
        communication counted is each round's own shuffle, which matches the
        paper's two-phase accounting).
        """
        if not chain.jobs:
            raise ConfigurationError(
                f"cannot execute job chain {chain.name!r}: it contains no jobs"
            )
        if reducer_costs is not None and len(reducer_costs) != len(chain.jobs):
            raise ExecutionError(
                "reducer_costs must have one entry per job in the chain"
            )
        current_inputs: Iterable[Any] = inputs
        round_results: List[JobResult] = []
        for index, job in enumerate(chain.jobs):
            cost_fn = reducer_costs[index] if reducer_costs is not None else None
            result = self.run(job, current_inputs, reducer_cost=cost_fn)
            round_results.append(result)
            current_inputs = result.outputs
        metrics = PipelineMetrics(
            chain_name=chain.name,
            rounds=[result.metrics for result in round_results],
            colocated_rounds=chain.colocated_rounds,
        )
        return PipelineResult(
            outputs=round_results[-1].outputs,
            metrics=metrics,
            round_results=round_results,
        )

    # ------------------------------------------------------------------
    # Map phase (streaming)
    # ------------------------------------------------------------------
    def _map_phase(
        self, job: MapReduceJob, inputs: Iterable[Any], backend: ShuffleBackend
    ) -> int:
        """Stream inputs through the mapper into the shuffle backend.

        Returns the number of input records consumed.  When the job has a
        combiner, mapper emissions are buffered per map task (a contiguous
        batch of ``map_batch_size`` records) and combined before entering
        the shuffle, so the recorded communication is post-combiner — the
        pairs that would really cross the network.
        """
        if job.combiner is None:
            return self._map_streaming(job, inputs, backend)
        return self._map_with_combiner(job, inputs, backend)

    def _map_streaming(
        self, job: MapReduceJob, inputs: Iterable[Any], backend: ShuffleBackend
    ) -> int:
        num_inputs = 0
        for record in inputs:
            num_inputs += 1
            for item in self._emit(job, record):
                pair = ensure_key_value(item)
                backend.add(pair.key, pair.value)
        return num_inputs

    def _map_with_combiner(
        self, job: MapReduceJob, inputs: Iterable[Any], backend: ShuffleBackend
    ) -> int:
        batch_size = self.config.map_batch_size
        buffer: Dict[Hashable, List[Any]] = {}
        in_batch = 0
        num_inputs = 0
        for record in inputs:
            num_inputs += 1
            for item in self._emit(job, record):
                pair = ensure_key_value(item)
                buffer.setdefault(pair.key, []).append(pair.value)
            in_batch += 1
            if in_batch >= batch_size:
                self._flush_combined(job, buffer, backend)
                buffer = {}
                in_batch = 0
        if buffer:
            self._flush_combined(job, buffer, backend)
        return num_inputs

    def _flush_combined(
        self,
        job: MapReduceJob,
        buffer: Dict[Hashable, List[Any]],
        backend: ShuffleBackend,
    ) -> None:
        """Run the combiner over one map task's buffered emissions."""
        for key, values in buffer.items():
            described = f"combiner of job {job.name!r} failed on key {key!r}"
            try:
                combined = job.combiner(key, values)
            except Exception as error:
                raise ExecutionError(f"{described}: {error}") from error
            for item in _guarded_iteration(combined, described):
                pair = ensure_key_value(item)
                backend.add(pair.key, pair.value)

    def _emit(self, job: MapReduceJob, record: Any) -> Iterable[Any]:
        described = f"mapper of job {job.name!r} failed on record {record!r}"
        try:
            pairs = job.mapper(record)
        except Exception as error:
            raise ExecutionError(f"{described}: {error}") from error
        if pairs is None:
            return ()
        return _guarded_iteration(pairs, described)

    # ------------------------------------------------------------------
    # Reduce phase (streaming, metrics collected incrementally)
    # ------------------------------------------------------------------
    def _reduce_phase(
        self,
        job: MapReduceJob,
        backend: ShuffleBackend,
        num_inputs: int,
        reducer_cost: Optional[Callable[[int], float]],
    ) -> JobResult:
        """Stream groups out of the backend through the reducer.

        Capacity is enforced as groups stream by, so with
        ``enforce_capacity`` the reducers of groups ordered before an
        oversized key (in stable-hash order) have already run when the
        :class:`ReducerCapacityExceededError` aborts the job — a deliberate
        consequence of never materializing the full shuffle.
        """
        capacity = self.config.effective_capacity(job.reducer_capacity)
        enforce = capacity is not None and self.config.enforce_capacity
        outputs: List[Any] = []
        compute_cost = 0.0
        reducer_sizes: Dict[Hashable, int] = {}
        workers = WorkerStats()
        for key, values in backend.groups():
            size = len(values)
            reducer_sizes[key] = size
            if enforce and size > capacity:
                raise ReducerCapacityExceededError(key, size, capacity)
            worker = self.config.partitioner.assign(key, self.config.num_workers)
            workers.keys_per_worker[worker] = workers.keys_per_worker.get(worker, 0) + 1
            workers.values_per_worker[worker] = (
                workers.values_per_worker.get(worker, 0) + size
            )
            if reducer_cost is not None:
                compute_cost += float(reducer_cost(size))
            described = f"reducer of job {job.name!r} failed on key {key!r}"
            try:
                produced = job.reducer(key, values)
            except Exception as error:
                raise ExecutionError(f"{described}: {error}") from error
            if produced is not None:
                outputs.extend(_guarded_iteration(produced, described))

        shuffle_stats = ShuffleStats(
            num_inputs=num_inputs,
            num_key_value_pairs=backend.num_pairs,
            reducer_sizes=reducer_sizes,
        )
        metrics = JobMetrics(
            job_name=job.name,
            shuffle=shuffle_stats,
            workers=workers,
            num_outputs=len(outputs),
            reducer_compute_cost=compute_cost,
        )
        return JobResult(outputs=outputs, metrics=metrics)
