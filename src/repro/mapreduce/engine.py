"""Deterministic streaming execution engine for simulated map-reduce jobs.

The engine is the substrate that replaces Hadoop in this reproduction.  It
executes :class:`~repro.mapreduce.job.MapReduceJob` specifications over an
iterable of input records and produces both the outputs and a complete
:class:`~repro.mapreduce.metrics.JobMetrics` cost report.  The shuffle is
modelled exactly: every key-value pair crossing the map → reduce boundary is
counted as one unit of communication, pairs are grouped by key, and each
group is handed to the reduce function.

The engine owns *what* an execution means — the phase structure, the shuffle
lifecycle and metrics assembly — and delegates *where* the work runs to a
pluggable :class:`~repro.mapreduce.executor.Executor`:

* **Streaming map phase.**  Inputs are consumed one record at a time (or one
  ``map_batch_size`` chunk at a time under the parallel executor) and mapper
  emissions flow straight into a pluggable
  :class:`~repro.mapreduce.shuffle.ShuffleBackend`; the input list is never
  materialized by the engine, so generators of arbitrary length work.
* **Faithful combiners.**  A combiner runs per simulated map task (a
  contiguous batch of ``ClusterConfig.map_batch_size`` input records), i.e.
  *before* pairs cross the shuffle boundary — exactly where Hadoop runs it.
  Communication cost therefore reflects what a combiner actually saves; it
  is never computed from globally grouped data.
* **Incremental metrics.**  Reducer sizes, worker loads and compute cost are
  collected while groups stream out of the shuffle backend, never from a
  fully materialized intermediate dictionary.
* **Pluggable executors.**  :class:`~repro.mapreduce.executor.SerialExecutor`
  runs everything in-process (the seed behaviour);
  :class:`~repro.mapreduce.executor.ParallelExecutor` fans map chunks and
  reduce blocks out to a process pool while producing bit-identical outputs
  and metrics.  Select one via ``ClusterConfig.executor``, the engine's
  ``executor=`` argument, or per ``run`` call.

Determinism matters for reproducibility of the benchmarks: reduce keys are
processed in sorted order of their stable hash (falling back to ``repr``
order on ties), and no randomness is used anywhere in the engine.  Note
that *stateful* partitioners (round-robin, greedy load-balancing) therefore
see keys in stable-hash order, not mapper-emission order as the
pre-streaming engine did; their worker assignments remain deterministic but
differ from runs recorded before the streaming rewrite.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.executor import Executor, ExecutorSpec, resolve_executor
from repro.mapreduce.job import JobChain, MapReduceJob
from repro.mapreduce.metrics import JobMetrics, PipelineMetrics, ShuffleStats
from repro.mapreduce.shuffle import InMemoryShuffle, ShuffleBackend
from repro.obs.metrics import POWER_OF_TWO_BUCKETS

#: A callable producing a fresh shuffle backend for one job execution.
ShuffleFactory = Callable[[], ShuffleBackend]

logger = logging.getLogger(__name__)


@dataclass
class JobResult:
    """Outputs plus metrics of a single executed job."""

    outputs: List[Any]
    metrics: JobMetrics

    @property
    def replication_rate(self) -> float:
        return self.metrics.replication_rate

    @property
    def communication_cost(self) -> int:
        return self.metrics.communication_cost


@dataclass
class PipelineResult:
    """Outputs plus metrics of an executed multi-round job chain.

    Besides the final outputs and the per-round :class:`JobResult` list, the
    result aggregates the accounting callers previously had to assemble by
    hand: total communication, per-round output row counts, the observed
    maximum reducer load across rounds, and — when the rounds were planned
    (the multi-round pipeline planner attaches them) — the per-round
    *certified* load bounds.  :meth:`frontier` flattens all of it into one
    row per round, mirroring the planner's ``frontier()`` tables.
    """

    outputs: List[Any]
    metrics: PipelineMetrics
    round_results: List[JobResult] = field(default_factory=list)
    #: Certified upper bound on each round's max reducer load, when the
    #: rounds came from a planner that certified them (``None`` otherwise).
    round_certified_loads: Optional[Tuple[float, ...]] = None

    @property
    def total_communication(self) -> int:
        return self.metrics.total_communication

    @property
    def per_round_rows(self) -> List[int]:
        """Output records produced by each round, in execution order."""
        return [len(result.outputs) for result in self.round_results]

    @property
    def max_reducer_load(self) -> int:
        """The largest *observed* reducer input size across all rounds."""
        return max(
            (
                result.metrics.shuffle.max_reducer_size
                for result in self.round_results
            ),
            default=0,
        )

    @property
    def max_certified_load(self) -> Optional[float]:
        """The largest per-round certified load bound, when rounds carry one."""
        if not self.round_certified_loads:
            return None
        return max(self.round_certified_loads)

    def frontier(self) -> List[Dict[str, object]]:
        """One flat row per executed round, planner-``frontier()`` style."""
        rows: List[Dict[str, object]] = []
        for index, result in enumerate(self.round_results):
            certified: Optional[float] = None
            if self.round_certified_loads is not None and index < len(
                self.round_certified_loads
            ):
                certified = self.round_certified_loads[index]
            rows.append(
                {
                    "round": index,
                    "job": result.metrics.job_name,
                    "communication": result.communication_cost,
                    "replication_rate": result.replication_rate,
                    "observed_max_load": result.metrics.shuffle.max_reducer_size,
                    "certified_load": certified,
                    "rows_out": len(result.outputs),
                }
            )
        return rows


class MapReduceEngine:
    """Executes jobs and job chains on a simulated cluster.

    Parameters
    ----------
    config:
        Cluster configuration.  A default configuration (4 workers, no
        reducer-size limit) is used when omitted.
    shuffle_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.mapreduce.shuffle.ShuffleBackend` per executed job.
        Defaults to :class:`~repro.mapreduce.shuffle.InMemoryShuffle`; pass
        ``PartitionedShuffle`` (or a configured lambda) to bound peak memory
        on large workloads.
    executor:
        Execution backend: an :class:`~repro.mapreduce.executor.Executor`
        instance, one of the names ``"serial"`` / ``"parallel"``, or
        ``None`` to follow ``config.executor`` (which defaults to serial).
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        shuffle_factory: Optional[ShuffleFactory] = None,
        executor: ExecutorSpec = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.shuffle_factory: ShuffleFactory = shuffle_factory or InMemoryShuffle
        self.executor: Executor = resolve_executor(
            executor if executor is not None else self.config.executor
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release executor-held resources (e.g. a warm worker pool).

        The parallel executor keeps its fork pool alive across ``run`` /
        ``run_chain`` calls; closing the engine shuts those workers down.
        Serial execution holds nothing, so this is always safe to call.
        The engine stays usable afterwards — the next parallel run simply
        forks a fresh pool.
        """
        closer = getattr(self.executor, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Single-round execution
    # ------------------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        reducer_cost: Optional[Callable[[int], float]] = None,
        shuffle: Optional[ShuffleBackend] = None,
        executor: ExecutorSpec = None,
    ) -> JobResult:
        """Execute ``job`` over ``inputs`` and return outputs plus metrics.

        Parameters
        ----------
        job:
            The job specification.
        inputs:
            Input records; consumed once, streamed (never materialized).
        reducer_cost:
            Optional function from a reducer's input size ``q_i`` to its
            computation cost.  The summed cost over all reducers is reported
            as ``reducer_compute_cost`` in the metrics (e.g. pass
            ``lambda q: q * q`` for the all-pairs reducers of Example 1.1).
        shuffle:
            Optional pre-built shuffle backend for this run only, overriding
            the engine's ``shuffle_factory``.
        executor:
            Optional execution backend for this run only, overriding the
            engine's executor.
        """
        backend = shuffle if shuffle is not None else self.shuffle_factory()
        active = resolve_executor(executor) if executor is not None else self.executor
        if self.config.data_plane == "columnar":
            active = self._columnar_wrap(active)
        tracer = self.config.tracer
        try:
            with tracer.span("job", job=job.name) as span:
                outcome = active.execute(
                    job, inputs, backend, self.config, reducer_cost
                )
                # Read the pair count before the backend closes: closed
                # backends refuse num_pairs rather than reporting stale
                # counts.  Spill volume is read the same way — only
                # spilling backends expose it.
                shuffle_stats = ShuffleStats(
                    num_inputs=outcome.num_inputs,
                    num_key_value_pairs=backend.num_pairs,
                    reducer_sizes=outcome.reducer_sizes,
                    bytes_shuffled=getattr(backend, "spilled_bytes", None),
                )
                metrics = JobMetrics(
                    job_name=job.name,
                    shuffle=shuffle_stats,
                    workers=outcome.workers,
                    num_outputs=len(outcome.outputs),
                    reducer_compute_cost=outcome.reducer_compute_cost,
                    timings=outcome.timings,
                )
                if tracer.enabled or self.config.metrics.enabled:
                    self._observe_job(span, backend, metrics)
            return JobResult(outputs=outcome.outputs, metrics=metrics)
        finally:
            backend.close()

    def _observe_job(self, span: Any, backend: ShuffleBackend, metrics: JobMetrics) -> None:
        """Report one finished job to the cluster's tracer and registry.

        Called only when at least one of the two is collecting, so the
        default (null) path never pays for attribute assembly.
        """
        tracer = self.config.tracer
        stats = metrics.shuffle
        if tracer.enabled:
            span.set(
                inputs=stats.num_inputs,
                pairs=stats.num_key_value_pairs,
                outputs=metrics.num_outputs,
                replication_rate=round(stats.replication_rate, 6),
                max_reducer_size=stats.max_reducer_size,
            )
            if metrics.timings is not None:
                # Derived phase spans: the executor measures per-phase
                # totals while shuffle reads and reduce work interleave, so
                # the three children are laid out sequentially from the job
                # start — durations are faithful, offsets are a layout.
                timings = metrics.timings
                start = span.start
                for name, seconds in (
                    ("map", timings.map_seconds),
                    ("shuffle", timings.shuffle_seconds),
                    ("reduce", timings.reduce_seconds),
                ):
                    tracer.record_span(name, start, seconds, parent=span)
                    start += seconds
        registry = self.config.metrics
        if registry.enabled:
            registry.counter("engine_jobs_total", "Executed map-reduce jobs").inc()
            registry.counter(
                "engine_input_records_total", "Input records consumed by map phases"
            ).inc(stats.num_inputs)
            registry.counter(
                "engine_shuffled_pairs_total",
                "Key-value pairs crossing the map-reduce boundary "
                "(communication cost)",
            ).inc(stats.num_key_value_pairs)
            registry.counter(
                "engine_output_records_total", "Records emitted by reduce phases"
            ).inc(metrics.num_outputs)
            registry.histogram(
                "engine_replication_rate",
                "Per-job replication rate (pairs per input record)",
                buckets=(1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0,
                         24.0, 32.0, 48.0, 64.0, 96.0, 128.0),
            ).observe(stats.replication_rate)
            registry.histogram(
                "engine_max_reducer_load",
                "Per-job maximum reducer input size (the paper's max q_i)",
                buckets=POWER_OF_TWO_BUCKETS,
            ).observe(float(stats.max_reducer_size))
            if stats.bytes_shuffled is not None:
                registry.counter(
                    "shuffle_spill_bytes_total",
                    "Bytes spilled to disk by shuffle backends",
                ).inc(stats.bytes_shuffled)
                registry.counter(
                    "shuffle_spill_chunks_total",
                    "Spill flushes performed by shuffle backends",
                ).inc(getattr(backend, "spill_count", 0))
            if metrics.timings is not None:
                phase_seconds = registry.counter(
                    "engine_phase_seconds_total",
                    "Wall-clock seconds per execution phase",
                )
                phase_seconds.inc(metrics.timings.map_seconds, phase="map")
                phase_seconds.inc(metrics.timings.shuffle_seconds, phase="shuffle")
                phase_seconds.inc(metrics.timings.reduce_seconds, phase="reduce")

    @staticmethod
    def _columnar_wrap(active: Executor) -> Executor:
        """Route a record executor through the columnar data plane.

        The wrapper decides per job whether the vectorized path applies
        (the job carries a batch kernel, numpy is importable, the shuffle
        backend holds encoded batches, ...) and otherwise delegates to the
        wrapped executor unchanged, so ``data_plane="columnar"`` is always
        safe to enable.
        """
        # Imported lazily: the columnar module needs numpy only on the
        # vectorized path itself, and engines on the record plane must not
        # pay for (or depend on) it.
        from repro.mapreduce.columnar import ColumnarExecutor

        if isinstance(active, ColumnarExecutor):
            return active
        return ColumnarExecutor(fallback=active)

    # ------------------------------------------------------------------
    # Multi-round execution
    # ------------------------------------------------------------------
    def run_chain(
        self,
        chain: JobChain,
        inputs: Iterable[Any],
        reducer_costs: Optional[Sequence[Optional[Callable[[int], float]]]] = None,
        executor: ExecutorSpec = None,
    ) -> PipelineResult:
        """Execute a multi-round :class:`JobChain`.

        The outputs of each round feed the next round's mappers.  Rounds
        listed in ``chain.colocated_rounds`` are assumed to read their input
        locally (no extra transfer is modelled between rounds; the only
        communication counted is each round's own shuffle, which matches the
        paper's two-phase accounting).
        """
        if not chain.jobs:
            raise ConfigurationError(
                f"cannot execute job chain {chain.name!r}: it contains no jobs"
            )
        if reducer_costs is not None and len(reducer_costs) != len(chain.jobs):
            # A mis-sized cost list is a caller configuration mistake, the
            # same class of error as an empty chain — nothing executed yet.
            raise ConfigurationError(
                f"reducer_costs must have one entry per job in the chain: "
                f"got {len(reducer_costs)} for {len(chain.jobs)} jobs"
            )
        current_inputs: Iterable[Any] = inputs
        round_results: List[JobResult] = []
        for index, job in enumerate(chain.jobs):
            cost_fn = reducer_costs[index] if reducer_costs is not None else None
            result = self.run(
                job, current_inputs, reducer_cost=cost_fn, executor=executor
            )
            round_results.append(result)
            current_inputs = result.outputs
        metrics = PipelineMetrics(
            chain_name=chain.name,
            rounds=[result.metrics for result in round_results],
            colocated_rounds=chain.colocated_rounds,
        )
        logger.debug(
            "chain %s: %d rounds, %d pairs shuffled, %d outputs",
            chain.name,
            metrics.num_rounds,
            metrics.total_communication,
            metrics.final_outputs,
        )
        return PipelineResult(
            outputs=round_results[-1].outputs,
            metrics=metrics,
            round_results=round_results,
        )
