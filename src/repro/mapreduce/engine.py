"""Deterministic in-memory execution engine for simulated map-reduce jobs.

The engine is the substrate that replaces Hadoop in this reproduction.  It
executes :class:`~repro.mapreduce.job.MapReduceJob` specifications over an
in-memory list of input records and produces both the outputs and a complete
:class:`~repro.mapreduce.metrics.JobMetrics` cost report.  The shuffle is
modelled exactly: every key-value pair emitted by a mapper is counted as one
unit of communication, pairs are grouped by key, and each group is handed to
the reduce function.

Determinism matters for reproducibility of the benchmarks: reduce keys are
processed in sorted order of their stable hash (falling back to insertion
order when hashing ties), and no randomness is used anywhere in the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ExecutionError, ReducerCapacityExceededError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.job import JobChain, MapReduceJob
from repro.mapreduce.metrics import (
    JobMetrics,
    PipelineMetrics,
    ShuffleStats,
    WorkerStats,
)
from repro.mapreduce.partitioner import stable_hash
from repro.mapreduce.types import ensure_key_value


@dataclass
class JobResult:
    """Outputs plus metrics of a single executed job."""

    outputs: List[Any]
    metrics: JobMetrics

    @property
    def replication_rate(self) -> float:
        return self.metrics.replication_rate

    @property
    def communication_cost(self) -> int:
        return self.metrics.communication_cost


@dataclass
class PipelineResult:
    """Outputs plus metrics of an executed multi-round job chain."""

    outputs: List[Any]
    metrics: PipelineMetrics
    round_results: List[JobResult] = field(default_factory=list)

    @property
    def total_communication(self) -> int:
        return self.metrics.total_communication


class MapReduceEngine:
    """Executes jobs and job chains on a simulated cluster.

    Parameters
    ----------
    config:
        Cluster configuration.  A default configuration (4 workers, no
        reducer-size limit) is used when omitted.
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()

    # ------------------------------------------------------------------
    # Single-round execution
    # ------------------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        inputs: Iterable[Any],
        reducer_cost: Optional[Callable[[int], float]] = None,
    ) -> JobResult:
        """Execute ``job`` over ``inputs`` and return outputs plus metrics.

        Parameters
        ----------
        job:
            The job specification.
        inputs:
            Input records; consumed once.
        reducer_cost:
            Optional function from a reducer's input size ``q_i`` to its
            computation cost.  The summed cost over all reducers is reported
            as ``reducer_compute_cost`` in the metrics (e.g. pass
            ``lambda q: q * q`` for the all-pairs reducers of Example 1.1).
        """
        materialized_inputs = list(inputs)
        grouped, num_pairs = self._map_and_shuffle(job, materialized_inputs)
        capacity = self.config.effective_capacity(job.reducer_capacity)
        self._check_capacity(job, grouped, capacity)

        outputs: List[Any] = []
        compute_cost = 0.0
        for key in self._ordered_keys(grouped):
            values = grouped[key]
            if reducer_cost is not None:
                compute_cost += float(reducer_cost(len(values)))
            try:
                produced = job.reducer(key, values)
            except Exception as error:  # pragma: no cover - defensive re-wrap
                raise ExecutionError(
                    f"reducer of job {job.name!r} failed on key {key!r}: {error}"
                ) from error
            if produced is not None:
                outputs.extend(produced)

        shuffle = ShuffleStats(
            num_inputs=len(materialized_inputs),
            num_key_value_pairs=num_pairs,
            reducer_sizes={key: len(values) for key, values in grouped.items()},
        )
        workers = self._worker_stats(grouped)
        metrics = JobMetrics(
            job_name=job.name,
            shuffle=shuffle,
            workers=workers,
            num_outputs=len(outputs),
            reducer_compute_cost=compute_cost,
        )
        return JobResult(outputs=outputs, metrics=metrics)

    # ------------------------------------------------------------------
    # Multi-round execution
    # ------------------------------------------------------------------
    def run_chain(
        self,
        chain: JobChain,
        inputs: Iterable[Any],
        reducer_costs: Optional[Sequence[Optional[Callable[[int], float]]]] = None,
    ) -> PipelineResult:
        """Execute a multi-round :class:`JobChain`.

        The outputs of each round feed the next round's mappers.  Rounds
        listed in ``chain.colocated_rounds`` are assumed to read their input
        locally (no extra transfer is modelled between rounds; the only
        communication counted is each round's own shuffle, which matches the
        paper's two-phase accounting).
        """
        if reducer_costs is not None and len(reducer_costs) != len(chain.jobs):
            raise ExecutionError(
                "reducer_costs must have one entry per job in the chain"
            )
        current_inputs = list(inputs)
        round_results: List[JobResult] = []
        for index, job in enumerate(chain.jobs):
            cost_fn = reducer_costs[index] if reducer_costs is not None else None
            result = self.run(job, current_inputs, reducer_cost=cost_fn)
            round_results.append(result)
            current_inputs = result.outputs
        metrics = PipelineMetrics(
            chain_name=chain.name,
            rounds=[result.metrics for result in round_results],
            colocated_rounds=chain.colocated_rounds,
        )
        return PipelineResult(
            outputs=round_results[-1].outputs,
            metrics=metrics,
            round_results=round_results,
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _map_and_shuffle(
        self, job: MapReduceJob, inputs: Sequence[Any]
    ) -> Tuple[Dict[Hashable, List[Any]], int]:
        """Run the map phase and group emissions by key.

        Returns the grouped intermediate data and the number of key-value
        pairs crossing the map → reduce boundary (after the combiner, if one
        is configured, since a combiner reduces actual communication).
        """
        emitted: Dict[Hashable, List[Any]] = {}
        for record in inputs:
            try:
                pairs = job.mapper(record)
            except Exception as error:
                raise ExecutionError(
                    f"mapper of job {job.name!r} failed on record {record!r}: {error}"
                ) from error
            if pairs is None:
                continue
            for item in pairs:
                pair = ensure_key_value(item)
                emitted.setdefault(pair.key, []).append(pair.value)

        if job.combiner is None:
            grouped = emitted
        else:
            grouped = {}
            for key, values in emitted.items():
                combined_pairs = job.combiner(key, values)
                for item in combined_pairs:
                    pair = ensure_key_value(item)
                    grouped.setdefault(pair.key, []).append(pair.value)

        num_pairs = sum(len(values) for values in grouped.values())
        return grouped, num_pairs

    def _check_capacity(
        self,
        job: MapReduceJob,
        grouped: Dict[Hashable, List[Any]],
        capacity: Optional[int],
    ) -> None:
        if capacity is None or not self.config.enforce_capacity:
            return
        for key, values in grouped.items():
            if len(values) > capacity:
                raise ReducerCapacityExceededError(key, len(values), capacity)

    def _worker_stats(self, grouped: Dict[Hashable, List[Any]]) -> WorkerStats:
        stats = WorkerStats()
        for key, values in grouped.items():
            worker = self.config.partitioner.assign(key, self.config.num_workers)
            stats.keys_per_worker[worker] = stats.keys_per_worker.get(worker, 0) + 1
            stats.values_per_worker[worker] = (
                stats.values_per_worker.get(worker, 0) + len(values)
            )
        return stats

    @staticmethod
    def _ordered_keys(grouped: Dict[Hashable, List[Any]]) -> List[Hashable]:
        """Deterministic reduce-key processing order (stable-hash order)."""
        return sorted(grouped.keys(), key=lambda key: (stable_hash(key), repr(key)))
