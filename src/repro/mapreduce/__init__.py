"""Simulated single- and multi-round MapReduce substrate.

This subpackage replaces the Hadoop cluster the paper assumes.  It executes
map-reduce jobs in memory, deterministically, while measuring exactly the
quantities the paper analyses: communication cost (key-value pairs shipped
from mappers to reducers), replication rate, and the distribution of reducer
input sizes.
"""

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.columnar import (
    BatchEncodingError,
    BatchKernel,
    ColumnBatch,
    ColumnarExecutor,
    EncodedInput,
    EncodedRun,
    SpilledRows,
    numpy_available,
)
from repro.mapreduce.engine import JobResult, MapReduceEngine, PipelineResult
from repro.mapreduce.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WarmPoolFallbackWarning,
    default_parallel_workers,
    resolve_executor,
)
from repro.mapreduce.job import (
    JobChain,
    MapReduceJob,
    collecting_reducer,
    identity_reducer,
    make_filtering_mapper,
)
from repro.mapreduce.metrics import (
    JobMetrics,
    PhaseTimings,
    PipelineMetrics,
    ShuffleStats,
    WorkerStats,
    reducer_size_quantiles,
)
from repro.mapreduce.serialization import (
    JobSerializationError,
    pack_job,
    unpack_job,
)
from repro.mapreduce.partitioner import (
    GreedyLoadBalancingPartitioner,
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    stable_hash,
)
from repro.mapreduce.shuffle import (
    InMemoryShuffle,
    PartitionedShuffle,
    ShuffleBackend,
)
from repro.mapreduce.types import KeyValue, ReducerInput, ensure_key_value

__all__ = [
    "BatchEncodingError",
    "BatchKernel",
    "ClusterConfig",
    "ColumnBatch",
    "ColumnarExecutor",
    "EncodedInput",
    "EncodedRun",
    "Executor",
    "GreedyLoadBalancingPartitioner",
    "HashPartitioner",
    "InMemoryShuffle",
    "JobChain",
    "JobMetrics",
    "JobSerializationError",
    "JobResult",
    "KeyValue",
    "MapReduceEngine",
    "MapReduceJob",
    "ParallelExecutor",
    "Partitioner",
    "PartitionedShuffle",
    "PhaseTimings",
    "PipelineMetrics",
    "PipelineResult",
    "ReducerInput",
    "RoundRobinPartitioner",
    "SerialExecutor",
    "ShuffleBackend",
    "ShuffleStats",
    "SpilledRows",
    "WarmPoolFallbackWarning",
    "WorkerStats",
    "collecting_reducer",
    "default_parallel_workers",
    "ensure_key_value",
    "identity_reducer",
    "make_filtering_mapper",
    "numpy_available",
    "pack_job",
    "reducer_size_quantiles",
    "resolve_executor",
    "stable_hash",
    "unpack_job",
]
