"""Measurement of the cost quantities studied by the paper.

The two central quantities are:

* **communication cost** — the number of key-value pairs shipped from the
  map phase to the reduce phase (optionally weighted by a per-record size);
* **replication rate** — communication cost divided by the number of input
  records, i.e. the average number of reducers each input reaches.

The metrics layer also records the full distribution of reducer input sizes
(the paper's ``q_i``), which the skew analyses and the reducer-capacity
checks rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple


@dataclass
class ShuffleStats:
    """Statistics of one map → reduce shuffle."""

    num_inputs: int
    num_key_value_pairs: int
    reducer_sizes: Dict[Hashable, int]
    #: Bytes the shuffle backend spilled to disk for this job (``None``
    #: when the backend never spills, e.g. :class:`InMemoryShuffle`).
    #: Excluded from equality like :attr:`JobMetrics.timings`: spill
    #: volume is a property of the backend and its chunking, not of the
    #: computation — serial and parallel runs of the same job legitimately
    #: spill different byte counts while remaining metrically identical.
    bytes_shuffled: Optional[int] = field(default=None, compare=False)

    @property
    def num_reducers(self) -> int:
        """Number of distinct reduce keys that received at least one value."""
        return len(self.reducer_sizes)

    @property
    def replication_rate(self) -> float:
        """Average number of key-value pairs produced per input record."""
        if self.num_inputs == 0:
            return 0.0
        return self.num_key_value_pairs / self.num_inputs

    @property
    def max_reducer_size(self) -> int:
        """The largest observed reducer input size (``max q_i``)."""
        if not self.reducer_sizes:
            return 0
        return max(self.reducer_sizes.values())

    @property
    def mean_reducer_size(self) -> float:
        """Average reducer input size across non-empty reducers."""
        if not self.reducer_sizes:
            return 0.0
        return self.num_key_value_pairs / len(self.reducer_sizes)

    def size_histogram(self) -> Dict[int, int]:
        """Histogram ``{reducer size: number of reducers with that size}``."""
        histogram: Dict[int, int] = {}
        for size in self.reducer_sizes.values():
            histogram[size] = histogram.get(size, 0) + 1
        return dict(sorted(histogram.items()))

    def skew(self) -> float:
        """Ratio of the maximum reducer size to the mean reducer size.

        A value of 1.0 means perfectly balanced reducers; large values signal
        the "curse of the last reducer" the related work discusses.
        """
        mean = self.mean_reducer_size
        if mean == 0:
            return 0.0
        return self.max_reducer_size / mean


@dataclass
class WorkerStats:
    """Load seen by each simulated reduce worker."""

    keys_per_worker: Dict[int, int] = field(default_factory=dict)
    values_per_worker: Dict[int, int] = field(default_factory=dict)

    @property
    def num_workers(self) -> int:
        return len(self.values_per_worker)

    @property
    def max_worker_load(self) -> int:
        if not self.values_per_worker:
            return 0
        return max(self.values_per_worker.values())

    def load_imbalance(self) -> float:
        """Max worker load divided by mean worker load (1.0 = balanced)."""
        if not self.values_per_worker:
            return 0.0
        loads = list(self.values_per_worker.values())
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 0.0
        return max(loads) / mean


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each phase of one executed job.

    The map phase covers input consumption and mapper (or batch-kernel
    encode/map) work; the shuffle phase covers writing pairs into the
    shuffle backend plus reading grouped data back out of it; the reduce
    phase is the remaining group-processing time.  Timings are measurement,
    not semantics: two runs of the same job are considered metrically equal
    even though their timings differ, which is why :class:`JobMetrics`
    excludes this field from equality comparisons.
    """

    map_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    reduce_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.map_seconds + self.shuffle_seconds + self.reduce_seconds

    def summary(self) -> Dict[str, float]:
        return {
            "map_s": self.map_seconds,
            "shuffle_s": self.shuffle_seconds,
            "reduce_s": self.reduce_seconds,
            "total_s": self.total_seconds,
        }


@dataclass
class JobMetrics:
    """Full cost report for one executed map-reduce job."""

    job_name: str
    shuffle: ShuffleStats
    workers: WorkerStats
    num_outputs: int
    reducer_compute_cost: float = 0.0
    #: Per-phase wall-clock timings.  Excluded from equality: the columnar
    #: data plane's bit-identity contract covers outputs and *cost* metrics,
    #: while wall-clock time legitimately differs between runs.
    timings: Optional[PhaseTimings] = field(default=None, compare=False)

    @property
    def replication_rate(self) -> float:
        return self.shuffle.replication_rate

    @property
    def communication_cost(self) -> int:
        return self.shuffle.num_key_value_pairs

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline *cost* numbers, convenient for reports.

        Deliberately excludes :attr:`timings`: summaries are compared for
        equality across executors, shuffle backends and data planes, and
        wall-clock time legitimately differs between equivalent runs.
        Read ``metrics.timings.summary()`` for the per-phase seconds.
        """
        return {
            "inputs": float(self.shuffle.num_inputs),
            "outputs": float(self.num_outputs),
            "key_value_pairs": float(self.shuffle.num_key_value_pairs),
            "replication_rate": self.replication_rate,
            "reducers": float(self.shuffle.num_reducers),
            "max_reducer_size": float(self.shuffle.max_reducer_size),
            "mean_reducer_size": self.shuffle.mean_reducer_size,
            "skew": self.shuffle.skew(),
            "reducer_compute_cost": self.reducer_compute_cost,
        }


@dataclass
class PipelineMetrics:
    """Aggregated cost report for a multi-round computation."""

    chain_name: str
    rounds: List[JobMetrics]
    colocated_rounds: Tuple[int, ...] = ()

    @property
    def total_communication(self) -> int:
        """Total key-value pairs shipped across all non-colocated rounds.

        Rounds whose mappers are co-located with the previous round's
        reducers read their input locally; the communication they incur is
        their own map → reduce shuffle, which *is* counted.  What is *not*
        added is any transfer of the previous round's output to the next
        round's mappers, mirroring Section 6.3's accounting.
        """
        return sum(round_metrics.communication_cost for round_metrics in self.rounds)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def final_outputs(self) -> int:
        if not self.rounds:
            return 0
        return self.rounds[-1].num_outputs

    def per_round_communication(self) -> List[int]:
        return [round_metrics.communication_cost for round_metrics in self.rounds]

    def phase_seconds(self) -> Optional[PhaseTimings]:
        """Per-phase wall-clock seconds summed over all timed rounds.

        Returns ``None`` when no round carries timings (results recorded
        before the timing instrumentation, or synthesized metrics).
        """
        timed = [round_metrics.timings for round_metrics in self.rounds
                 if round_metrics.timings is not None]
        if not timed:
            return None
        return PhaseTimings(
            map_seconds=sum(timing.map_seconds for timing in timed),
            shuffle_seconds=sum(timing.shuffle_seconds for timing in timed),
            reduce_seconds=sum(timing.reduce_seconds for timing in timed),
        )

    def summary(self) -> Dict[str, float]:
        return {
            "rounds": float(self.num_rounds),
            "total_communication": float(self.total_communication),
            "final_outputs": float(self.final_outputs),
        }


def reducer_size_quantiles(
    sizes: Mapping[Hashable, int], quantiles: Sequence[float] = (0.5, 0.9, 0.99)
) -> Dict[float, int]:
    """Return selected quantiles of the reducer-size distribution.

    Quantiles are computed with the nearest-rank method on the sorted sizes,
    which keeps the result an actually-observed integer size.
    """
    if not sizes:
        return {quantile: 0 for quantile in quantiles}
    ordered = sorted(sizes.values())
    result: Dict[float, int] = {}
    for quantile in quantiles:
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile {quantile} outside [0, 1]")
        rank = min(len(ordered) - 1, max(0, math.ceil(quantile * len(ordered)) - 1))
        result[quantile] = ordered[rank]
    return result
