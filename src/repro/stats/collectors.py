"""Streaming per-attribute statistics collectors.

Each collector consumes one column of values (one ``add`` per row, so a
value occurring in many rows is counted with multiplicity) and summarizes a
different aspect of the distribution:

* :class:`ExactHistogram` — the full value → count map.  Exact everything,
  memory proportional to the number of distinct values.
* :class:`ReservoirSample` — a uniform sample of fixed capacity (Vitter's
  algorithm R), the input to the Hoeffding certificates.
* :class:`MisraGries` — deterministic heavy-hitter summary with the classic
  guarantee ``f(v) - N/(k+1) <= counter(v) <= f(v)`` for every value ``v``
  (``N`` rows seen, ``k`` counters), so ``counter(v) + N/(k+1)`` is a valid
  worst-case upper bound on any value's frequency.
* :class:`KMVDistinctEstimator` — k-minimum-values sketch of the distinct
  count, exact below ``k`` distinct values.

Collectors are mergeable where the summary allows it and deterministic:
sampling uses a seeded :class:`random.Random` and hashing uses the
engine-wide :func:`repro.mapreduce.partitioner.stable_hash`.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Dict, Hashable, Iterable, List, Tuple

from repro.exceptions import ConfigurationError
from repro.mapreduce.partitioner import stable_hash

#: Normalization constant mapping stable_hash's 64-bit output into [0, 1).
_HASH_SPACE = float(1 << 64)


def _sort_key(item: Tuple[Hashable, int]) -> Tuple[int, str]:
    """Deterministic ordering for (value, count) pairs: count desc, repr asc."""
    value, count = item
    return (-count, repr(value))


class ExactHistogram:
    """Full frequency histogram of a stream of values."""

    def __init__(self) -> None:
        self._counts: Dict[Hashable, int] = {}
        self.total = 0

    def add(self, value: Hashable, count: int = 1) -> None:
        if count <= 0:
            raise ConfigurationError(f"histogram counts must be positive, got {count}")
        self._counts[value] = self._counts.get(value, 0) + count
        self.total += count

    def add_many(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "ExactHistogram") -> None:
        for value, count in other._counts.items():
            self.add(value, count)

    @property
    def counts(self) -> Dict[Hashable, int]:
        return dict(self._counts)

    @property
    def distinct_count(self) -> int:
        return len(self._counts)

    @property
    def max_frequency(self) -> int:
        return max(self._counts.values(), default=0)

    def frequency(self, value: Hashable) -> int:
        return self._counts.get(value, 0)

    def top(self, k: int) -> List[Tuple[Hashable, int]]:
        """The ``k`` most frequent values, ties broken by value repr."""
        return sorted(self._counts.items(), key=_sort_key)[: max(k, 0)]


class ReservoirSample:
    """Uniform fixed-size sample of a stream (Vitter's algorithm R)."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"reservoir capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.population_size = 0
        self._rng = random.Random(seed)
        self._sample: List[Any] = []

    def add(self, value: Any) -> None:
        self.population_size += 1
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self.population_size)
        if slot < self.capacity:
            self._sample[slot] = value

    def add_many(self, values: Iterable[Any]) -> None:
        for value in values:
            self.add(value)

    @property
    def sample(self) -> Tuple[Any, ...]:
        return tuple(self._sample)

    @property
    def sample_size(self) -> int:
        return len(self._sample)


class MisraGries:
    """Deterministic heavy-hitter summary with ``k`` counters.

    After ``N`` additions, every value ``v`` satisfies
    ``f(v) - N/(k+1) <= counter(v) <= f(v)`` (``counter(v) = 0`` for
    untracked values), so :meth:`upper_bound` never underestimates a
    frequency and :meth:`lower_bound` never overestimates one.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"Misra-Gries capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.total = 0
        self._counters: Dict[Hashable, int] = {}

    def add(self, value: Hashable) -> None:
        self.total += 1
        if value in self._counters:
            self._counters[value] += 1
        elif len(self._counters) < self.capacity:
            self._counters[value] = 1
        else:
            # Decrement-all step; drop counters that reach zero.
            exhausted = []
            for tracked in self._counters:
                self._counters[tracked] -= 1
                if self._counters[tracked] == 0:
                    exhausted.append(tracked)
            for tracked in exhausted:
                del self._counters[tracked]

    def add_many(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.add(value)

    @property
    def counters(self) -> Dict[Hashable, int]:
        return dict(self._counters)

    @property
    def error_bound(self) -> int:
        """Largest possible undercount of any tracked frequency: N/(k+1)."""
        return self.total // (self.capacity + 1)

    def lower_bound(self, value: Hashable) -> int:
        return self._counters.get(value, 0)

    def upper_bound(self, value: Hashable) -> int:
        return self._counters.get(value, 0) + self.error_bound

    def heavy_hitters(self, min_count: int) -> List[Tuple[Hashable, int]]:
        """Values *proven* to occur at least ``min_count`` times.

        Returned as (value, guaranteed lower bound) pairs, most frequent
        first.  A value with true frequency ``>= min_count + error_bound``
        is always reported.
        """
        found = [
            (value, count)
            for value, count in self._counters.items()
            if count >= min_count
        ]
        return sorted(found, key=_sort_key)


class KMVDistinctEstimator:
    """k-minimum-values distinct-count sketch over stable hashes.

    Keeps the ``k`` smallest normalized hash values seen; with fewer than
    ``k`` distinct values the count is exact, beyond that the estimate is
    ``(k - 1) / h_(k)`` where ``h_(k)`` is the k-th smallest hash.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 1:
            raise ConfigurationError(
                f"KMV capacity must be at least 2, got {capacity}"
            )
        self.capacity = capacity
        self._heap: List[float] = []  # max-heap via negation
        self._members: set = set()

    def add(self, value: Hashable) -> None:
        h = stable_hash(value) / _HASH_SPACE
        if h in self._members:
            return
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, -h)
            self._members.add(h)
        elif h < -self._heap[0]:
            self._members.discard(-heapq.heappushpop(self._heap, -h))
            self._members.add(h)

    def add_many(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.add(value)

    @property
    def estimate(self) -> float:
        if len(self._heap) < self.capacity:
            return float(len(self._heap))
        kth = -self._heap[0]
        if kth <= 0.0:
            return float(len(self._heap))
        return (self.capacity - 1) / kth
