"""Dataset statistics: collectors, profiles and the inputs to certification.

The paper's Section 5.5 budgets Shares join candidates by the *expected*
hash-balanced reducer load, which is a fiction on skewed inputs.  This
subpackage supplies what the planner needs to do better: per-attribute
statistics collected from actual dataset instances (exact and
reservoir-sampled frequency histograms, Misra–Gries heavy-hitter summaries,
distinct-count estimators) assembled into a serializable
:class:`DatasetProfile`.  The certifiers in :mod:`repro.planner.certify`
turn a profile into per-bucket tail bounds on reducer load — exact bounds
from full histograms, Hoeffding high-probability bounds from samples —
replacing the expectation-only certificate.

The design follows PostBOUND's split between a statistics module and the
optimizer that consumes it: collectors know nothing about schemas or
planning, profiles are plain serializable data, and all certification math
lives on the planner side.
"""

from repro.stats.collectors import (
    ExactHistogram,
    KMVDistinctEstimator,
    MisraGries,
    ReservoirSample,
)
from repro.stats.profile import (
    AttributeProfile,
    DatasetProfile,
    RelationProfile,
    StreamingRelationProfiler,
    profile_bitstrings,
    profile_graph,
    profile_relation,
    profile_relations,
)

__all__ = [
    "AttributeProfile",
    "DatasetProfile",
    "ExactHistogram",
    "KMVDistinctEstimator",
    "MisraGries",
    "RelationProfile",
    "ReservoirSample",
    "StreamingRelationProfiler",
    "profile_bitstrings",
    "profile_graph",
    "profile_relation",
    "profile_relations",
]
