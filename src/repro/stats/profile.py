"""Dataset profiles: serializable per-attribute statistics bundles.

A :class:`DatasetProfile` holds one :class:`RelationProfile` per named
relation; a relation profile holds one :class:`AttributeProfile` per
column.  Profiles come in two fidelities:

* ``mode="exact"`` — every column keeps its full frequency histogram.  The
  certifiers in :mod:`repro.planner.certify` then produce *exact* per-bucket
  load bounds.
* ``mode="sample"`` — columns keep a seeded reservoir sample plus a
  Misra–Gries heavy-hitter summary and a KMV distinct estimate.  Certifiers
  then produce Hoeffding high-probability bounds.

Profiles are plain data: :meth:`DatasetProfile.to_dict` /
:meth:`DatasetProfile.from_dict` round-trip through JSON-compatible
structures (attribute values must be ints, strings or tuples of those), so
a profile collected once on a large dataset can be stored next to it and
fed back to the planner later.  :meth:`DatasetProfile.fingerprint` gives a
stable content hash used as a cache key by the profile-aware candidate
builders.

Besides relations, the two other input families of the paper can be
profiled through the same shape: :func:`profile_graph` treats an edge list
as a two-column relation (the per-endpoint histograms *are* the degree
sequences), and :func:`profile_bitstrings` profiles a bit-string population
by value and by Hamming weight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.mapreduce.partitioner import stable_hash
from repro.stats.collectors import (
    ExactHistogram,
    KMVDistinctEstimator,
    MisraGries,
    ReservoirSample,
)

#: Default reservoir capacity for sampled profiles.
DEFAULT_SAMPLE_SIZE = 256
#: Default number of Misra–Gries counters for sampled profiles.
DEFAULT_HEAVY_HITTER_CAPACITY = 16


@dataclass(frozen=True)
class AttributeProfile:
    """Statistics of one attribute (column) of one relation.

    ``histogram`` is the full value → count map for exact profiles and
    ``None`` for sampled ones; ``sample`` / ``sample_population`` carry the
    reservoir for sampled profiles (empty for exact ones, where the
    histogram subsumes it).  ``heavy_hitters`` maps values to *guaranteed
    lower bounds* on their frequency and ``heavy_hitter_error`` is the
    summary's maximum undercount, so ``lower + error`` upper-bounds any
    tracked value's true frequency deterministically.

    ``max_degree`` is the exact maximum multiplicity of any value in the
    column — a *degree constraint* in the Abo Khamis–Ngo–Suciu sense.  It
    is one scalar, so the collectors keep it exact even in ``sample`` mode
    (only the scalar is retained, never the per-value counts behind it),
    which is what makes the degree-constraint bounds sound on sampled
    profiles.  ``functional_dependencies`` lists the sibling attributes
    this column functionally determines within its relation (a key column
    has ``max_degree == 1`` and determines every sibling).  Both default
    to "unknown" so profiles serialized before these fields existed load
    unchanged and certify exactly as they used to.
    """

    attribute: str
    total_count: int
    distinct_estimate: float
    histogram: Optional[Mapping[Hashable, int]] = None
    sample: Tuple[Any, ...] = ()
    sample_population: int = 0
    heavy_hitters: Mapping[Hashable, int] = field(default_factory=dict)
    heavy_hitter_error: int = 0
    max_degree: Optional[int] = None
    functional_dependencies: Tuple[str, ...] = ()

    @property
    def exact(self) -> bool:
        return self.histogram is not None

    @property
    def max_frequency_bound(self) -> int:
        """A deterministic upper bound on the most frequent value's count."""
        if self.histogram is not None:
            return max(self.histogram.values(), default=0)
        bound = self.total_count
        if self.heavy_hitters:
            bound = max(self.heavy_hitters.values()) + self.heavy_hitter_error
        if self.max_degree is not None:
            bound = min(bound, self.max_degree)
        return bound

    @property
    def degree_cap(self) -> int:
        """A sound cap on any single value's multiplicity in this column.

        The exact ``max_degree`` when the collectors recorded one, else the
        deterministic Misra–Gries / histogram bound — never an estimate, so
        degree-constraint size bounds built on it are sound in both modes.
        """
        if self.max_degree is not None:
            return self.max_degree
        return self.max_frequency_bound

    def frequency_upper_bound(self, value: Hashable) -> int:
        """A deterministic upper bound on one value's frequency."""
        if self.histogram is not None:
            return self.histogram.get(value, 0)
        bound = self.heavy_hitters.get(value, 0) + self.heavy_hitter_error
        if self.max_degree is not None:
            bound = min(bound, self.max_degree)
        return bound

    def top_values(self, k: int) -> List[Tuple[Hashable, int]]:
        """Most frequent values with guaranteed *lower-bound* counts."""
        if self.histogram is not None:
            ranked = sorted(
                self.histogram.items(), key=lambda item: (-item[1], repr(item[0]))
            )
        else:
            ranked = sorted(
                self.heavy_hitters.items(),
                key=lambda item: (-item[1], repr(item[0])),
            )
        return ranked[: max(k, 0)]


@dataclass(frozen=True)
class RelationProfile:
    """Statistics of one relation: row count plus per-attribute profiles."""

    name: str
    total_rows: int
    attributes: Mapping[str, AttributeProfile]

    @property
    def exact(self) -> bool:
        return all(profile.exact for profile in self.attributes.values())

    def attribute(self, name: str) -> AttributeProfile:
        try:
            return self.attributes[name]
        except KeyError:
            raise ConfigurationError(
                f"profile of relation {self.name!r} has no attribute {name!r} "
                f"(profiled: {sorted(self.attributes)})"
            ) from None


@dataclass(frozen=True)
class DatasetProfile:
    """A named bundle of relation profiles — the planner's statistics input."""

    relations: Mapping[str, RelationProfile]

    @property
    def exact(self) -> bool:
        return all(profile.exact for profile in self.relations.values())

    def relation(self, name: str) -> RelationProfile:
        try:
            return self.relations[name]
        except KeyError:
            raise ConfigurationError(
                f"dataset profile has no relation {name!r} "
                f"(profiled: {sorted(self.relations)})"
            ) from None

    def covers(self, relation_names: Sequence[str]) -> bool:
        return all(name in self.relations for name in relation_names)

    def row_counts(self) -> Dict[str, int]:
        """Profiled row count per relation — the share optimizer's weights."""
        return {
            name: relation.total_rows for name, relation in self.relations.items()
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "relations": {
                name: _relation_to_dict(profile)
                for name, profile in sorted(self.relations.items())
            }
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DatasetProfile":
        relations = {
            name: _relation_from_dict(name, payload)
            for name, payload in data.get("relations", {}).items()
        }
        return cls(relations=relations)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DatasetProfile":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> int:
        """Stable content hash, usable as part of schema-cache keys.

        Memoized on first use: the profile is frozen, and profile-aware
        builders fingerprint once per ``plan`` call, so a budget sweep over
        a large exact profile must not re-serialize every histogram per
        budget point.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = stable_hash(self.to_json())
            object.__setattr__(self, "_fingerprint", cached)
        return cached


# ----------------------------------------------------------------------
# Value encoding: ints, strings and tuples of those survive JSON.
# ----------------------------------------------------------------------
def _encode_value(value: Hashable) -> Any:
    if isinstance(value, bool) or value is None:
        raise ConfigurationError(
            f"profile values must be ints, strings or tuples of those, got {value!r}"
        )
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, tuple):
        return {"t": [_encode_value(item) for item in value]}
    raise ConfigurationError(
        f"profile values must be ints, strings or tuples of those, got {value!r}"
    )


def _decode_value(value: Any) -> Hashable:
    if isinstance(value, dict):
        return tuple(_decode_value(item) for item in value["t"])
    return value


def _encode_counts(counts: Mapping[Hashable, int]) -> List[List[Any]]:
    pairs = sorted(counts.items(), key=lambda item: (-item[1], repr(item[0])))
    return [[_encode_value(value), count] for value, count in pairs]


def _decode_counts(pairs: Sequence[Sequence[Any]]) -> Dict[Hashable, int]:
    return {_decode_value(value): count for value, count in pairs}


def _attribute_to_dict(profile: AttributeProfile) -> Dict[str, Any]:
    return {
        "total_count": profile.total_count,
        "distinct_estimate": profile.distinct_estimate,
        "histogram": (
            None if profile.histogram is None else _encode_counts(profile.histogram)
        ),
        "sample": [_encode_value(value) for value in profile.sample],
        "sample_population": profile.sample_population,
        "heavy_hitters": _encode_counts(profile.heavy_hitters),
        "heavy_hitter_error": profile.heavy_hitter_error,
        "max_degree": profile.max_degree,
        "functional_dependencies": sorted(profile.functional_dependencies),
    }


def _attribute_from_dict(name: str, data: Mapping[str, Any]) -> AttributeProfile:
    histogram = data.get("histogram")
    return AttributeProfile(
        attribute=name,
        total_count=data["total_count"],
        distinct_estimate=data["distinct_estimate"],
        histogram=None if histogram is None else _decode_counts(histogram),
        sample=tuple(_decode_value(value) for value in data.get("sample", ())),
        sample_population=data.get("sample_population", 0),
        heavy_hitters=_decode_counts(data.get("heavy_hitters", ())),
        heavy_hitter_error=data.get("heavy_hitter_error", 0),
        max_degree=data.get("max_degree"),
        functional_dependencies=tuple(data.get("functional_dependencies", ())),
    )


def _relation_to_dict(profile: RelationProfile) -> Dict[str, Any]:
    return {
        "total_rows": profile.total_rows,
        "attributes": {
            name: _attribute_to_dict(attr)
            for name, attr in sorted(profile.attributes.items())
        },
    }


def _relation_from_dict(name: str, data: Mapping[str, Any]) -> RelationProfile:
    return RelationProfile(
        name=name,
        total_rows=data["total_rows"],
        attributes={
            attr_name: _attribute_from_dict(attr_name, payload)
            for attr_name, payload in data.get("attributes", {}).items()
        },
    )


# ----------------------------------------------------------------------
# Streaming collection
# ----------------------------------------------------------------------
class StreamingRelationProfiler:
    """Collects an exact :class:`RelationProfile` while rows stream past.

    The adaptive pipeline executor profiles each intermediate result *as*
    the rows flow from one round's reducers toward the next round's
    mappers — never materializing a second copy for statistics.  Feed rows
    through :meth:`observe` (or wrap an iterable with :meth:`wrap`), then
    :meth:`finish` the profile once the stream is exhausted.
    """

    def __init__(self, name: str, attributes: Sequence[str]) -> None:
        if not attributes:
            raise ConfigurationError("a relation profile needs at least one attribute")
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self._histograms = {attribute: ExactHistogram() for attribute in self.attributes}
        self._rows = 0
        # Functional-dependency witnesses: for each ordered attribute pair
        # still believed functional, the value → value mapping seen so far.
        # A pair is dropped at the first violating row, so the per-row cost
        # stays O(arity²) and shrinks as dependencies are refuted.
        self._fd_witnesses: Dict[Tuple[int, int], Dict[Hashable, Hashable]] = {
            (i, j): {}
            for i in range(len(self.attributes))
            for j in range(len(self.attributes))
            if i != j
        }

    @property
    def rows_seen(self) -> int:
        return self._rows

    def observe(self, row: Sequence[Hashable]) -> None:
        if len(row) != len(self.attributes):
            raise ConfigurationError(
                f"row {row!r} does not match the {len(self.attributes)} "
                f"attributes of {self.name!r}"
            )
        self._rows += 1
        for attribute, value in zip(self.attributes, row):
            self._histograms[attribute].add(value)
        violated = []
        for (i, j), mapping in self._fd_witnesses.items():
            seen = mapping.setdefault(row[i], row[j])
            if seen != row[j]:
                violated.append((i, j))
        for pair in violated:
            del self._fd_witnesses[pair]

    def wrap(self, rows):
        """Yield ``rows`` unchanged while observing each one in passing."""
        for row in rows:
            self.observe(row)
            yield row

    def finish(self) -> RelationProfile:
        """The exact profile of everything observed so far."""
        determined: Dict[str, List[str]] = {
            attribute: [] for attribute in self.attributes
        }
        for i, j in self._fd_witnesses:
            determined[self.attributes[i]].append(self.attributes[j])
        attributes: Dict[str, AttributeProfile] = {}
        for attribute in self.attributes:
            histogram = self._histograms[attribute]
            attributes[attribute] = AttributeProfile(
                attribute=attribute,
                total_count=histogram.total,
                distinct_estimate=float(histogram.distinct_count),
                histogram=dict(histogram.counts),
                max_degree=max(histogram.counts.values(), default=0),
                functional_dependencies=tuple(sorted(determined[attribute])),
            )
        return RelationProfile(
            name=self.name, total_rows=self._rows, attributes=attributes
        )


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
def _profile_column(
    attribute: str,
    values: Sequence[Hashable],
    mode: str,
    sample_size: int,
    heavy_hitter_capacity: int,
    seed: int,
    functional_dependencies: Tuple[str, ...] = (),
) -> AttributeProfile:
    if mode == "exact":
        histogram = ExactHistogram()
        histogram.add_many(values)
        top = histogram.top(heavy_hitter_capacity)
        return AttributeProfile(
            attribute=attribute,
            total_count=histogram.total,
            distinct_estimate=float(histogram.distinct_count),
            histogram=histogram.counts,
            heavy_hitters=dict(top),
            heavy_hitter_error=0,
            max_degree=max(histogram.counts.values(), default=0),
            functional_dependencies=functional_dependencies,
        )
    if mode == "sample":
        reservoir = ReservoirSample(sample_size, seed=seed)
        summary = MisraGries(heavy_hitter_capacity)
        distinct = KMVDistinctEstimator()
        # One exact scalar rides along with the sketches: the maximum
        # multiplicity seen for any value.  Only the running counts live
        # here at collection time; the profile keeps just the max, which
        # is what makes degree-constraint bounds sound on sampled
        # profiles.
        degree_counts: Dict[Hashable, int] = {}
        max_degree = 0
        for value in values:
            reservoir.add(value)
            summary.add(value)
            distinct.add(value)
            degree = degree_counts.get(value, 0) + 1
            degree_counts[value] = degree
            if degree > max_degree:
                max_degree = degree
        return AttributeProfile(
            attribute=attribute,
            total_count=len(values),
            distinct_estimate=distinct.estimate,
            histogram=None,
            sample=reservoir.sample,
            sample_population=reservoir.population_size,
            heavy_hitters=summary.counters,
            heavy_hitter_error=summary.error_bound,
            max_degree=max_degree,
            functional_dependencies=functional_dependencies,
        )
    raise ConfigurationError(f"unknown profiling mode {mode!r}; use 'exact' or 'sample'")


def _functional_dependencies(
    attributes: Sequence[str], rows: Sequence[Sequence[Hashable]]
) -> Dict[str, Tuple[str, ...]]:
    """Per attribute, the sibling attributes it functionally determines.

    Checks every ordered attribute pair against the rows, so a key column
    (``max_degree == 1``) determines every sibling and a foreign-key chain
    records exactly the dependencies the degree-constraint bound exploits.
    """
    arity = len(attributes)
    determined: Dict[str, List[str]] = {attribute: [] for attribute in attributes}
    for i in range(arity):
        for j in range(arity):
            if i == j:
                continue
            mapping: Dict[Hashable, Hashable] = {}
            functional = True
            for row in rows:
                seen = mapping.setdefault(row[i], row[j])
                if seen != row[j]:
                    functional = False
                    break
            if functional:
                determined[attributes[i]].append(attributes[j])
    return {
        attribute: tuple(sorted(names)) for attribute, names in determined.items()
    }


def profile_relation(
    relation: "RelationInstance",
    mode: str = "exact",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    heavy_hitter_capacity: int = DEFAULT_HEAVY_HITTER_CAPACITY,
    seed: int = 0,
) -> RelationProfile:
    """Profile every attribute of one relation instance."""
    attributes: Dict[str, AttributeProfile] = {}
    dependencies = _functional_dependencies(relation.attributes, relation.tuples)
    for index, attribute in enumerate(relation.attributes):
        column = [row[index] for row in relation.tuples]
        attributes[attribute] = _profile_column(
            attribute,
            column,
            mode,
            sample_size,
            heavy_hitter_capacity,
            seed=seed + index,
            functional_dependencies=dependencies[attribute],
        )
    return RelationProfile(
        name=relation.name,
        total_rows=relation.size,
        attributes=attributes,
    )


def profile_relations(
    relations: Sequence["RelationInstance"],
    mode: str = "exact",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    heavy_hitter_capacity: int = DEFAULT_HEAVY_HITTER_CAPACITY,
    seed: int = 0,
) -> DatasetProfile:
    """Profile a set of relation instances into one dataset profile."""
    profiles: Dict[str, RelationProfile] = {}
    for offset, relation in enumerate(relations):
        profiles[relation.name] = profile_relation(
            relation,
            mode=mode,
            sample_size=sample_size,
            heavy_hitter_capacity=heavy_hitter_capacity,
            seed=seed + 1000 * offset,
        )
    return DatasetProfile(relations=profiles)


def profile_graph(
    edges: Sequence[Tuple[int, int]],
    name: str = "E",
    mode: str = "exact",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    heavy_hitter_capacity: int = DEFAULT_HEAVY_HITTER_CAPACITY,
    seed: int = 0,
) -> DatasetProfile:
    """Profile an undirected edge list as a two-column relation ``(u, v)``.

    With edges normalized as ``u < v``, a node's degree is its count in the
    ``u`` column plus its count in the ``v`` column — so an exact graph
    profile carries the full degree sequence, which is what the
    degree-balanced sample-graph bucketings certify against.
    """
    from repro.datagen.relations import RelationInstance

    instance = RelationInstance(
        name=name, attributes=("u", "v"), tuples=tuple(tuple(edge) for edge in edges)
    )
    return profile_relations(
        [instance],
        mode=mode,
        sample_size=sample_size,
        heavy_hitter_capacity=heavy_hitter_capacity,
        seed=seed,
    )


def profile_bitstrings(
    strings: Sequence[int],
    b: int,
    name: str = "bitstrings",
    mode: str = "exact",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    heavy_hitter_capacity: int = DEFAULT_HEAVY_HITTER_CAPACITY,
    seed: int = 0,
) -> DatasetProfile:
    """Profile a bit-string population by value and by Hamming weight."""
    if b <= 0:
        raise ConfigurationError(f"bit width must be positive, got {b}")
    from repro.datagen.relations import RelationInstance

    rows = tuple((word, bin(word).count("1")) for word in strings)
    instance = RelationInstance(name=name, attributes=("value", "weight"), tuples=rows)
    return profile_relations(
        [instance],
        mode=mode,
        sample_size=sample_size,
        heavy_hitter_capacity=heavy_hitter_capacity,
        seed=seed,
    )
