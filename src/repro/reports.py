"""Report generation and a small command-line interface.

``python -m repro.reports <command>`` regenerates the paper's headline
artifacts as plain-text reports without going through pytest:

* ``table1`` / ``table2`` — the two summary tables;
* ``hamming`` — the Figure 1 tradeoff with the Splitting dots;
* ``matmul`` — the one-phase vs two-phase communication comparison;
* ``cost``  — the Section 1.2 optimal-reducer-size sweep.

The module also provides the formatting helpers the examples and benchmarks
share, so reports look identical everywhere.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Callable, Dict, Iterable, List, Sequence

from repro.analysis.lower_bounds import hamming1_lower_bound, hamming1_recipe
from repro.analysis.tables import table1_rows, table2_rows
from repro.core import AlgorithmPoint, ClusterCostModel, TradeoffCurve
from repro.schemas import (
    one_phase_total_communication,
    splitting_points,
    two_phase_total_communication,
)


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def format_value(value: object) -> str:
    """Human-friendly rendering of report cells."""
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6:
            return f"{value:.3e}"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def render_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table with a title banner."""
    materialized = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(column) for column in header]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"=== {title} ==="]
    lines.append("  ".join(name.ljust(widths[index]) for index, name in enumerate(header)))
    lines.append("  ".join("-" * widths[index] for index in range(len(header))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Report builders
# ----------------------------------------------------------------------
def table1_report(q_values: Sequence[float] = (2 ** 4, 2 ** 8, 2 ** 12, 2 ** 16)) -> str:
    """Table 1 with the lower bound evaluated at a reducer-size sweep."""
    rows = []
    for row in table1_rows():
        cells = list(row.as_dict().values())
        cells.extend(row.evaluate(float(q)) for q in q_values)
        rows.append(cells)
    header = ["Problem", "|I|", "|O|", "g(q)", "Lower bound on r"] + [
        f"r(q=2^{int(math.log2(q))})" for q in q_values
    ]
    return render_table("Table 1: lower bounds on replication rate", header, rows)


def table2_report(q_values: Sequence[float] = (2 ** 6, 2 ** 10, 2 ** 14)) -> str:
    """Table 2 with the upper bound evaluated at a reducer-size sweep."""
    rows = []
    for row in table2_rows():
        cells = list(row.as_dict().values())
        cells.extend(row.evaluate(float(q)) for q in q_values)
        rows.append(cells)
    header = ["Problem", "Upper bound on r"] + [
        f"r(q=2^{int(math.log2(q))})" for q in q_values
    ]
    return render_table("Table 2: representative upper bounds on replication rate", header, rows)


def hamming_tradeoff_report(b: int = 24) -> str:
    """Figure 1: the hyperbola and the Splitting-algorithm dots."""
    rows = []
    for c, log_q, rate in splitting_points(b):
        rows.append([c, log_q, rate, hamming1_lower_bound(b, 2.0 ** log_q)])
    return render_table(
        f"Figure 1: Hamming-distance-1 tradeoff, b={b}",
        ["c (segments)", "log2 q", "Splitting r", "lower bound b/log2 q"],
        rows,
    )


def matmul_report(n: int = 1000, q_values: Sequence[float] = (1e4, 1e5, 1e6, 4e6)) -> str:
    """Section 6.3: one-phase vs two-phase total communication."""
    rows = []
    for q in q_values:
        one = one_phase_total_communication(n, q)
        two = two_phase_total_communication(n, q)
        rows.append([q, one, two, "two-phase" if two < one else "one-phase"])
    return render_table(
        f"Section 6.3: matrix multiplication communication, n={n} (crossover at q=n^2={n * n:,})",
        ["q", "one-phase 4n^4/q", "two-phase 4n^3/sqrt(q)", "winner"],
        rows,
    )


def cost_report(
    b: int = 24,
    prices: Sequence[float] = (0.1, 1.0, 10.0, 100.0, 1000.0),
    processing_rate: float = 1.0,
) -> str:
    """Section 1.2: the cost-optimal reducer size as network prices change."""
    curve = TradeoffCurve.from_recipe(hamming1_recipe(b))
    rows = []
    for price in prices:
        model = ClusterCostModel(communication_rate=price, processing_rate=processing_rate)
        best = curve.optimize_cost(model, q_min=2.0, q_max=2.0 ** b)
        rows.append([price, processing_rate, best.q, math.log2(best.q), best.replication_rate, best.total])
    return render_table(
        f"Section 1.2: optimal reducer size per communication price (Hamming-1, b={b})",
        ["a (comm)", "b (proc)", "optimal q", "log2 q", "r", "total cost"],
        rows,
    )


def algorithm_catalog_report(b: int = 24) -> str:
    """The concrete algorithms on the Fig. 1 plane, one row per dot."""
    curve = TradeoffCurve(
        problem_name=f"hamming-1(b={b})",
        lower_bound=lambda q: max(1.0, b / math.log2(q)),
    )
    rows = []
    for c, log_q, rate in splitting_points(b):
        point = AlgorithmPoint(f"splitting(c={c})", q=2.0 ** log_q, replication_rate=rate)
        curve.add_algorithm(point)
        rows.append([point.name, point.q, point.replication_rate, curve.lower_bound_at(point.q)])
    return render_table(
        f"Known algorithms on the tradeoff plane (b={b})",
        ["algorithm", "q", "r", "lower bound at q"],
        rows,
    )


REPORTS: Dict[str, Callable[[], str]] = {
    "table1": table1_report,
    "table2": table2_report,
    "hamming": hamming_tradeoff_report,
    "matmul": matmul_report,
    "cost": cost_report,
    "catalog": algorithm_catalog_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: print one or all reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.reports",
        description="Regenerate the paper's tables and headline figures as text reports.",
    )
    parser.add_argument(
        "report",
        nargs="?",
        default="all",
        choices=sorted(REPORTS) + ["all"],
        help="which report to print (default: all)",
    )
    arguments = parser.parse_args(argv)
    names = sorted(REPORTS) if arguments.report == "all" else [arguments.report]
    output = []
    for name in names:
        output.append(REPORTS[name]())
    print("\n\n".join(output))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
