"""Exception hierarchy shared by every ``repro`` subpackage.

All library-raised errors derive from :class:`ReproError` so that callers can
catch any problem originating from this package with a single ``except``
clause while still being able to distinguish configuration mistakes from
schema violations or execution failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class SchemaViolationError(ReproError):
    """A mapping schema violates one of the two constraints of the model.

    Constraint (1): no reducer may be assigned more than ``q`` inputs.
    Constraint (2): every output must be covered by at least one reducer.
    """


class ReducerCapacityExceededError(SchemaViolationError):
    """A reducer was assigned more than ``q`` inputs (constraint 1)."""

    def __init__(self, reducer_id: object, assigned: int, limit: int) -> None:
        self.reducer_id = reducer_id
        self.assigned = assigned
        self.limit = limit
        super().__init__(
            f"reducer {reducer_id!r} assigned {assigned} inputs, "
            f"exceeding the reducer-size limit q={limit}"
        )


class UncoveredOutputError(SchemaViolationError):
    """An output is not covered by any reducer (constraint 2)."""

    def __init__(self, output: object, missing_count: int = 1) -> None:
        self.output = output
        self.missing_count = missing_count
        super().__init__(
            f"output {output!r} is not covered by any reducer "
            f"({missing_count} uncovered output(s) in total)"
        )


class ExecutionError(ReproError):
    """A simulated map-reduce job failed during execution."""


class InvalidJobError(ExecutionError):
    """A job specification is malformed (missing mapper/reducer, bad types)."""


class BoundDerivationError(ReproError):
    """The lower-bound recipe could not be applied.

    Typically raised when ``g(q)/q`` is not monotonically increasing over the
    requested range, which is a precondition of the manipulation trick in
    Section 2.4 of the paper.
    """


class ProblemDomainError(ReproError):
    """A problem instance refers to inputs or outputs outside its domain."""


class PlanningError(ReproError):
    """The cost-based planner could not produce a plan.

    Raised when no schema family is registered for a problem type, or when
    no registered candidate fits within the requested reducer-size budget.
    """


class AdmissionError(ReproError):
    """The query service refused a submission its capacity can never serve.

    Raised when a pipeline contains a round whose certified max-reducer
    load exceeds the service's configured cluster capacity ``q`` — such a
    round could never be admitted, so rejecting at submission time beats
    queueing it forever.  Also raised for submissions after ``close()``.
    """
