"""Weight-based schemas for Hamming distance 1 with large reducers.

Sections 3.4 and 3.5 give algorithms whose reducer size is close to the
whole universe (``log2 q`` near ``b``) but whose replication rate is strictly
below 2:

* the 2-dimensional algorithm partitions each string's left and right halves
  by weight ranges of width ``k``; only strings on the *lower border* of a
  weight range need to be replicated to the neighbouring cell, giving a
  replication rate of ``1 + 2/k``;
* the d-dimensional generalization splits strings into ``d`` pieces and uses
  a d-dimensional grid of weight cells, giving ``1 + d/k``.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import MapReduceJob
from repro.problems.hamming import HammingDistanceProblem

Cell = Tuple[int, ...]


class HypercubeWeightSchema(SchemaFamily):
    """The d-dimensional weight-partition algorithm of Section 3.5.

    The 2-dimensional algorithm of Section 3.4 is the special case ``d = 2``
    (see :class:`WeightPartitionSchema`).

    Parameters
    ----------
    b:
        Bit-string length; must be divisible by ``num_pieces``.
    num_pieces:
        The dimension ``d`` of the weight grid.
    cell_width:
        The weight-range width ``k``; must divide ``b / d``.  The last range
        in each dimension absorbs the extra weight ``b/d`` exactly as in the
        paper.
    """

    def __init__(self, b: int, num_pieces: int, cell_width: int) -> None:
        if b <= 0:
            raise ConfigurationError(f"b must be positive, got {b}")
        if num_pieces <= 0 or b % num_pieces != 0:
            raise ConfigurationError(
                f"num_pieces={num_pieces} must be positive and divide b={b}"
            )
        piece_length = b // num_pieces
        if cell_width <= 0 or piece_length % cell_width != 0:
            raise ConfigurationError(
                f"cell_width={cell_width} must be positive and divide b/d={piece_length}"
            )
        self.b = b
        self.num_pieces = num_pieces
        self.piece_length = piece_length
        self.cell_width = cell_width
        self.groups_per_dimension = piece_length // cell_width
        self.name = f"weight-grid(b={b}, d={num_pieces}, k={cell_width})"

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def piece_weights(self, word: int) -> Tuple[int, ...]:
        """Weights (popcounts) of the ``d`` pieces of a string."""
        weights = []
        mask = (1 << self.piece_length) - 1
        for piece_index in range(self.num_pieces):
            shift = (self.num_pieces - 1 - piece_index) * self.piece_length
            weights.append(((word >> shift) & mask).bit_count())
        return tuple(weights)

    def weight_group(self, piece_weight: int) -> int:
        """Index of the weight range containing ``piece_weight``.

        The final group absorbs the extra top weight ``b/d``.
        """
        return min(piece_weight // self.cell_width, self.groups_per_dimension - 1)

    def home_cell(self, word: int) -> Cell:
        """The cell a string primarily belongs to."""
        return tuple(self.weight_group(weight) for weight in self.piece_weights(word))

    def is_lower_border(self, piece_weight: int) -> bool:
        """Whether a piece weight sits on the lower border of its range.

        Strings on a lower border must also be replicated to the neighbouring
        cell below in that dimension (unless already in the lowest range).
        """
        group = self.weight_group(piece_weight)
        return group > 0 and piece_weight == group * self.cell_width

    def reducers_for(self, word: int) -> Iterator[Cell]:
        """The home cell plus one neighbour per lower-border dimension."""
        weights = self.piece_weights(word)
        home = tuple(self.weight_group(weight) for weight in weights)
        yield home
        for dimension, weight in enumerate(weights):
            if self.is_lower_border(weight):
                neighbour = list(home)
                neighbour[dimension] -= 1
                yield tuple(neighbour)

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, HammingDistanceProblem) or problem.distance != 1:
            raise ConfigurationError(
                "weight-partition schemas serve the Hamming-distance-1 problem"
            )
        if problem.b != self.b:
            raise ConfigurationError(
                f"schema built for b={self.b} cannot serve a problem with b={problem.b}"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for word in problem.inputs():
            for cell in self.reducers_for(word):
                schema.assign_one(cell, word)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """The paper's asymptotic rate ``1 + d/k``."""
        return 1.0 + self.num_pieces / self.cell_width

    def max_reducer_size_formula(self) -> float:
        """Population of the most populous cell, via Stirling (Section 3.5).

        ``k^d · 2^b / (b^{d/2} · (2π/d)^{d/2})`` — the cell whose every piece
        has weight near ``b/(2d)``.
        """
        d = self.num_pieces
        return (
            self.cell_width ** d
            * 2.0 ** self.b
            / (self.b ** (d / 2.0) * (2.0 * math.pi / d) ** (d / 2.0))
        )

    def exact_replication_rate(self) -> float:
        """Exact average replication over the full universe of 2^b strings.

        Computed from the binomial weight distribution of each piece rather
        than by enumerating strings, so it stays cheap for any ``b``.
        The rate is ``1 + Σ_dim P(piece weight on a lower border)``.
        """
        piece_total = 2 ** self.piece_length
        border_probability = (
            sum(
                math.comb(self.piece_length, weight)
                for weight in range(self.piece_length + 1)
                if self.is_lower_border(weight)
            )
            / piece_total
        )
        return 1.0 + self.num_pieces * border_probability

    def exact_max_reducer_size(self) -> int:
        """Exact population of the most populous cell (binomial sums)."""
        per_group_counts = []
        for group in range(self.groups_per_dimension):
            low = group * self.cell_width
            high = (group + 1) * self.cell_width - 1
            if group == self.groups_per_dimension - 1:
                high = self.piece_length
            per_group_counts.append(
                sum(math.comb(self.piece_length, weight) for weight in range(low, high + 1))
            )
        densest_group = max(per_group_counts)
        base = densest_group ** self.num_pieces
        # Border strings of neighbouring cells also land here; bound their
        # contribution by one extra border weight per dimension.
        border_extra = 0
        for dimension in range(self.num_pieces):
            boundary_weight = None
            for group in range(1, self.groups_per_dimension):
                boundary_weight = group * self.cell_width
            if boundary_weight is not None:
                border_extra += math.comb(self.piece_length, boundary_weight) * (
                    densest_group ** (self.num_pieces - 1)
                )
        return base + border_extra

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Job that finds all distance-1 pairs among the present strings.

        Deduplication rule: a pair {u, v} (with u the string of lower total
        weight) is emitted only at u's home cell, where both strings are
        guaranteed to be present.
        """
        schema = self

        def mapper(word: int):
            for cell in schema.reducers_for(word):
                yield (cell, word)

        def reducer(cell: Cell, words: List[int]):
            ordered = sorted(set(words))
            present = set(ordered)
            for word in ordered:
                # Consider only neighbours obtained by clearing a set bit:
                # then `other` has lower weight and `word` is the heavier one.
                for position in range(schema.b):
                    if not word & (1 << position):
                        continue
                    other = word ^ (1 << position)
                    if other not in present:
                        continue
                    if schema.home_cell(other) == cell:
                        pair = (other, word) if other < word else (word, other)
                        yield pair

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name)


class WeightPartitionSchema(HypercubeWeightSchema):
    """The 2-dimensional (left half / right half) algorithm of Section 3.4."""

    def __init__(self, b: int, cell_width: int) -> None:
        super().__init__(b, num_pieces=2, cell_width=cell_width)
        self.name = f"weight-partition(b={b}, k={cell_width})"

    def replication_rate_formula(self) -> float:
        """Section 3.4's ``1 + 2/k``."""
        return 1.0 + 2.0 / self.cell_width

    def max_reducer_size_formula(self) -> float:
        """Section 3.4's ``k² · 2^b / (π b)``."""
        return self.cell_width ** 2 * 2.0 ** self.b / (math.pi * self.b)
