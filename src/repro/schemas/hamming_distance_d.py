"""Schemas for Hamming distances larger than 1 (Section 3.6).

Two constructions are described in the paper:

* **Segment deletion** — generalizing the Splitting algorithm: divide the
  ``b`` bits into ``k`` equal segments; a reducer corresponds to a choice of
  ``d`` segments to delete plus the remaining bits.  Two strings within
  distance ``d`` differ in at most ``d`` segments, so the reducer obtained
  by deleting a superset of those segments covers the pair.  Each input is
  sent to ``C(k, d)`` reducers, giving replication rate ``C(k, d) ≈ (ek/d)^d``.

* **Ball-2 / anchor reducers** — one reducer per string ``s`` of length
  ``b`` receiving all strings at distance ≤ 1 from ``s``.  Every two strings
  at distance ≤ 2 share such an anchor, each reducer has ``q = b + 1``
  inputs, and the replication rate is ``b + 1``.  Its importance in the
  paper is the ``Ω(q²)`` output coverage that blocks a strong lower bound.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Optional, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.columnar import BatchKernel, ColumnBatch, EncodedRun
from repro.mapreduce.job import MapReduceJob
from repro.problems.hamming import HammingDistanceProblem
from repro.schemas.hamming_splitting import _encode_words, _group_pairs


class SegmentDeletionSchema(SchemaFamily):
    """Generalized splitting for Hamming distance ``d`` (Section 3.6).

    Parameters
    ----------
    b:
        Bit-string length.
    num_segments:
        Number of equal segments ``k``; must divide ``b`` and satisfy
        ``k > d`` (otherwise deleting ``d`` segments leaves nothing to key on).
    distance:
        The target Hamming distance ``d``.
    """

    def __init__(self, b: int, num_segments: int, distance: int) -> None:
        if b <= 0:
            raise ConfigurationError(f"b must be positive, got {b}")
        if num_segments <= 0 or b % num_segments != 0:
            raise ConfigurationError(
                f"num_segments={num_segments} must be positive and divide b={b}"
            )
        if distance <= 0 or distance >= num_segments:
            raise ConfigurationError(
                f"distance={distance} must satisfy 0 < d < num_segments={num_segments}"
            )
        self.b = b
        self.num_segments = num_segments
        self.distance = distance
        self.segment_length = b // num_segments
        self.name = f"segment-deletion(b={b}, k={num_segments}, d={distance})"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _segments(self, word: int) -> Tuple[int, ...]:
        mask = (1 << self.segment_length) - 1
        pieces = []
        for index in range(self.num_segments):
            shift = (self.num_segments - 1 - index) * self.segment_length
            pieces.append((word >> shift) & mask)
        return tuple(pieces)

    def reducers_for(self, word: int) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Yield the ``C(k, d)`` reducer ids for an input string.

        A reducer id is ``(deleted segment indices, remaining segment values)``.
        """
        segments = self._segments(word)
        for deleted in itertools.combinations(range(self.num_segments), self.distance):
            remaining = tuple(
                segments[index]
                for index in range(self.num_segments)
                if index not in deleted
            )
            yield (deleted, remaining)

    def emitting_reducer(
        self, u: int, v: int
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """A canonical reducer covering the pair {u, v} (for deduplication).

        The pair differs in at most ``d`` segments; take the lexicographically
        first choice of ``d`` segments that includes every differing one.
        """
        segments_u = self._segments(u)
        segments_v = self._segments(v)
        differing = [
            index
            for index in range(self.num_segments)
            if segments_u[index] != segments_v[index]
        ]
        if len(differing) > self.distance:
            raise ConfigurationError(
                f"strings differ in {len(differing)} segments, more than d={self.distance}"
            )
        padding = [
            index for index in range(self.num_segments) if index not in differing
        ]
        deleted = tuple(sorted(differing + padding[: self.distance - len(differing)]))
        remaining = tuple(
            segments_u[index]
            for index in range(self.num_segments)
            if index not in deleted
        )
        return (deleted, remaining)

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, HammingDistanceProblem):
            raise ConfigurationError(
                "segment-deletion schemas serve Hamming-distance problems"
            )
        if problem.b != self.b or problem.distance > self.distance:
            raise ConfigurationError(
                f"schema (b={self.b}, d={self.distance}) cannot serve problem "
                f"(b={problem.b}, d={problem.distance})"
            )
        schema = MappingSchema(
            problem, q=int(self.max_reducer_size_formula()), name=self.name
        )
        for word in problem.inputs():
            for reducer_id in self.reducers_for(word):
                schema.assign_one(reducer_id, word)
        return schema

    def replication_rate_formula(self) -> float:
        """Each input reaches exactly ``C(k, d)`` reducers."""
        return float(math.comb(self.num_segments, self.distance))

    def approximate_replication_rate(self) -> float:
        """The paper's Stirling form ``(e·k/d)^d`` (valid for k >> d)."""
        return (math.e * self.num_segments / self.distance) ** self.distance

    def max_reducer_size_formula(self) -> float:
        """Strings agreeing on the kept ``k - d`` segments: ``2^{b·d/k}``."""
        return float(2 ** (self.segment_length * self.distance))

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self, emit_distance: int | None = None) -> MapReduceJob:
        """Job emitting all pairs at Hamming distance <= d (or == emit_distance)."""
        schema = self
        target = emit_distance

        def mapper(word: int):
            for reducer_id in schema.reducers_for(word):
                yield (reducer_id, word)

        def reducer(reducer_id, words: List[int]):
            ordered = sorted(set(words))
            for index, first in enumerate(ordered):
                for second in ordered[index + 1 :]:
                    distance = (first ^ second).bit_count()
                    if distance > schema.distance or distance == 0:
                        continue
                    if target is not None and distance != target:
                        continue
                    if schema.emitting_reducer(first, second) == reducer_id:
                        yield (first, second)

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name)


class BallTwoSchema(SchemaFamily):
    """The "Ball-2" construction from [3] discussed in Section 3.6.

    One reducer per anchor string ``s``; the reducer receives every string at
    Hamming distance at most 1 from ``s`` (that is, ``s`` itself and its
    ``b`` neighbours).  Any two strings at distance ≤ 2 have a common anchor,
    so the schema covers all distance-2 (and distance-1) pairs with
    ``q = b + 1`` and replication rate ``b + 1``.
    """

    def __init__(self, b: int) -> None:
        if b <= 0:
            raise ConfigurationError(f"b must be positive, got {b}")
        self.b = b
        self.name = f"ball-2(b={b})"

    def reducers_for(self, word: int) -> Iterator[int]:
        """A string is sent to its own anchor and each neighbour's anchor."""
        yield word
        for position in range(self.b):
            yield word ^ (1 << position)

    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, HammingDistanceProblem):
            raise ConfigurationError("Ball-2 serves Hamming-distance problems")
        if problem.b != self.b or problem.distance > 2:
            raise ConfigurationError(
                f"Ball-2(b={self.b}) covers distances up to 2; got problem "
                f"(b={problem.b}, d={problem.distance})"
            )
        schema = MappingSchema(problem, q=self.b + 1, name=self.name)
        for word in problem.inputs():
            for anchor in self.reducers_for(word):
                schema.assign_one(anchor, word)
        return schema

    def replication_rate_formula(self) -> float:
        return float(self.b + 1)

    def max_reducer_size_formula(self) -> float:
        return float(self.b + 1)

    def outputs_covered_per_reducer(self) -> int:
        """Each anchor's ``b`` neighbours are pairwise at distance 2: C(b, 2).

        This is the ``Ω(q²)`` coverage that prevents an O(q log q)-style
        lower-bound argument for distance 2.
        """
        return math.comb(self.b, 2)

    def job(self, emit_distance: int | None = None) -> MapReduceJob:
        """Job emitting distance ≤ 2 pairs; deduplicated by the anchor rule.

        A pair {u, v} at distance 2 has exactly two common anchors (flip one
        of the two differing bits of u); we emit at the smaller anchor.  A
        pair at distance 1 is emitted at the smaller of the two strings
        (which is an anchor of the pair).  Pass ``emit_distance`` (1 or 2)
        to restrict the output to pairs at exactly that distance.
        """
        schema = self
        target = emit_distance

        def mapper(word: int):
            for anchor in schema.reducers_for(word):
                yield (anchor, word)

        def reducer(anchor: int, words: List[int]):
            ordered = sorted(set(words))
            for index, first in enumerate(ordered):
                for second in ordered[index + 1 :]:
                    distance = (first ^ second).bit_count()
                    if distance not in (1, 2):
                        continue
                    if target is not None and distance != target:
                        continue
                    difference = first ^ second
                    if distance == 1:
                        canonical_anchor = min(first, second)
                    else:
                        low_bit = difference & -difference
                        candidate_a = first ^ low_bit
                        candidate_b = second ^ low_bit
                        canonical_anchor = min(candidate_a, candidate_b)
                    if canonical_anchor == anchor:
                        yield (first, second)

        return MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            name=self.name,
            batch_kernel=BallTwoBatchKernel(self, emit_distance),
        )


class BallTwoBatchKernel(BatchKernel):
    """Vectorized twin of :meth:`BallTwoSchema.job`.

    The reducer key *is* the anchor string, so codes need no packing.  The
    reduce enumerates all nested-loop pairs of each group's deduplicated
    words in one pass over the run and applies the canonical-anchor rule
    (smaller string at distance 1, smaller low-bit-flipped common anchor
    at distance 2) with array arithmetic.
    """

    def __init__(self, schema: BallTwoSchema, emit_distance: Optional[int]) -> None:
        self.schema = schema
        self.emit_distance = emit_distance

    def encode(self, records) -> ColumnBatch:
        return _encode_words(records, self.schema.b)

    def decode_records(self, values: ColumnBatch) -> List[int]:
        return values.column("word").tolist()

    def map_batch(self, batch: ColumnBatch):
        import numpy as np

        words = batch.column("word")
        b = self.schema.b
        # The scalar mapper visits the word's own anchor first, then each
        # bit flip in ascending position order.
        codes = np.empty((len(words), b + 1), dtype=np.int64)
        codes[:, 0] = words
        for position in range(b):
            codes[:, position + 1] = words ^ (1 << position)
        row_indices = np.repeat(np.arange(len(words), dtype=np.int64), b + 1)
        return codes.ravel(), row_indices, batch

    def key_of_code(self, code: int) -> int:
        return int(code)

    def reduce_groups(self, run: EncodedRun) -> List[Tuple[int, int]]:
        import numpy as np

        group_of_pair, left, right = _group_pairs(run)
        if len(left) == 0:
            return []
        difference = left ^ right
        distance = np.bitwise_count(difference)
        keep = (distance == 1) | (distance == 2)
        if self.emit_distance is not None:
            keep &= distance == self.emit_distance
        low_bit = difference & -difference
        # distance 1: the smaller word (always ``left``, pairs are ordered)
        # is itself a common anchor; distance 2: flip the lower differing
        # bit in either word and take the smaller result.
        canonical = np.where(
            distance == 1,
            left,
            np.minimum(left ^ low_bit, right ^ low_bit),
        )
        keep &= canonical == run.codes[group_of_pair]
        return list(zip(left[keep].tolist(), right[keep].tolist()))
