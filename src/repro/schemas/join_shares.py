"""The Shares algorithm for multiway joins (Section 5.5 upper bounds).

The Shares algorithm [Afrati–Ullman, ref. 1 in the paper] assigns each
attribute ``A`` of the join a *share* ``s_A``; the reducers form a grid with
one coordinate per attribute, the coordinate for ``A`` ranging over
``s_A`` hash buckets.  A tuple of relation ``R_e`` (with attribute set
``A_e``) knows the coordinates of the attributes it contains and must be
replicated to every combination of the remaining coordinates, i.e. to
``Π_{A ∉ A_e} s_A`` reducers.

The module provides:

* a generic :class:`SharesSchema` that works for any join query and share
  vector, can build an explicit mapping schema over the model's full input
  domain, and produces an executable job joining real relation instances;
* share-vector constructors for the two query shapes the paper analyses
  (chain joins and star joins) plus the closed-form replication rates used
  in Table 2.
"""

from __future__ import annotations

import itertools
import math
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.datagen.relations import RelationInstance, multiway_join_oracle
from repro.exceptions import ConfigurationError
from repro.mapreduce.columnar import (
    BatchEncodingError,
    BatchKernel,
    ColumnBatch,
    require_numpy,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import stable_hash
from repro.problems.joins import JoinQuery, MultiwayJoinProblem

GridPoint = Tuple[int, ...]

#: Above this many reducers, certification falls back to one coarse bound
#: (valid for every grid point) instead of enumerating the full grid.
_CERTIFICATION_GRID_LIMIT = 4096


class SharesSchema(SchemaFamily):
    """Grid-of-reducers schema defined by a share per join attribute.

    Parameters
    ----------
    query:
        The join query (hypergraph).
    shares:
        Mapping from attribute name to its integer share (>= 1).  Attributes
        omitted from the mapping get share 1 (no partitioning on them).
    domain_size:
        Domain size ``n`` used for the closed-form replication-rate and
        reducer-size formulas over the model's full input domain.
    """

    def __init__(
        self,
        query: JoinQuery,
        shares: Mapping[str, int],
        domain_size: int,
    ) -> None:
        if domain_size <= 0:
            raise ConfigurationError("domain_size must be positive")
        unknown = set(shares) - set(query.attributes)
        if unknown:
            raise ConfigurationError(
                f"shares given for attributes not in the query: {sorted(unknown)}"
            )
        self.query = query
        self.domain_size = domain_size
        self.shares: Dict[str, int] = {}
        for attribute in query.attributes:
            share = int(shares.get(attribute, 1))
            if share < 1:
                raise ConfigurationError(
                    f"share for attribute {attribute!r} must be >= 1, got {share}"
                )
            self.shares[attribute] = share
        share_text = ",".join(f"{a}={s}" for a, s in self.shares.items())
        self.name = f"shares[{query.name}]({share_text})"

    # ------------------------------------------------------------------
    # Grid geometry
    # ------------------------------------------------------------------
    @property
    def num_reducers(self) -> int:
        """Total number of grid points ``Π_A s_A`` (the paper's ``p``)."""
        product = 1
        for share in self.shares.values():
            product *= share
        return product

    def bucket_of(self, attribute: str, value: int) -> int:
        """Hash bucket of an attribute value within that attribute's share."""
        share = self.shares[attribute]
        if share == 1:
            return 0
        return stable_hash((attribute, value)) % share

    def reducers_for(
        self, relation_name: str, values: Sequence[int]
    ) -> Iterator[GridPoint]:
        """Grid points a tuple of the named relation is replicated to."""
        relation = self._relation(relation_name)
        if len(values) != relation.arity:
            raise ConfigurationError(
                f"tuple {values!r} does not match the arity of {relation_name!r}"
            )
        assignment = dict(zip(relation.attributes, values))
        coordinate_choices: List[range | List[int]] = []
        for attribute in self.query.attributes:
            if attribute in assignment:
                coordinate_choices.append([self.bucket_of(attribute, assignment[attribute])])
            else:
                coordinate_choices.append(range(self.shares[attribute]))
        for point in itertools.product(*coordinate_choices):
            yield tuple(point)

    def reducer_of_output(self, assignment: Mapping[str, int]) -> GridPoint:
        """The unique grid point responsible for a full attribute assignment."""
        return tuple(
            self.bucket_of(attribute, assignment[attribute])
            for attribute in self.query.attributes
        )

    def _relation(self, relation_name: str):
        for relation in self.query.relations:
            if relation.name == relation_name:
                return relation
        raise ConfigurationError(
            f"relation {relation_name!r} is not part of query {self.query.name!r}"
        )

    def replication_of(self, relation_name: str) -> int:
        """Number of reducers one tuple of the named relation reaches."""
        relation = self._relation(relation_name)
        product = 1
        for attribute in self.query.attributes:
            if attribute not in relation.attributes:
                product *= self.shares[attribute]
        return product

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, MultiwayJoinProblem):
            raise ConfigurationError("SharesSchema serves MultiwayJoinProblem instances")
        if problem.query is not self.query and problem.query.name != self.query.name:
            raise ConfigurationError(
                "schema and problem were built for different join queries"
            )
        if problem.domain_size != self.domain_size:
            raise ConfigurationError(
                "schema and problem were built for different domain sizes"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for input_id in problem.inputs():
            relation_name, values = input_id
            for point in self.reducers_for(relation_name, values):
                schema.assign_one(point, input_id)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """Average replication over the model's full input domain.

        Each relation contributes ``n^arity`` inputs each replicated to
        ``Π_{A ∉ relation} s_A`` reducers.
        """
        n = self.domain_size
        total_inputs = 0
        total_pairs = 0
        for relation in self.query.relations:
            relation_inputs = n ** relation.arity
            total_inputs += relation_inputs
            total_pairs += relation_inputs * self.replication_of(relation.name)
        return total_pairs / total_inputs

    def max_reducer_size_formula(self) -> float:
        """Expected inputs per reducer over the full domain.

        Relation ``R_e`` spreads its ``n^arity`` tuples over
        ``Π_{A ∈ A_e} s_A`` distinct coordinate combinations, so each grid
        point receives about ``n^arity / Π_{A ∈ A_e} s_A`` of them.
        """
        n = self.domain_size
        expected = 0.0
        for relation in self.query.relations:
            covered_shares = 1
            for attribute in relation.attributes:
                covered_shares *= self.shares[attribute]
            expected += n ** relation.arity / covered_shares
        return expected

    def expected_communication(self, row_counts: Mapping[str, int]) -> float:
        """Shuffled pairs on an actual instance: ``Σ_e |R_e| · Π_{A∉A_e} s_A``.

        Delegates to :func:`shares_communication`, the module-level form
        the profile-driven share optimizer evaluates on raw share vectors
        (the model's closed form uses ``n^arity`` row counts instead).
        """
        return shares_communication(self.query, self.shares, row_counts)

    def expected_reducer_load(self, row_counts: Mapping[str, int]) -> float:
        """Hash-balanced expected load per reducer on an *actual* instance.

        The Section 5.5 expectation of :meth:`max_reducer_size_formula`
        evaluated with real relation sizes instead of the model's full
        ``n^arity`` domains: relation ``R_e`` spreads its ``|R_e|`` tuples
        over ``Π_{A ∈ A_e} s_A`` coordinate combinations.  On skewed inputs
        the observed maximum can exceed this freely — that gap is exactly
        what the profile-based tail certificates close.
        """
        expected = 0.0
        for relation in self.query.relations:
            covered_shares = 1
            for attribute in relation.attributes:
                covered_shares *= self.shares[attribute]
            expected += row_counts[relation.name] / covered_shares
        return expected

    # ------------------------------------------------------------------
    # Profile-based certification hook
    # ------------------------------------------------------------------
    def reducer_load_bounds(self, oracle) -> Iterator[float]:
        """Upper bound on the input load of every reducer of this schema.

        ``oracle`` answers bucket-weight queries from a dataset profile (see
        :class:`repro.planner.certify.ProfileWeightOracle`); it must hash
        values to buckets exactly as :meth:`bucket_of` does.  A relation's
        tuples at a grid point all agree with the point's coordinate on each
        of the relation's own attributes, so the *minimum* over those
        attributes of the bucket weights bounds the relation's contribution;
        summing over relations bounds the reducer.  Grids larger than
        ``_CERTIFICATION_GRID_LIMIT`` yield a single coarse bound (max
        bucket weight per attribute) valid for every point.
        """
        if self.num_reducers > _CERTIFICATION_GRID_LIMIT:
            load = 0.0
            for relation in self.query.relations:
                load += min(
                    oracle.max_bucket_weight(
                        relation.name, attribute, self.shares[attribute]
                    )
                    for attribute in relation.attributes
                )
            yield load
            return
        attributes = self.query.attributes
        for point in itertools.product(
            *(range(self.shares[attribute]) for attribute in attributes)
        ):
            coordinates = dict(zip(attributes, point))
            load = 0.0
            for relation in self.query.relations:
                load += min(
                    oracle.bucket_weight(
                        relation.name,
                        attribute,
                        self.shares[attribute],
                        coordinates[attribute],
                    )
                    for attribute in relation.attributes
                )
            yield load

    # ------------------------------------------------------------------
    # Executable job over real relation instances
    # ------------------------------------------------------------------
    def job(self, relations: Sequence[RelationInstance]) -> MapReduceJob:
        """Join the given relation instances with one round of map-reduce.

        Input records are ``(relation name, tuple)``.  Each reducer joins its
        local fragments with the serial oracle and emits only the result
        tuples whose full attribute assignment hashes to that reducer,
        guaranteeing each join result is emitted exactly once.
        """
        by_name = {relation.name: relation for relation in relations}
        for relation in self.query.relations:
            if relation.name not in by_name:
                raise ConfigurationError(
                    f"no instance supplied for relation {relation.name!r}"
                )
        schema = self
        query = self.query

        def mapper(record: Tuple[str, Tuple[int, ...]]):
            relation_name, values = record
            for point in schema.reducers_for(relation_name, values):
                yield (point, record)

        def reducer(point: GridPoint, records: List[Tuple[str, Tuple[int, ...]]]):
            fragments: Dict[str, set] = {
                relation.name: set() for relation in query.relations
            }
            for relation_name, values in records:
                fragments[relation_name].add(tuple(values))
            local_instances = []
            for relation in query.relations:
                local_instances.append(
                    RelationInstance(
                        name=relation.name,
                        attributes=relation.attributes,
                        tuples=tuple(sorted(fragments[relation.name])),
                    )
                )
            attributes, rows = multiway_join_oracle(local_instances)
            for row in rows:
                assignment = dict(zip(attributes, row))
                if schema.reducer_of_output(assignment) == point:
                    yield tuple(assignment[attribute] for attribute in query.attributes)

        return MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            name=self.name,
            batch_kernel=self._batch_kernel(),
        )

    def _batch_kernel(self) -> "SharesBatchKernel":
        """The vectorized kernel matching this schema's mapper/reducer."""
        return SharesBatchKernel(self)

    @staticmethod
    def input_records(relations: Sequence[RelationInstance]) -> List[Tuple[str, Tuple[int, ...]]]:
        """Flatten relation instances into the job's input records."""
        records: List[Tuple[str, Tuple[int, ...]]] = []
        for relation in relations:
            for row in relation.tuples:
                records.append((relation.name, tuple(row)))
        return records


class SkewAwareSharesSchema(SharesSchema):
    """Shares with profiled heavy-hitter values isolated onto sub-grids.

    Vanilla Shares hashes every value of an attribute across that
    attribute's share, so all tuples carrying one heavy join value collide
    on a single coordinate — the grid cannot split them no matter how many
    reducers it spends on that attribute.  Following the SkewJoin idea,
    this variant diverts each profiled heavy value ``v`` of one
    ``skew_attribute`` to its own dedicated reducer sub-grid partitioned on
    the *remaining* attributes (``heavy_shares``), so the heavy value's
    tuples are spread instead of stacked:

    * a tuple whose ``skew_attribute`` value is heavy goes **only** to the
      matching sub-grid (replicated over the sub-shares of attributes it
      lacks);
    * a tuple of a relation without the ``skew_attribute`` goes to the main
      grid as usual **and** to every heavy sub-grid (the broadcast cost of
      skew handling);
    * every other tuple uses the vanilla main grid, whose geometry is
      unchanged (heavy tuples simply never arrive there).

    Reducer ids are tagged — ``("main", *point)`` or
    ``("heavy", v, *subpoint)`` — and each join result is emitted exactly
    once: an output assignment belongs to the sub-grid of its heavy
    ``skew_attribute`` value, or to the main grid when that value is not
    heavy.  All relations sharing the attribute agree on its value in any
    join result, so the contributing tuples always meet at the owner.
    """

    def __init__(
        self,
        query: JoinQuery,
        shares: Mapping[str, int],
        domain_size: int,
        skew_attribute: str,
        heavy_values: Iterable[int],
        heavy_shares: Optional[Mapping[str, int]] = None,
    ) -> None:
        super().__init__(query, shares, domain_size)
        if skew_attribute not in query.attributes:
            raise ConfigurationError(
                f"skew attribute {skew_attribute!r} is not part of query "
                f"{query.name!r}"
            )
        self.skew_attribute = skew_attribute
        self.heavy_values = frozenset(heavy_values)
        if not self.heavy_values:
            raise ConfigurationError(
                "SkewAwareSharesSchema needs at least one heavy value; use "
                "SharesSchema when the profile shows no skew"
            )
        self.sub_attributes: Tuple[str, ...] = tuple(
            attribute for attribute in query.attributes if attribute != skew_attribute
        )
        heavy_shares = heavy_shares or {}
        unknown = set(heavy_shares) - set(self.sub_attributes)
        if unknown:
            raise ConfigurationError(
                f"heavy shares given for attributes that are not sub-grid "
                f"coordinates: {sorted(unknown)}"
            )
        self.heavy_shares: Dict[str, int] = {}
        for attribute in self.sub_attributes:
            share = int(heavy_shares.get(attribute, 1))
            if share < 1:
                raise ConfigurationError(
                    f"heavy share for attribute {attribute!r} must be >= 1, "
                    f"got {share}"
                )
            self.heavy_shares[attribute] = share
        share_text = ",".join(f"{a}={s}" for a, s in self.shares.items())
        sub_text = ",".join(
            f"{a}={s}" for a, s in self.heavy_shares.items() if s > 1
        ) or "-"
        self.name = (
            f"skew-shares[{query.name}]({share_text};"
            f"{skew_attribute}:{len(self.heavy_values)}hh;sub:{sub_text})"
        )

    # ------------------------------------------------------------------
    # Grid geometry
    # ------------------------------------------------------------------
    @property
    def sub_grid_size(self) -> int:
        product = 1
        for share in self.heavy_shares.values():
            product *= share
        return product

    @property
    def num_reducers(self) -> int:
        return super().num_reducers + len(self.heavy_values) * self.sub_grid_size

    def sub_bucket_of(self, attribute: str, value: int) -> int:
        """Sub-grid hash bucket; same hashing rule as :meth:`bucket_of`."""
        share = self.heavy_shares[attribute]
        if share == 1:
            return 0
        return stable_hash((attribute, value)) % share

    def _ordered_heavy_values(self) -> List[int]:
        return sorted(self.heavy_values, key=repr)

    def _sub_points(
        self, value: int, assignment: Mapping[str, int]
    ) -> Iterator[GridPoint]:
        choices: List[Any] = []
        for attribute in self.sub_attributes:
            if attribute in assignment:
                choices.append([self.sub_bucket_of(attribute, assignment[attribute])])
            else:
                choices.append(range(self.heavy_shares[attribute]))
        for point in itertools.product(*choices):
            yield ("heavy", value) + tuple(point)

    def reducers_for(
        self, relation_name: str, values: Sequence[int]
    ) -> Iterator[GridPoint]:
        relation = self._relation(relation_name)
        if len(values) != relation.arity:
            raise ConfigurationError(
                f"tuple {values!r} does not match the arity of {relation_name!r}"
            )
        assignment = dict(zip(relation.attributes, values))
        skew_value = assignment.get(self.skew_attribute)
        if skew_value is not None and skew_value in self.heavy_values:
            yield from self._sub_points(skew_value, assignment)
            return
        for point in super().reducers_for(relation_name, values):
            yield ("main",) + point
        if self.skew_attribute not in assignment:
            for value in self._ordered_heavy_values():
                yield from self._sub_points(value, assignment)

    def reducer_of_output(self, assignment: Mapping[str, int]) -> GridPoint:
        skew_value = assignment[self.skew_attribute]
        if skew_value in self.heavy_values:
            return ("heavy", skew_value) + tuple(
                self.sub_bucket_of(attribute, assignment[attribute])
                for attribute in self.sub_attributes
            )
        return ("main",) + super().reducer_of_output(assignment)

    def _batch_kernel(self) -> "SharesBatchKernel":
        return SkewAwareSharesBatchKernel(self)

    # ------------------------------------------------------------------
    # Closed forms over the model's full input domain
    # ------------------------------------------------------------------
    def replication_rate_formula(self) -> float:
        n = self.domain_size
        num_heavy = len(self.heavy_values)
        total_inputs = 0
        total_pairs = 0.0
        for relation in self.query.relations:
            relation_inputs = n ** relation.arity
            total_inputs += relation_inputs
            main_replication = self.replication_of(relation.name)
            sub_replication = 1
            for attribute in self.sub_attributes:
                if attribute not in relation.attributes:
                    sub_replication *= self.heavy_shares[attribute]
            if self.skew_attribute in relation.attributes:
                heavy_fraction = min(num_heavy, n) / n
                total_pairs += relation_inputs * (
                    (1.0 - heavy_fraction) * main_replication
                    + heavy_fraction * sub_replication
                )
            else:
                total_pairs += relation_inputs * (
                    main_replication + num_heavy * sub_replication
                )
        return total_pairs / total_inputs

    def max_reducer_size_formula(self) -> float:
        """Expected load of the fuller of a main grid point / sub-grid point."""
        n = self.domain_size
        num_heavy = min(len(self.heavy_values), n)
        main_expected = 0.0
        sub_expected = 0.0
        for relation in self.query.relations:
            covered = 1
            for attribute in relation.attributes:
                covered *= self.shares[attribute]
            relation_inputs = n ** relation.arity
            if self.skew_attribute in relation.attributes:
                main_expected += (
                    relation_inputs * (1.0 - num_heavy / n) / covered
                )
                sub_covered = 1
                for attribute in relation.attributes:
                    if attribute != self.skew_attribute:
                        sub_covered *= self.heavy_shares[attribute]
                sub_expected += n ** (relation.arity - 1) / sub_covered
            else:
                main_expected += relation_inputs / covered
                sub_covered = 1
                for attribute in relation.attributes:
                    sub_covered *= self.heavy_shares[attribute]
                sub_expected += relation_inputs / sub_covered
        return max(main_expected, sub_expected)

    # ------------------------------------------------------------------
    # Profile-based certification hook
    # ------------------------------------------------------------------
    def reducer_load_bounds(self, oracle) -> Iterator[float]:
        heavy = self.heavy_values
        attributes = self.query.attributes
        # Main grid: relations containing the skew attribute only send their
        # non-heavy tuples there, so heavy values are excluded from that
        # attribute's bucket weights.
        def main_terms(relation, weight):
            terms = []
            for attribute in relation.attributes:
                exclude = heavy if attribute == self.skew_attribute else frozenset()
                terms.append(weight(relation.name, attribute, self.shares[attribute], exclude))
            return terms

        if super().num_reducers > _CERTIFICATION_GRID_LIMIT:
            load = 0.0
            for relation in self.query.relations:
                load += min(
                    main_terms(
                        relation,
                        lambda name, a, share, exclude: oracle.max_bucket_weight(
                            name, a, share, exclude=exclude
                        ),
                    )
                )
            yield load
        else:
            for point in itertools.product(
                *(range(self.shares[attribute]) for attribute in attributes)
            ):
                coordinates = dict(zip(attributes, point))
                load = 0.0
                for relation in self.query.relations:
                    load += min(
                        main_terms(
                            relation,
                            lambda name, a, share, exclude: oracle.bucket_weight(
                                name, a, share, coordinates[a], exclude=exclude
                            ),
                        )
                    )
                yield load
        # Heavy sub-grids: one grid over the remaining attributes per heavy
        # value.  A relation with the skew attribute contributes at most its
        # count of tuples carrying that exact value.
        coarse_sub = self.sub_grid_size > _CERTIFICATION_GRID_LIMIT
        for value in self._ordered_heavy_values():
            sub_points: Iterable[Tuple[int, ...]]
            if coarse_sub:
                sub_points = [()]
            else:
                sub_points = itertools.product(
                    *(range(self.heavy_shares[a]) for a in self.sub_attributes)
                )
            for point in sub_points:
                coordinates = dict(zip(self.sub_attributes, point))
                load = 0.0
                for relation in self.query.relations:
                    terms = []
                    if self.skew_attribute in relation.attributes:
                        terms.append(
                            oracle.value_weight(
                                relation.name, self.skew_attribute, value
                            )
                        )
                    for attribute in relation.attributes:
                        if attribute == self.skew_attribute:
                            continue
                        share = self.heavy_shares[attribute]
                        if coarse_sub:
                            terms.append(
                                oracle.max_bucket_weight(
                                    relation.name, attribute, share
                                )
                            )
                        else:
                            terms.append(
                                oracle.bucket_weight(
                                    relation.name,
                                    attribute,
                                    share,
                                    coordinates[attribute],
                                )
                            )
                    load += min(terms)
                yield load


# ----------------------------------------------------------------------
# Vectorized kernels for the Shares jobs
# ----------------------------------------------------------------------
#: Sentinel column name for the reducer-group index when the whole run is
#: joined in one pass (it behaves as an attribute shared by every relation,
#: which restricts every join step to within-group matches).
_GROUP_COLUMN = "\x00group"


def _lexicographic_order(table):
    """Row order sorting a 2-D array lexicographically (column 0 primary).

    ``np.lexsort`` runs one radix-friendly stable pass per int64 column —
    far faster than ``np.unique(axis=0)``'s void-dtype comparison sort.
    """
    np = require_numpy()
    return np.lexsort(tuple(table[:, i] for i in range(table.shape[1] - 1, -1, -1)))


def _pack_rows(table):
    """Pack rows into single int64 codes preserving lexicographic order.

    Columns are offset by their minimum and strided by the product of the
    later columns' spans, so numeric code order equals row lexicographic
    order.  Returns ``(codes, mins, spans)``, or ``None`` when the spans
    overflow exact int64 arithmetic (the caller then takes a lexsort path).
    """
    np = require_numpy()
    mins = table.min(axis=0)
    spans = [int(v) for v in (table.max(axis=0) - mins + 1).tolist()]
    capacity = 1
    for span in spans:
        capacity *= span
        if capacity >= 2**62:
            return None
    codes = np.zeros(len(table), dtype=np.int64)
    for index in range(table.shape[1]):
        codes *= spans[index]
        codes += table[:, index] - mins[index]
    return codes, mins, spans


def _unpack_codes(codes, mins, spans):
    """Inverse of :func:`_pack_rows` for an array of packed codes."""
    np = require_numpy()
    columns = [None] * len(spans)
    for index in range(len(spans) - 1, -1, -1):
        columns[index] = codes % spans[index] + mins[index]
        codes = codes // spans[index]
    return np.stack(columns, axis=1)


def _sorted_unique_rows(table):
    """Lexicographically sorted, deduplicated rows (``sorted(set(...))``)."""
    np = require_numpy()
    if len(table) == 0 or table.shape[1] == 0:
        return table[:1]
    packed = _pack_rows(table)
    if packed is not None:
        codes, mins, spans = packed
        # np.sort + consecutive-difference mask beats np.unique's hash-based
        # path by an order of magnitude on mostly-distinct code arrays.
        ordered_codes = np.sort(codes)
        keep = np.empty(len(ordered_codes), dtype=bool)
        keep[0] = True
        np.not_equal(ordered_codes[1:], ordered_codes[:-1], out=keep[1:])
        return _unpack_codes(ordered_codes[keep], mins, spans)
    ordered = table[_lexicographic_order(table)]
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.any(ordered[1:] != ordered[:-1], axis=1, out=keep[1:])
    return ordered[keep]


def _row_group_codes(table):
    """Dense group ids per row (equal rows share an id), plus the id count.

    Ids are assigned in lexicographic row order, matching what
    ``np.unique(..., axis=0, return_inverse=True)`` would produce, without
    its void-dtype sort.
    """
    np = require_numpy()
    packed = _pack_rows(table)
    if packed is not None:
        distinct, inverse = np.unique(packed[0], return_inverse=True)
        return inverse.astype(np.int64, copy=False), len(distinct)
    order = _lexicographic_order(table)
    ordered = table[order]
    new_group = np.empty(len(ordered), dtype=bool)
    new_group[0] = False
    np.any(ordered[1:] != ordered[:-1], axis=1, out=new_group[1:])
    ranks = np.cumsum(new_group)
    codes = np.empty(len(table), dtype=np.int64)
    codes[order] = ranks
    return codes, int(ranks[-1]) + 1


def _vectorized_oracle_join(attribute_lists, fragments):
    """Vectorized twin of :func:`multiway_join_oracle` over 2-D int arrays.

    ``fragments`` holds one lexicographically sorted, deduplicated table per
    relation (matching the scalar reducer's ``tuple(sorted(set(...)))``
    fragments), with ``attribute_lists`` naming each table's columns.  Row
    order is the oracle's exactly: the accumulator is extended left to
    right, each accumulator row followed by its matches in the joining
    fragment's sorted order — the oracle's per-key lists are built by
    inserting sorted tuples, and the stable argsort below keeps that same
    within-key order.
    """
    np = require_numpy()
    attributes = list(attribute_lists[0])
    rows = fragments[0]
    for rel_attrs, table in zip(attribute_lists[1:], fragments[1:]):
        rel_attrs = list(rel_attrs)
        shared = [a for a in attributes if a in rel_attrs]
        new_attrs = [a for a in rel_attrs if a not in attributes]
        width = len(attributes) + len(new_attrs)
        if len(rows) == 0 or len(table) == 0:
            rows = np.zeros((0, width), dtype=np.int64)
            attributes.extend(new_attrs)
            continue
        rel_new = [rel_attrs.index(a) for a in new_attrs]
        if shared:
            rel_shared = [rel_attrs.index(a) for a in shared]
            acc_shared = [attributes.index(a) for a in shared]
            combined = np.concatenate(
                (table[:, rel_shared], rows[:, acc_shared]), axis=0
            )
            inverse, num_keys = _row_group_codes(combined)
            rel_keys = inverse[: len(table)]
            acc_keys = inverse[len(table) :]
        else:
            rel_keys = np.zeros(len(table), dtype=np.int64)
            acc_keys = np.zeros(len(rows), dtype=np.int64)
            num_keys = 1
        order = np.argsort(rel_keys, kind="stable")
        counts = np.bincount(rel_keys, minlength=num_keys)
        starts = np.cumsum(counts) - counts
        match_counts = counts[acc_keys]
        total = int(match_counts.sum())
        acc_index = np.repeat(np.arange(len(rows), dtype=np.int64), match_counts)
        # Ragged per-accumulator-row arange over each key's match block.
        block_ends = np.cumsum(match_counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            block_ends - match_counts, match_counts
        )
        matched = table[order[np.repeat(starts[acc_keys], match_counts) + within]]
        if rel_new:
            rows = np.concatenate((rows[acc_index], matched[:, rel_new]), axis=1)
        else:
            rows = rows[acc_index]
        attributes.extend(new_attrs)
    return attributes, rows


class SharesBatchKernel(BatchKernel):
    """Vectorized twin of :meth:`SharesSchema.job`.

    Records ``(relation name, tuple)`` are encoded as a relation-id column
    plus ``max_arity`` padded int64 value columns.  Grid points are encoded
    as mixed-radix integers over ``query.attributes`` (last attribute least
    significant, matching ``itertools.product`` emission order); each
    relation's replication pattern collapses to one precomputed array of
    free-coordinate code offsets added to a per-tuple base code.  The
    per-group reduce rebuilds the sorted fragments with ``np.unique`` and
    runs :func:`_vectorized_oracle_join`, then keeps the rows this grid
    point owns.  ``stable_hash`` is not vectorizable, so bucket lookups are
    memoized per distinct ``(attribute, value)``.
    """

    #: Reduce-key codes must stay well inside exact int64 arithmetic.
    _CODE_LIMIT = 2**62

    def __init__(self, schema: SharesSchema) -> None:
        self.schema = schema
        query = schema.query
        self._bucket_cache: Dict[Tuple[str, int], int] = {}
        self._max_arity = max(relation.arity for relation in query.relations)
        self._value_columns = tuple(f"v{index}" for index in range(self._max_arity))
        #: relation name -> (relation id, arity, padding tuple)
        self._specs: Dict[str, Tuple[int, int, Tuple[int, ...]]] = {}
        self._by_id: List[Tuple[str, int]] = []
        for relation_id, relation in enumerate(query.relations):
            self._specs[relation.name] = (
                relation_id,
                relation.arity,
                (0,) * (self._max_arity - relation.arity),
            )
            self._by_id.append((relation.name, relation.arity))
        # Mixed radix over query.attributes; the last attribute gets radix 1
        # so ascending codes enumerate grid points in itertools.product order.
        self._radix: Dict[str, int] = {}
        size = 1
        for attribute in reversed(query.attributes):
            self._radix[attribute] = size
            size *= schema.shares[attribute]
        self._grid_size = size
        self._tables_cache: Optional[Tuple[List[Any], Any]] = None

    def _code_space(self) -> int:
        return self._grid_size

    # -- encode / decode -------------------------------------------------
    def encode(self, records: Sequence[Any]) -> ColumnBatch:
        np = require_numpy()
        if self._max_arity == 0 or self._code_space() >= self._CODE_LIMIT:
            raise BatchEncodingError(
                "query shape outside the columnar layout (zero-arity "
                "relations or a reducer grid overflowing int64 codes)"
            )
        relation_ids: List[int] = []
        padded: List[Tuple[int, ...]] = []
        for record in records:
            try:
                name, values = record
                relation_id, arity, padding = self._specs[name]
                if len(values) != arity:
                    raise BatchEncodingError(
                        f"tuple {values!r} does not match the arity of {name!r}"
                    )
                padded.append(tuple(values) + padding)
            except (KeyError, TypeError, ValueError) as error:
                raise BatchEncodingError(
                    f"record {record!r} is not a (relation, tuple) pair of "
                    f"query {self.schema.query.name!r}: {error}"
                )
            relation_ids.append(relation_id)
        if not padded:
            columns = {"rel": np.zeros(0, dtype=np.int64)}
            for name in self._value_columns:
                columns[name] = np.zeros(0, dtype=np.int64)
            return ColumnBatch(columns)
        batch = ColumnBatch.from_int_tuples(padded, self._value_columns)
        columns = dict(batch.columns)
        columns["rel"] = np.asarray(relation_ids, dtype=np.int64)
        return ColumnBatch(columns)

    def decode_records(self, values: ColumnBatch) -> List[Any]:
        relation_ids = values.column("rel").tolist()
        columns = [values.column(name).tolist() for name in self._value_columns]
        records: List[Tuple[str, Tuple[int, ...]]] = []
        for row, relation_id in enumerate(relation_ids):
            name, arity = self._by_id[relation_id]
            records.append(
                (name, tuple(columns[index][row] for index in range(arity)))
            )
        return records

    # -- bucket lookups (memoized around stable_hash) --------------------
    def _buckets(self, attribute: str, column) -> Any:
        np = require_numpy()
        if self.schema.shares[attribute] == 1:
            return np.zeros(len(column), dtype=np.int64)
        cache = self._bucket_cache
        distinct, inverse = np.unique(column, return_inverse=True)
        values = distinct.tolist()
        for value in values:
            if (attribute, value) not in cache:
                cache[(attribute, value)] = self.schema.bucket_of(attribute, value)
        lookup = np.fromiter(
            (cache[(attribute, value)] for value in values),
            dtype=np.int64,
            count=len(values),
        )
        return lookup[inverse]

    def _main_base(self, batch: ColumnBatch, relation, rows) -> Any:
        """Code contribution of a tuple's own (fixed) grid coordinates."""
        np = require_numpy()
        base = np.zeros(len(rows), dtype=np.int64)
        for position, attribute in enumerate(relation.attributes):
            column = batch.column(f"v{position}")[rows]
            base += self._buckets(attribute, column) * self._radix[attribute]
        return base

    def _tables(self) -> Tuple[List[Any], Any]:
        """Per-relation free-coordinate code blocks, in product order."""
        if self._tables_cache is None:
            np = require_numpy()
            query = self.schema.query
            free_codes: List[Any] = []
            for relation in query.relations:
                covered = set(relation.attributes)
                block = np.zeros(1, dtype=np.int64)
                for attribute in query.attributes:
                    if attribute in covered:
                        continue
                    step = (
                        np.arange(self.schema.shares[attribute], dtype=np.int64)
                        * self._radix[attribute]
                    )
                    block = (block[:, None] + step[None, :]).ravel()
                free_codes.append(block)
            replication = np.asarray(
                [len(block) for block in free_codes], dtype=np.int64
            )
            self._tables_cache = (free_codes, replication)
        return self._tables_cache

    # -- map -------------------------------------------------------------
    def map_batch(self, batch: ColumnBatch):
        np = require_numpy()
        free_codes, replication = self._tables()
        relation_ids = batch.column("rel")
        emissions = replication[relation_ids]
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(emissions, dtype=np.int64))
        )
        total = int(offsets[-1])
        codes = np.empty(total, dtype=np.int64)
        row_indices = np.empty(total, dtype=np.int64)
        for relation_id, relation in enumerate(self.schema.query.relations):
            rows = np.nonzero(relation_ids == relation_id)[0]
            if len(rows) == 0:
                continue
            base = self._main_base(batch, relation, rows)
            free = free_codes[relation_id]
            positions = (
                offsets[rows][:, None]
                + np.arange(len(free), dtype=np.int64)[None, :]
            ).ravel()
            codes[positions] = (base[:, None] + free[None, :]).ravel()
            row_indices[positions] = np.repeat(rows, len(free))
        return codes, row_indices, batch

    def _decode_main(self, code: int) -> GridPoint:
        point: List[int] = []
        for attribute in reversed(self.schema.query.attributes):
            share = self.schema.shares[attribute]
            point.append(code % share)
            code //= share
        return tuple(reversed(point))

    def key_of_code(self, code: int):
        return self._decode_main(int(code))

    # -- reduce ----------------------------------------------------------
    def _owner_mask(self, key, attributes: List[str], rows) -> Any:
        np = require_numpy()
        keep = np.ones(len(rows), dtype=bool)
        for index, attribute in enumerate(self.schema.query.attributes):
            column = rows[:, attributes.index(attribute)]
            keep &= self._buckets(attribute, column) == key[index]
        return keep

    def reduce_group(self, key, code: int, values: ColumnBatch):
        np = require_numpy()
        query = self.schema.query
        relation_ids = values.column("rel")
        attribute_lists: List[List[str]] = []
        fragments: List[Any] = []
        for relation_id, relation in enumerate(query.relations):
            mask = relation_ids == relation_id
            columns = [
                values.column(f"v{position}")[mask]
                for position in range(relation.arity)
            ]
            table = _sorted_unique_rows(np.stack(columns, axis=1))
            attribute_lists.append(list(relation.attributes))
            fragments.append(table)
        attributes, rows = _vectorized_oracle_join(attribute_lists, fragments)
        if len(rows) == 0:
            return []
        rows = rows[self._owner_mask(key, attributes, rows)]
        if len(rows) == 0:
            return []
        permutation = [attributes.index(a) for a in query.attributes]
        return [tuple(row) for row in rows[:, permutation].tolist()]

    def reduce_groups(self, run):
        """One vectorized pass over every group of the run.

        The group index joins the fragments as an extra shared attribute,
        so a single dedupe + multiway join computes all per-group joins at
        once while keeping each group's rows separate.  The first fragment
        is sorted by (group, tuple), which makes the joined rows group-major
        in run order — exactly the order a per-group loop would emit.
        """
        np = require_numpy()
        query = self.schema.query
        group_of_pair = np.repeat(
            np.arange(run.num_groups, dtype=np.int64), run.sizes
        )
        relation_ids = run.values.column("rel")
        attribute_lists: List[List[Any]] = []
        fragments: List[Any] = []
        for relation_id, relation in enumerate(query.relations):
            mask = relation_ids == relation_id
            columns = [group_of_pair[mask]] + [
                run.values.column(f"v{position}")[mask]
                for position in range(relation.arity)
            ]
            table = _sorted_unique_rows(np.stack(columns, axis=1))
            attribute_lists.append([_GROUP_COLUMN] + list(relation.attributes))
            fragments.append(table)
        attributes, rows = _vectorized_oracle_join(attribute_lists, fragments)
        if len(rows) == 0:
            return []
        rows = rows[self._owner_mask_run(run, attributes, rows)]
        if len(rows) == 0:
            return []
        permutation = [attributes.index(a) for a in query.attributes]
        return [tuple(row) for row in rows[:, permutation].tolist()]

    def _owner_mask_run(self, run, attributes: List[Any], rows) -> Any:
        """Vectorized ``reducer_of_output(assignment) == key`` over all groups."""
        np = require_numpy()
        group_column = rows[:, attributes.index(_GROUP_COLUMN)]
        codes = run.codes
        keep = np.ones(len(rows), dtype=bool)
        for attribute in self.schema.query.attributes:
            coordinate = (codes // self._radix[attribute]) % self.schema.shares[
                attribute
            ]
            column = rows[:, attributes.index(attribute)]
            keep &= self._buckets(attribute, column) == coordinate[group_column]
        return keep


class SkewAwareSharesBatchKernel(SharesBatchKernel):
    """Vectorized twin of the :class:`SkewAwareSharesSchema` job.

    Codes below ``main grid size`` are main-grid points; code
    ``main + h · sub_size + s`` is sub-point ``s`` of the ``h``-th heavy
    value (in ``_ordered_heavy_values`` order), so every tagged reducer id
    still round-trips through one int64.
    """

    def __init__(self, schema: SkewAwareSharesSchema) -> None:
        super().__init__(schema)
        self._sub_bucket_cache: Dict[Tuple[str, int], int] = {}
        self._ordered_heavy = schema._ordered_heavy_values()
        self._heavy_rank = {
            value: index for index, value in enumerate(self._ordered_heavy)
        }
        self._sub_radix: Dict[str, int] = {}
        size = 1
        for attribute in reversed(schema.sub_attributes):
            self._sub_radix[attribute] = size
            size *= schema.heavy_shares[attribute]
        self._sub_size = size
        self._sub_tables_cache: Optional[List[Any]] = None

    def _code_space(self) -> int:
        return self._grid_size + len(self._ordered_heavy) * self._sub_size

    # -- sub-grid bucket lookups ----------------------------------------
    def _sub_buckets(self, attribute: str, column) -> Any:
        np = require_numpy()
        schema = self.schema
        if schema.heavy_shares[attribute] == 1:
            return np.zeros(len(column), dtype=np.int64)
        cache = self._sub_bucket_cache
        distinct, inverse = np.unique(column, return_inverse=True)
        values = distinct.tolist()
        for value in values:
            if (attribute, value) not in cache:
                cache[(attribute, value)] = schema.sub_bucket_of(attribute, value)
        lookup = np.fromiter(
            (cache[(attribute, value)] for value in values),
            dtype=np.int64,
            count=len(values),
        )
        return lookup[inverse]

    def _sub_base(self, batch: ColumnBatch, relation, rows) -> Any:
        np = require_numpy()
        base = np.zeros(len(rows), dtype=np.int64)
        for position, attribute in enumerate(relation.attributes):
            if attribute == self.schema.skew_attribute:
                continue
            column = batch.column(f"v{position}")[rows]
            base += self._sub_buckets(attribute, column) * self._sub_radix[attribute]
        return base

    def _heavy_ranks(self, column) -> Any:
        """Heavy-value rank per row, ``-1`` for values that are not heavy."""
        np = require_numpy()
        distinct, inverse = np.unique(column, return_inverse=True)
        lookup = np.fromiter(
            (self._heavy_rank.get(value, -1) for value in distinct.tolist()),
            dtype=np.int64,
            count=len(distinct),
        )
        return lookup[inverse]

    def _sub_tables(self) -> List[Any]:
        """Per-relation free sub-coordinate code blocks, in product order."""
        if self._sub_tables_cache is None:
            np = require_numpy()
            schema = self.schema
            blocks: List[Any] = []
            for relation in schema.query.relations:
                covered = set(relation.attributes)
                block = np.zeros(1, dtype=np.int64)
                for attribute in schema.sub_attributes:
                    if attribute in covered:
                        continue
                    step = (
                        np.arange(schema.heavy_shares[attribute], dtype=np.int64)
                        * self._sub_radix[attribute]
                    )
                    block = (block[:, None] + step[None, :]).ravel()
                blocks.append(block)
            self._sub_tables_cache = blocks
        return self._sub_tables_cache

    # -- map -------------------------------------------------------------
    def map_batch(self, batch: ColumnBatch):
        np = require_numpy()
        schema = self.schema
        query = schema.query
        main_free, _ = self._tables()
        sub_free = self._sub_tables()
        relation_ids = batch.column("rel")
        num_records = len(relation_ids)
        num_heavy = len(self._ordered_heavy)
        emissions = np.zeros(num_records, dtype=np.int64)
        plans: List[Optional[Tuple[Any, Optional[Any]]]] = []
        for relation_id, relation in enumerate(query.relations):
            rows = np.nonzero(relation_ids == relation_id)[0]
            if len(rows) == 0:
                plans.append(None)
                continue
            if schema.skew_attribute in relation.attributes:
                position = relation.attributes.index(schema.skew_attribute)
                ranks = self._heavy_ranks(batch.column(f"v{position}")[rows])
                emissions[rows] = np.where(
                    ranks >= 0,
                    len(sub_free[relation_id]),
                    len(main_free[relation_id]),
                )
                plans.append((rows, ranks))
            else:
                emissions[rows] = len(main_free[relation_id]) + num_heavy * len(
                    sub_free[relation_id]
                )
                plans.append((rows, None))
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(emissions, dtype=np.int64))
        )
        total = int(offsets[-1])
        codes = np.empty(total, dtype=np.int64)
        row_indices = np.empty(total, dtype=np.int64)
        heavy_offsets = (
            self._grid_size
            + np.arange(num_heavy, dtype=np.int64) * self._sub_size
        )

        def write_block(rows, block) -> None:
            positions = (
                offsets[rows][:, None]
                + np.arange(block.shape[1], dtype=np.int64)[None, :]
            ).ravel()
            codes[positions] = block.ravel()
            row_indices[positions] = np.repeat(rows, block.shape[1])

        for relation_id, relation in enumerate(query.relations):
            plan = plans[relation_id]
            if plan is None:
                continue
            rows, ranks = plan
            free = main_free[relation_id]
            sub = sub_free[relation_id]
            if ranks is None:
                # Main-grid points first, then every heavy sub-grid in
                # ordered-heavy-value order — the scalar broadcast order.
                main_base = self._main_base(batch, relation, rows)
                sub_base = self._sub_base(batch, relation, rows)
                combo = (heavy_offsets[:, None] + sub[None, :]).ravel()
                block = np.concatenate(
                    (
                        main_base[:, None] + free[None, :],
                        sub_base[:, None] + combo[None, :],
                    ),
                    axis=1,
                )
                write_block(rows, block)
                continue
            heavy = ranks >= 0
            light_rows = rows[~heavy]
            if len(light_rows):
                base = self._main_base(batch, relation, light_rows)
                write_block(light_rows, base[:, None] + free[None, :])
            heavy_rows = rows[heavy]
            if len(heavy_rows):
                base = (
                    self._grid_size
                    + ranks[heavy] * self._sub_size
                    + self._sub_base(batch, relation, heavy_rows)
                )
                write_block(heavy_rows, base[:, None] + sub[None, :])
        return codes, row_indices, batch

    def key_of_code(self, code: int):
        code = int(code)
        if code < self._grid_size:
            return ("main",) + self._decode_main(code)
        heavy_rank, sub_code = divmod(code - self._grid_size, self._sub_size)
        point: List[int] = []
        for attribute in reversed(self.schema.sub_attributes):
            share = self.schema.heavy_shares[attribute]
            point.append(sub_code % share)
            sub_code //= share
        return ("heavy", self._ordered_heavy[heavy_rank]) + tuple(reversed(point))

    # -- reduce ----------------------------------------------------------
    def _owner_mask(self, key, attributes: List[str], rows) -> Any:
        np = require_numpy()
        schema = self.schema
        skew_column = rows[:, attributes.index(schema.skew_attribute)]
        if key[0] == "main":
            keep = self._heavy_ranks(skew_column) < 0
            for index, attribute in enumerate(schema.query.attributes):
                column = rows[:, attributes.index(attribute)]
                keep &= self._buckets(attribute, column) == key[1 + index]
            return keep
        keep = skew_column == key[1]
        for index, attribute in enumerate(schema.sub_attributes):
            column = rows[:, attributes.index(attribute)]
            keep &= self._sub_buckets(attribute, column) == key[2 + index]
        return keep

    def _owner_mask_run(self, run, attributes: List[Any], rows) -> Any:
        np = require_numpy()
        schema = self.schema
        group_column = rows[:, attributes.index(_GROUP_COLUMN)]
        codes = run.codes
        main_group = codes < self._grid_size
        row_on_main = main_group[group_column]
        skew_column = rows[:, attributes.index(schema.skew_attribute)]
        # Main-grid groups own a row iff its skew value is light and every
        # main-grid bucket matches the group's decoded coordinate.
        keep_main = row_on_main & (self._heavy_ranks(skew_column) < 0)
        for attribute in schema.query.attributes:
            coordinate = (codes // self._radix[attribute]) % schema.shares[attribute]
            column = rows[:, attributes.index(attribute)]
            keep_main &= self._buckets(attribute, column) == coordinate[group_column]
        # Heavy sub-grid groups own a row iff the skew value is the group's
        # heavy value and the sub-grid buckets match.  The where() guards
        # keep main-grid codes (negative remainders) inside valid ranges;
        # those groups are masked out by ``row_on_main`` anyway.
        remainder = np.where(main_group, 0, codes - self._grid_size)
        heavy_values = np.asarray(self._ordered_heavy, dtype=np.int64)
        group_heavy_value = heavy_values[remainder // self._sub_size]
        keep_heavy = ~row_on_main & (skew_column == group_heavy_value[group_column])
        sub_code = remainder % self._sub_size
        for attribute in schema.sub_attributes:
            coordinate = (sub_code // self._sub_radix[attribute]) % schema.heavy_shares[
                attribute
            ]
            column = rows[:, attributes.index(attribute)]
            keep_heavy &= (
                self._sub_buckets(attribute, column) == coordinate[group_column]
            )
        return keep_main | keep_heavy


# ----------------------------------------------------------------------
# Share-vector constructors and closed forms for the paper's query shapes
# ----------------------------------------------------------------------
def shares_communication(
    query: JoinQuery, shares: Mapping[str, int], row_counts: Mapping[str, float]
) -> float:
    """``Σ_e |R_e| · Π_{A∉A_e} s_A`` — the Shares communication objective.

    The quantity the Shares analysis minimizes for a fixed reducer budget,
    evaluated on an arbitrary share mapping (attributes omitted from
    ``shares`` count as share 1) without constructing a schema — the share
    optimizer scores thousands of raw vectors through this single
    implementation, which :meth:`SharesSchema.expected_communication`
    shares.
    """
    total = 0.0
    for relation in query.relations:
        replication = 1
        for attribute, share in shares.items():
            if attribute not in relation.attributes:
                replication *= share
        total += row_counts[relation.name] * replication
    return total



def _spread_budget(attributes: Sequence[str], budget: int) -> List[Dict[str, int]]:
    """Ways of spending a reducer sub-budget on a set of attributes.

    Either evenly (``budget^(1/len)`` per attribute) or concentrated on one
    attribute at a time — the concentrated shapes are what split a skewed
    or oversized relation along a single well-behaved column.
    """
    if not attributes or budget <= 1:
        return [{attribute: 1 for attribute in attributes}]
    shapes: List[Dict[str, int]] = []
    even = max(1, round(budget ** (1.0 / len(attributes))))
    shapes.append({attribute: even for attribute in attributes})
    for target in attributes:
        shapes.append(
            {attribute: budget if attribute == target else 1 for attribute in attributes}
        )
    return shapes


def binary_join_shares(query: JoinQuery, reducers: int) -> List[Dict[str, int]]:
    """Share shapes for a two-relation join ``L ⋈ R`` within a budget.

    The classic hash join spends the whole budget on the shared attributes
    (replication 1) — optimal on balanced data, helpless against a heavy
    join value, which lands every colliding tuple on one coordinate no
    matter how large the shared share is.  These shapes split the budget
    ``reducers = h · l · r`` geometrically between the shared attributes
    (``h``) and each side's private attributes (``l``, ``r``), because
    shares on *private* attributes are what spread a heavy value's tuples
    (they differ on their private columns).  Multi-attribute groups are
    filled evenly or concentrated one attribute at a time.

    The multi-round pipeline planner leans on these for its binary cascade
    rounds: the chain/star closed forms never fire there (intermediate
    queries are not chain- or star-shaped), and uniform-on-shared alone
    cannot certify a skewed round under a tight budget.
    """
    if query.num_relations != 2:
        raise ConfigurationError(
            f"binary_join_shares needs a two-relation query, got "
            f"{query.num_relations} relations"
        )
    if reducers < 1:
        raise ConfigurationError("the number of reducers must be at least 1")
    left, right = query.relations
    shared = [a for a in left.attributes if a in right.attributes]
    left_only = [a for a in left.attributes if a not in shared]
    right_only = [a for a in right.attributes if a not in shared]
    if not shared:
        raise ConfigurationError(
            f"relations {left.name!r} and {right.name!r} share no attributes"
        )
    vectors: Dict[Tuple[Tuple[str, int], ...], Dict[str, int]] = {}
    shared_budget = reducers
    while True:
        side_budget = max(1, reducers // shared_budget)
        root = max(1, math.isqrt(side_budget))
        for left_budget, right_budget in {
            (side_budget, 1),
            (1, side_budget),
            (root, root),
        }:
            for shared_shape in _spread_budget(shared, shared_budget):
                for left_shape in _spread_budget(left_only, left_budget):
                    for right_shape in _spread_budget(right_only, right_budget):
                        vector = {**shared_shape, **left_shape, **right_shape}
                        vectors.setdefault(tuple(sorted(vector.items())), vector)
        if shared_budget == 1:
            break
        shared_budget = max(1, shared_budget // 4)
    return list(vectors.values())


def binary_join_share_grid(
    query: JoinQuery, reducer_budgets: Sequence[int]
) -> List[Dict[str, int]]:
    """The binary shapes across a budget sweep, or nothing when inapplicable.

    The single gate both the planner's vanilla enumeration and the share
    optimizer's grid floor call (so the two can never drift apart, the
    same single-source rule the grid constants follow): a query that is
    not a two-relation join — or whose two relations share no attributes,
    i.e. a cross product — yields no binary shapes.
    """
    if query.num_relations != 2:
        return []
    left, right = query.relations
    if not set(left.attributes) & set(right.attributes):
        return []
    vectors: List[Dict[str, int]] = []
    for reducers in reducer_budgets:
        vectors.extend(binary_join_shares(query, reducers))
    return vectors


def chain_join_shares(num_relations: int, reducers: int) -> Dict[str, int]:
    """Balanced shares for a chain join with ``num_relations`` relations.

    The interior attributes ``A1 .. A_{N-1}`` each receive share
    ``⌈reducers^{1/(N-1)}⌉`` and the two endpoint attributes share 1.  This
    is the share shape that realizes the ``(n/√q)^{N-1}`` upper bound the
    paper quotes from [1] (up to the low-order factor the paper also drops).
    """
    if num_relations < 2:
        raise ConfigurationError("a chain join needs at least two relations")
    if reducers < 1:
        raise ConfigurationError("the number of reducers must be at least 1")
    interior = num_relations - 1
    share = max(1, round(reducers ** (1.0 / interior)))
    shares = {f"A{index}": share for index in range(1, num_relations)}
    shares[f"A{0}"] = 1
    shares[f"A{num_relations}"] = 1
    return shares


def star_join_shares(num_dimensions: int, reducers: int) -> Dict[str, int]:
    """Shares for a star join: ``p^{1/N}`` per fact-table key, 1 elsewhere.

    Matches Section 5.5.2: the share for attributes not in the fact table is
    1 while each fact-table attribute receives share ``p^{1/N}``.
    """
    if num_dimensions < 1:
        raise ConfigurationError("a star join needs at least one dimension table")
    if reducers < 1:
        raise ConfigurationError("the number of reducers must be at least 1")
    key_share = max(1, round(reducers ** (1.0 / num_dimensions)))
    shares: Dict[str, int] = {}
    for index in range(1, num_dimensions + 1):
        shares[f"K{index}"] = key_share
        shares[f"V{index}"] = 1
    return shares


def chain_join_replication_upper_bound(domain_size: int, q: float, num_relations: int) -> float:
    """Closed form ``r = (n / √q)^{N-1}`` for chain joins (Section 5.5.2)."""
    if q <= 0:
        return float("inf")
    return max(1.0, (domain_size / math.sqrt(q)) ** (num_relations - 1))


def star_join_replication_upper_bound(
    fact_size: float, dimension_size: float, q: float, num_dimensions: int
) -> float:
    """Section 5.5.2's star-join upper bound on the replication rate.

    ``r = (f + N·d0·(N·d0/(e·q))^{N-1}) / (f + N·d0)`` with the paper's
    simplifying assumption ``f/p = (1-e)·q``; we use ``e = 1/2`` which the
    paper treats as "not very small or very large".
    """
    if q <= 0:
        return float("inf")
    e = 0.5
    N = num_dimensions
    d0 = dimension_size
    f = fact_size
    numerator = f + N * d0 * (N * d0 / (e * q)) ** (N - 1)
    return max(1.0, numerator / (f + N * d0))


def star_join_replication_lower_bound(
    fact_size: float, dimension_size: float, q: float, num_dimensions: int
) -> float:
    """Section 5.5.2's star-join lower bound ``N·d0·(N·d0/q)^{N-1} / (f + N·d0)``."""
    if q <= 0:
        return float("inf")
    N = num_dimensions
    d0 = dimension_size
    f = fact_size
    return N * d0 * (N * d0 / q) ** (N - 1) / (f + N * d0)
