"""The Shares algorithm for multiway joins (Section 5.5 upper bounds).

The Shares algorithm [Afrati–Ullman, ref. 1 in the paper] assigns each
attribute ``A`` of the join a *share* ``s_A``; the reducers form a grid with
one coordinate per attribute, the coordinate for ``A`` ranging over
``s_A`` hash buckets.  A tuple of relation ``R_e`` (with attribute set
``A_e``) knows the coordinates of the attributes it contains and must be
replicated to every combination of the remaining coordinates, i.e. to
``Π_{A ∉ A_e} s_A`` reducers.

The module provides:

* a generic :class:`SharesSchema` that works for any join query and share
  vector, can build an explicit mapping schema over the model's full input
  domain, and produces an executable job joining real relation instances;
* share-vector constructors for the two query shapes the paper analyses
  (chain joins and star joins) plus the closed-form replication rates used
  in Table 2.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.datagen.relations import RelationInstance, multiway_join_oracle
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import stable_hash
from repro.problems.joins import JoinQuery, MultiwayJoinProblem

GridPoint = Tuple[int, ...]


class SharesSchema(SchemaFamily):
    """Grid-of-reducers schema defined by a share per join attribute.

    Parameters
    ----------
    query:
        The join query (hypergraph).
    shares:
        Mapping from attribute name to its integer share (>= 1).  Attributes
        omitted from the mapping get share 1 (no partitioning on them).
    domain_size:
        Domain size ``n`` used for the closed-form replication-rate and
        reducer-size formulas over the model's full input domain.
    """

    def __init__(
        self,
        query: JoinQuery,
        shares: Mapping[str, int],
        domain_size: int,
    ) -> None:
        if domain_size <= 0:
            raise ConfigurationError("domain_size must be positive")
        unknown = set(shares) - set(query.attributes)
        if unknown:
            raise ConfigurationError(
                f"shares given for attributes not in the query: {sorted(unknown)}"
            )
        self.query = query
        self.domain_size = domain_size
        self.shares: Dict[str, int] = {}
        for attribute in query.attributes:
            share = int(shares.get(attribute, 1))
            if share < 1:
                raise ConfigurationError(
                    f"share for attribute {attribute!r} must be >= 1, got {share}"
                )
            self.shares[attribute] = share
        share_text = ",".join(f"{a}={s}" for a, s in self.shares.items())
        self.name = f"shares[{query.name}]({share_text})"

    # ------------------------------------------------------------------
    # Grid geometry
    # ------------------------------------------------------------------
    @property
    def num_reducers(self) -> int:
        """Total number of grid points ``Π_A s_A`` (the paper's ``p``)."""
        product = 1
        for share in self.shares.values():
            product *= share
        return product

    def bucket_of(self, attribute: str, value: int) -> int:
        """Hash bucket of an attribute value within that attribute's share."""
        share = self.shares[attribute]
        if share == 1:
            return 0
        return stable_hash((attribute, value)) % share

    def reducers_for(
        self, relation_name: str, values: Sequence[int]
    ) -> Iterator[GridPoint]:
        """Grid points a tuple of the named relation is replicated to."""
        relation = self._relation(relation_name)
        if len(values) != relation.arity:
            raise ConfigurationError(
                f"tuple {values!r} does not match the arity of {relation_name!r}"
            )
        assignment = dict(zip(relation.attributes, values))
        coordinate_choices: List[range | List[int]] = []
        for attribute in self.query.attributes:
            if attribute in assignment:
                coordinate_choices.append([self.bucket_of(attribute, assignment[attribute])])
            else:
                coordinate_choices.append(range(self.shares[attribute]))
        for point in itertools.product(*coordinate_choices):
            yield tuple(point)

    def reducer_of_output(self, assignment: Mapping[str, int]) -> GridPoint:
        """The unique grid point responsible for a full attribute assignment."""
        return tuple(
            self.bucket_of(attribute, assignment[attribute])
            for attribute in self.query.attributes
        )

    def _relation(self, relation_name: str):
        for relation in self.query.relations:
            if relation.name == relation_name:
                return relation
        raise ConfigurationError(
            f"relation {relation_name!r} is not part of query {self.query.name!r}"
        )

    def replication_of(self, relation_name: str) -> int:
        """Number of reducers one tuple of the named relation reaches."""
        relation = self._relation(relation_name)
        product = 1
        for attribute in self.query.attributes:
            if attribute not in relation.attributes:
                product *= self.shares[attribute]
        return product

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, MultiwayJoinProblem):
            raise ConfigurationError("SharesSchema serves MultiwayJoinProblem instances")
        if problem.query is not self.query and problem.query.name != self.query.name:
            raise ConfigurationError(
                "schema and problem were built for different join queries"
            )
        if problem.domain_size != self.domain_size:
            raise ConfigurationError(
                "schema and problem were built for different domain sizes"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for input_id in problem.inputs():
            relation_name, values = input_id
            for point in self.reducers_for(relation_name, values):
                schema.assign_one(point, input_id)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """Average replication over the model's full input domain.

        Each relation contributes ``n^arity`` inputs each replicated to
        ``Π_{A ∉ relation} s_A`` reducers.
        """
        n = self.domain_size
        total_inputs = 0
        total_pairs = 0
        for relation in self.query.relations:
            relation_inputs = n ** relation.arity
            total_inputs += relation_inputs
            total_pairs += relation_inputs * self.replication_of(relation.name)
        return total_pairs / total_inputs

    def max_reducer_size_formula(self) -> float:
        """Expected inputs per reducer over the full domain.

        Relation ``R_e`` spreads its ``n^arity`` tuples over
        ``Π_{A ∈ A_e} s_A`` distinct coordinate combinations, so each grid
        point receives about ``n^arity / Π_{A ∈ A_e} s_A`` of them.
        """
        n = self.domain_size
        expected = 0.0
        for relation in self.query.relations:
            covered_shares = 1
            for attribute in relation.attributes:
                covered_shares *= self.shares[attribute]
            expected += n ** relation.arity / covered_shares
        return expected

    # ------------------------------------------------------------------
    # Executable job over real relation instances
    # ------------------------------------------------------------------
    def job(self, relations: Sequence[RelationInstance]) -> MapReduceJob:
        """Join the given relation instances with one round of map-reduce.

        Input records are ``(relation name, tuple)``.  Each reducer joins its
        local fragments with the serial oracle and emits only the result
        tuples whose full attribute assignment hashes to that reducer,
        guaranteeing each join result is emitted exactly once.
        """
        by_name = {relation.name: relation for relation in relations}
        for relation in self.query.relations:
            if relation.name not in by_name:
                raise ConfigurationError(
                    f"no instance supplied for relation {relation.name!r}"
                )
        schema = self
        query = self.query

        def mapper(record: Tuple[str, Tuple[int, ...]]):
            relation_name, values = record
            for point in schema.reducers_for(relation_name, values):
                yield (point, record)

        def reducer(point: GridPoint, records: List[Tuple[str, Tuple[int, ...]]]):
            fragments: Dict[str, set] = {
                relation.name: set() for relation in query.relations
            }
            for relation_name, values in records:
                fragments[relation_name].add(tuple(values))
            local_instances = []
            for relation in query.relations:
                local_instances.append(
                    RelationInstance(
                        name=relation.name,
                        attributes=relation.attributes,
                        tuples=tuple(sorted(fragments[relation.name])),
                    )
                )
            attributes, rows = multiway_join_oracle(local_instances)
            for row in rows:
                assignment = dict(zip(attributes, row))
                if schema.reducer_of_output(assignment) == point:
                    yield tuple(assignment[attribute] for attribute in query.attributes)

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name)

    @staticmethod
    def input_records(relations: Sequence[RelationInstance]) -> List[Tuple[str, Tuple[int, ...]]]:
        """Flatten relation instances into the job's input records."""
        records: List[Tuple[str, Tuple[int, ...]]] = []
        for relation in relations:
            for row in relation.tuples:
                records.append((relation.name, tuple(row)))
        return records


# ----------------------------------------------------------------------
# Share-vector constructors and closed forms for the paper's query shapes
# ----------------------------------------------------------------------
def chain_join_shares(num_relations: int, reducers: int) -> Dict[str, int]:
    """Balanced shares for a chain join with ``num_relations`` relations.

    The interior attributes ``A1 .. A_{N-1}`` each receive share
    ``⌈reducers^{1/(N-1)}⌉`` and the two endpoint attributes share 1.  This
    is the share shape that realizes the ``(n/√q)^{N-1}`` upper bound the
    paper quotes from [1] (up to the low-order factor the paper also drops).
    """
    if num_relations < 2:
        raise ConfigurationError("a chain join needs at least two relations")
    if reducers < 1:
        raise ConfigurationError("the number of reducers must be at least 1")
    interior = num_relations - 1
    share = max(1, round(reducers ** (1.0 / interior)))
    shares = {f"A{index}": share for index in range(1, num_relations)}
    shares[f"A{0}"] = 1
    shares[f"A{num_relations}"] = 1
    return shares


def star_join_shares(num_dimensions: int, reducers: int) -> Dict[str, int]:
    """Shares for a star join: ``p^{1/N}`` per fact-table key, 1 elsewhere.

    Matches Section 5.5.2: the share for attributes not in the fact table is
    1 while each fact-table attribute receives share ``p^{1/N}``.
    """
    if num_dimensions < 1:
        raise ConfigurationError("a star join needs at least one dimension table")
    if reducers < 1:
        raise ConfigurationError("the number of reducers must be at least 1")
    key_share = max(1, round(reducers ** (1.0 / num_dimensions)))
    shares: Dict[str, int] = {}
    for index in range(1, num_dimensions + 1):
        shares[f"K{index}"] = key_share
        shares[f"V{index}"] = 1
    return shares


def chain_join_replication_upper_bound(domain_size: int, q: float, num_relations: int) -> float:
    """Closed form ``r = (n / √q)^{N-1}`` for chain joins (Section 5.5.2)."""
    if q <= 0:
        return float("inf")
    return max(1.0, (domain_size / math.sqrt(q)) ** (num_relations - 1))


def star_join_replication_upper_bound(
    fact_size: float, dimension_size: float, q: float, num_dimensions: int
) -> float:
    """Section 5.5.2's star-join upper bound on the replication rate.

    ``r = (f + N·d0·(N·d0/(e·q))^{N-1}) / (f + N·d0)`` with the paper's
    simplifying assumption ``f/p = (1-e)·q``; we use ``e = 1/2`` which the
    paper treats as "not very small or very large".
    """
    if q <= 0:
        return float("inf")
    e = 0.5
    N = num_dimensions
    d0 = dimension_size
    f = fact_size
    numerator = f + N * d0 * (N * d0 / (e * q)) ** (N - 1)
    return max(1.0, numerator / (f + N * d0))


def star_join_replication_lower_bound(
    fact_size: float, dimension_size: float, q: float, num_dimensions: int
) -> float:
    """Section 5.5.2's star-join lower bound ``N·d0·(N·d0/q)^{N-1} / (f + N·d0)``."""
    if q <= 0:
        return float("inf")
    N = num_dimensions
    d0 = dimension_size
    f = fact_size
    return N * d0 * (N * d0 / q) ** (N - 1) / (f + N * d0)
