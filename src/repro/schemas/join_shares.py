"""The Shares algorithm for multiway joins (Section 5.5 upper bounds).

The Shares algorithm [Afrati–Ullman, ref. 1 in the paper] assigns each
attribute ``A`` of the join a *share* ``s_A``; the reducers form a grid with
one coordinate per attribute, the coordinate for ``A`` ranging over
``s_A`` hash buckets.  A tuple of relation ``R_e`` (with attribute set
``A_e``) knows the coordinates of the attributes it contains and must be
replicated to every combination of the remaining coordinates, i.e. to
``Π_{A ∉ A_e} s_A`` reducers.

The module provides:

* a generic :class:`SharesSchema` that works for any join query and share
  vector, can build an explicit mapping schema over the model's full input
  domain, and produces an executable job joining real relation instances;
* share-vector constructors for the two query shapes the paper analyses
  (chain joins and star joins) plus the closed-form replication rates used
  in Table 2.
"""

from __future__ import annotations

import itertools
import math
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.datagen.relations import RelationInstance, multiway_join_oracle
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import stable_hash
from repro.problems.joins import JoinQuery, MultiwayJoinProblem

GridPoint = Tuple[int, ...]

#: Above this many reducers, certification falls back to one coarse bound
#: (valid for every grid point) instead of enumerating the full grid.
_CERTIFICATION_GRID_LIMIT = 4096


class SharesSchema(SchemaFamily):
    """Grid-of-reducers schema defined by a share per join attribute.

    Parameters
    ----------
    query:
        The join query (hypergraph).
    shares:
        Mapping from attribute name to its integer share (>= 1).  Attributes
        omitted from the mapping get share 1 (no partitioning on them).
    domain_size:
        Domain size ``n`` used for the closed-form replication-rate and
        reducer-size formulas over the model's full input domain.
    """

    def __init__(
        self,
        query: JoinQuery,
        shares: Mapping[str, int],
        domain_size: int,
    ) -> None:
        if domain_size <= 0:
            raise ConfigurationError("domain_size must be positive")
        unknown = set(shares) - set(query.attributes)
        if unknown:
            raise ConfigurationError(
                f"shares given for attributes not in the query: {sorted(unknown)}"
            )
        self.query = query
        self.domain_size = domain_size
        self.shares: Dict[str, int] = {}
        for attribute in query.attributes:
            share = int(shares.get(attribute, 1))
            if share < 1:
                raise ConfigurationError(
                    f"share for attribute {attribute!r} must be >= 1, got {share}"
                )
            self.shares[attribute] = share
        share_text = ",".join(f"{a}={s}" for a, s in self.shares.items())
        self.name = f"shares[{query.name}]({share_text})"

    # ------------------------------------------------------------------
    # Grid geometry
    # ------------------------------------------------------------------
    @property
    def num_reducers(self) -> int:
        """Total number of grid points ``Π_A s_A`` (the paper's ``p``)."""
        product = 1
        for share in self.shares.values():
            product *= share
        return product

    def bucket_of(self, attribute: str, value: int) -> int:
        """Hash bucket of an attribute value within that attribute's share."""
        share = self.shares[attribute]
        if share == 1:
            return 0
        return stable_hash((attribute, value)) % share

    def reducers_for(
        self, relation_name: str, values: Sequence[int]
    ) -> Iterator[GridPoint]:
        """Grid points a tuple of the named relation is replicated to."""
        relation = self._relation(relation_name)
        if len(values) != relation.arity:
            raise ConfigurationError(
                f"tuple {values!r} does not match the arity of {relation_name!r}"
            )
        assignment = dict(zip(relation.attributes, values))
        coordinate_choices: List[range | List[int]] = []
        for attribute in self.query.attributes:
            if attribute in assignment:
                coordinate_choices.append([self.bucket_of(attribute, assignment[attribute])])
            else:
                coordinate_choices.append(range(self.shares[attribute]))
        for point in itertools.product(*coordinate_choices):
            yield tuple(point)

    def reducer_of_output(self, assignment: Mapping[str, int]) -> GridPoint:
        """The unique grid point responsible for a full attribute assignment."""
        return tuple(
            self.bucket_of(attribute, assignment[attribute])
            for attribute in self.query.attributes
        )

    def _relation(self, relation_name: str):
        for relation in self.query.relations:
            if relation.name == relation_name:
                return relation
        raise ConfigurationError(
            f"relation {relation_name!r} is not part of query {self.query.name!r}"
        )

    def replication_of(self, relation_name: str) -> int:
        """Number of reducers one tuple of the named relation reaches."""
        relation = self._relation(relation_name)
        product = 1
        for attribute in self.query.attributes:
            if attribute not in relation.attributes:
                product *= self.shares[attribute]
        return product

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, MultiwayJoinProblem):
            raise ConfigurationError("SharesSchema serves MultiwayJoinProblem instances")
        if problem.query is not self.query and problem.query.name != self.query.name:
            raise ConfigurationError(
                "schema and problem were built for different join queries"
            )
        if problem.domain_size != self.domain_size:
            raise ConfigurationError(
                "schema and problem were built for different domain sizes"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for input_id in problem.inputs():
            relation_name, values = input_id
            for point in self.reducers_for(relation_name, values):
                schema.assign_one(point, input_id)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """Average replication over the model's full input domain.

        Each relation contributes ``n^arity`` inputs each replicated to
        ``Π_{A ∉ relation} s_A`` reducers.
        """
        n = self.domain_size
        total_inputs = 0
        total_pairs = 0
        for relation in self.query.relations:
            relation_inputs = n ** relation.arity
            total_inputs += relation_inputs
            total_pairs += relation_inputs * self.replication_of(relation.name)
        return total_pairs / total_inputs

    def max_reducer_size_formula(self) -> float:
        """Expected inputs per reducer over the full domain.

        Relation ``R_e`` spreads its ``n^arity`` tuples over
        ``Π_{A ∈ A_e} s_A`` distinct coordinate combinations, so each grid
        point receives about ``n^arity / Π_{A ∈ A_e} s_A`` of them.
        """
        n = self.domain_size
        expected = 0.0
        for relation in self.query.relations:
            covered_shares = 1
            for attribute in relation.attributes:
                covered_shares *= self.shares[attribute]
            expected += n ** relation.arity / covered_shares
        return expected

    def expected_communication(self, row_counts: Mapping[str, int]) -> float:
        """Shuffled pairs on an actual instance: ``Σ_e |R_e| · Π_{A∉A_e} s_A``.

        Delegates to :func:`shares_communication`, the module-level form
        the profile-driven share optimizer evaluates on raw share vectors
        (the model's closed form uses ``n^arity`` row counts instead).
        """
        return shares_communication(self.query, self.shares, row_counts)

    def expected_reducer_load(self, row_counts: Mapping[str, int]) -> float:
        """Hash-balanced expected load per reducer on an *actual* instance.

        The Section 5.5 expectation of :meth:`max_reducer_size_formula`
        evaluated with real relation sizes instead of the model's full
        ``n^arity`` domains: relation ``R_e`` spreads its ``|R_e|`` tuples
        over ``Π_{A ∈ A_e} s_A`` coordinate combinations.  On skewed inputs
        the observed maximum can exceed this freely — that gap is exactly
        what the profile-based tail certificates close.
        """
        expected = 0.0
        for relation in self.query.relations:
            covered_shares = 1
            for attribute in relation.attributes:
                covered_shares *= self.shares[attribute]
            expected += row_counts[relation.name] / covered_shares
        return expected

    # ------------------------------------------------------------------
    # Profile-based certification hook
    # ------------------------------------------------------------------
    def reducer_load_bounds(self, oracle) -> Iterator[float]:
        """Upper bound on the input load of every reducer of this schema.

        ``oracle`` answers bucket-weight queries from a dataset profile (see
        :class:`repro.planner.certify.ProfileWeightOracle`); it must hash
        values to buckets exactly as :meth:`bucket_of` does.  A relation's
        tuples at a grid point all agree with the point's coordinate on each
        of the relation's own attributes, so the *minimum* over those
        attributes of the bucket weights bounds the relation's contribution;
        summing over relations bounds the reducer.  Grids larger than
        ``_CERTIFICATION_GRID_LIMIT`` yield a single coarse bound (max
        bucket weight per attribute) valid for every point.
        """
        if self.num_reducers > _CERTIFICATION_GRID_LIMIT:
            load = 0.0
            for relation in self.query.relations:
                load += min(
                    oracle.max_bucket_weight(
                        relation.name, attribute, self.shares[attribute]
                    )
                    for attribute in relation.attributes
                )
            yield load
            return
        attributes = self.query.attributes
        for point in itertools.product(
            *(range(self.shares[attribute]) for attribute in attributes)
        ):
            coordinates = dict(zip(attributes, point))
            load = 0.0
            for relation in self.query.relations:
                load += min(
                    oracle.bucket_weight(
                        relation.name,
                        attribute,
                        self.shares[attribute],
                        coordinates[attribute],
                    )
                    for attribute in relation.attributes
                )
            yield load

    # ------------------------------------------------------------------
    # Executable job over real relation instances
    # ------------------------------------------------------------------
    def job(self, relations: Sequence[RelationInstance]) -> MapReduceJob:
        """Join the given relation instances with one round of map-reduce.

        Input records are ``(relation name, tuple)``.  Each reducer joins its
        local fragments with the serial oracle and emits only the result
        tuples whose full attribute assignment hashes to that reducer,
        guaranteeing each join result is emitted exactly once.
        """
        by_name = {relation.name: relation for relation in relations}
        for relation in self.query.relations:
            if relation.name not in by_name:
                raise ConfigurationError(
                    f"no instance supplied for relation {relation.name!r}"
                )
        schema = self
        query = self.query

        def mapper(record: Tuple[str, Tuple[int, ...]]):
            relation_name, values = record
            for point in schema.reducers_for(relation_name, values):
                yield (point, record)

        def reducer(point: GridPoint, records: List[Tuple[str, Tuple[int, ...]]]):
            fragments: Dict[str, set] = {
                relation.name: set() for relation in query.relations
            }
            for relation_name, values in records:
                fragments[relation_name].add(tuple(values))
            local_instances = []
            for relation in query.relations:
                local_instances.append(
                    RelationInstance(
                        name=relation.name,
                        attributes=relation.attributes,
                        tuples=tuple(sorted(fragments[relation.name])),
                    )
                )
            attributes, rows = multiway_join_oracle(local_instances)
            for row in rows:
                assignment = dict(zip(attributes, row))
                if schema.reducer_of_output(assignment) == point:
                    yield tuple(assignment[attribute] for attribute in query.attributes)

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name)

    @staticmethod
    def input_records(relations: Sequence[RelationInstance]) -> List[Tuple[str, Tuple[int, ...]]]:
        """Flatten relation instances into the job's input records."""
        records: List[Tuple[str, Tuple[int, ...]]] = []
        for relation in relations:
            for row in relation.tuples:
                records.append((relation.name, tuple(row)))
        return records


class SkewAwareSharesSchema(SharesSchema):
    """Shares with profiled heavy-hitter values isolated onto sub-grids.

    Vanilla Shares hashes every value of an attribute across that
    attribute's share, so all tuples carrying one heavy join value collide
    on a single coordinate — the grid cannot split them no matter how many
    reducers it spends on that attribute.  Following the SkewJoin idea,
    this variant diverts each profiled heavy value ``v`` of one
    ``skew_attribute`` to its own dedicated reducer sub-grid partitioned on
    the *remaining* attributes (``heavy_shares``), so the heavy value's
    tuples are spread instead of stacked:

    * a tuple whose ``skew_attribute`` value is heavy goes **only** to the
      matching sub-grid (replicated over the sub-shares of attributes it
      lacks);
    * a tuple of a relation without the ``skew_attribute`` goes to the main
      grid as usual **and** to every heavy sub-grid (the broadcast cost of
      skew handling);
    * every other tuple uses the vanilla main grid, whose geometry is
      unchanged (heavy tuples simply never arrive there).

    Reducer ids are tagged — ``("main", *point)`` or
    ``("heavy", v, *subpoint)`` — and each join result is emitted exactly
    once: an output assignment belongs to the sub-grid of its heavy
    ``skew_attribute`` value, or to the main grid when that value is not
    heavy.  All relations sharing the attribute agree on its value in any
    join result, so the contributing tuples always meet at the owner.
    """

    def __init__(
        self,
        query: JoinQuery,
        shares: Mapping[str, int],
        domain_size: int,
        skew_attribute: str,
        heavy_values: Iterable[int],
        heavy_shares: Optional[Mapping[str, int]] = None,
    ) -> None:
        super().__init__(query, shares, domain_size)
        if skew_attribute not in query.attributes:
            raise ConfigurationError(
                f"skew attribute {skew_attribute!r} is not part of query "
                f"{query.name!r}"
            )
        self.skew_attribute = skew_attribute
        self.heavy_values = frozenset(heavy_values)
        if not self.heavy_values:
            raise ConfigurationError(
                "SkewAwareSharesSchema needs at least one heavy value; use "
                "SharesSchema when the profile shows no skew"
            )
        self.sub_attributes: Tuple[str, ...] = tuple(
            attribute for attribute in query.attributes if attribute != skew_attribute
        )
        heavy_shares = heavy_shares or {}
        unknown = set(heavy_shares) - set(self.sub_attributes)
        if unknown:
            raise ConfigurationError(
                f"heavy shares given for attributes that are not sub-grid "
                f"coordinates: {sorted(unknown)}"
            )
        self.heavy_shares: Dict[str, int] = {}
        for attribute in self.sub_attributes:
            share = int(heavy_shares.get(attribute, 1))
            if share < 1:
                raise ConfigurationError(
                    f"heavy share for attribute {attribute!r} must be >= 1, "
                    f"got {share}"
                )
            self.heavy_shares[attribute] = share
        share_text = ",".join(f"{a}={s}" for a, s in self.shares.items())
        sub_text = ",".join(
            f"{a}={s}" for a, s in self.heavy_shares.items() if s > 1
        ) or "-"
        self.name = (
            f"skew-shares[{query.name}]({share_text};"
            f"{skew_attribute}:{len(self.heavy_values)}hh;sub:{sub_text})"
        )

    # ------------------------------------------------------------------
    # Grid geometry
    # ------------------------------------------------------------------
    @property
    def sub_grid_size(self) -> int:
        product = 1
        for share in self.heavy_shares.values():
            product *= share
        return product

    @property
    def num_reducers(self) -> int:
        return super().num_reducers + len(self.heavy_values) * self.sub_grid_size

    def sub_bucket_of(self, attribute: str, value: int) -> int:
        """Sub-grid hash bucket; same hashing rule as :meth:`bucket_of`."""
        share = self.heavy_shares[attribute]
        if share == 1:
            return 0
        return stable_hash((attribute, value)) % share

    def _ordered_heavy_values(self) -> List[int]:
        return sorted(self.heavy_values, key=repr)

    def _sub_points(
        self, value: int, assignment: Mapping[str, int]
    ) -> Iterator[GridPoint]:
        choices: List[Any] = []
        for attribute in self.sub_attributes:
            if attribute in assignment:
                choices.append([self.sub_bucket_of(attribute, assignment[attribute])])
            else:
                choices.append(range(self.heavy_shares[attribute]))
        for point in itertools.product(*choices):
            yield ("heavy", value) + tuple(point)

    def reducers_for(
        self, relation_name: str, values: Sequence[int]
    ) -> Iterator[GridPoint]:
        relation = self._relation(relation_name)
        if len(values) != relation.arity:
            raise ConfigurationError(
                f"tuple {values!r} does not match the arity of {relation_name!r}"
            )
        assignment = dict(zip(relation.attributes, values))
        skew_value = assignment.get(self.skew_attribute)
        if skew_value is not None and skew_value in self.heavy_values:
            yield from self._sub_points(skew_value, assignment)
            return
        for point in super().reducers_for(relation_name, values):
            yield ("main",) + point
        if self.skew_attribute not in assignment:
            for value in self._ordered_heavy_values():
                yield from self._sub_points(value, assignment)

    def reducer_of_output(self, assignment: Mapping[str, int]) -> GridPoint:
        skew_value = assignment[self.skew_attribute]
        if skew_value in self.heavy_values:
            return ("heavy", skew_value) + tuple(
                self.sub_bucket_of(attribute, assignment[attribute])
                for attribute in self.sub_attributes
            )
        return ("main",) + super().reducer_of_output(assignment)

    # ------------------------------------------------------------------
    # Closed forms over the model's full input domain
    # ------------------------------------------------------------------
    def replication_rate_formula(self) -> float:
        n = self.domain_size
        num_heavy = len(self.heavy_values)
        total_inputs = 0
        total_pairs = 0.0
        for relation in self.query.relations:
            relation_inputs = n ** relation.arity
            total_inputs += relation_inputs
            main_replication = self.replication_of(relation.name)
            sub_replication = 1
            for attribute in self.sub_attributes:
                if attribute not in relation.attributes:
                    sub_replication *= self.heavy_shares[attribute]
            if self.skew_attribute in relation.attributes:
                heavy_fraction = min(num_heavy, n) / n
                total_pairs += relation_inputs * (
                    (1.0 - heavy_fraction) * main_replication
                    + heavy_fraction * sub_replication
                )
            else:
                total_pairs += relation_inputs * (
                    main_replication + num_heavy * sub_replication
                )
        return total_pairs / total_inputs

    def max_reducer_size_formula(self) -> float:
        """Expected load of the fuller of a main grid point / sub-grid point."""
        n = self.domain_size
        num_heavy = min(len(self.heavy_values), n)
        main_expected = 0.0
        sub_expected = 0.0
        for relation in self.query.relations:
            covered = 1
            for attribute in relation.attributes:
                covered *= self.shares[attribute]
            relation_inputs = n ** relation.arity
            if self.skew_attribute in relation.attributes:
                main_expected += (
                    relation_inputs * (1.0 - num_heavy / n) / covered
                )
                sub_covered = 1
                for attribute in relation.attributes:
                    if attribute != self.skew_attribute:
                        sub_covered *= self.heavy_shares[attribute]
                sub_expected += n ** (relation.arity - 1) / sub_covered
            else:
                main_expected += relation_inputs / covered
                sub_covered = 1
                for attribute in relation.attributes:
                    sub_covered *= self.heavy_shares[attribute]
                sub_expected += relation_inputs / sub_covered
        return max(main_expected, sub_expected)

    # ------------------------------------------------------------------
    # Profile-based certification hook
    # ------------------------------------------------------------------
    def reducer_load_bounds(self, oracle) -> Iterator[float]:
        heavy = self.heavy_values
        attributes = self.query.attributes
        # Main grid: relations containing the skew attribute only send their
        # non-heavy tuples there, so heavy values are excluded from that
        # attribute's bucket weights.
        def main_terms(relation, weight):
            terms = []
            for attribute in relation.attributes:
                exclude = heavy if attribute == self.skew_attribute else frozenset()
                terms.append(weight(relation.name, attribute, self.shares[attribute], exclude))
            return terms

        if super().num_reducers > _CERTIFICATION_GRID_LIMIT:
            load = 0.0
            for relation in self.query.relations:
                load += min(
                    main_terms(
                        relation,
                        lambda name, a, share, exclude: oracle.max_bucket_weight(
                            name, a, share, exclude=exclude
                        ),
                    )
                )
            yield load
        else:
            for point in itertools.product(
                *(range(self.shares[attribute]) for attribute in attributes)
            ):
                coordinates = dict(zip(attributes, point))
                load = 0.0
                for relation in self.query.relations:
                    load += min(
                        main_terms(
                            relation,
                            lambda name, a, share, exclude: oracle.bucket_weight(
                                name, a, share, coordinates[a], exclude=exclude
                            ),
                        )
                    )
                yield load
        # Heavy sub-grids: one grid over the remaining attributes per heavy
        # value.  A relation with the skew attribute contributes at most its
        # count of tuples carrying that exact value.
        coarse_sub = self.sub_grid_size > _CERTIFICATION_GRID_LIMIT
        for value in self._ordered_heavy_values():
            sub_points: Iterable[Tuple[int, ...]]
            if coarse_sub:
                sub_points = [()]
            else:
                sub_points = itertools.product(
                    *(range(self.heavy_shares[a]) for a in self.sub_attributes)
                )
            for point in sub_points:
                coordinates = dict(zip(self.sub_attributes, point))
                load = 0.0
                for relation in self.query.relations:
                    terms = []
                    if self.skew_attribute in relation.attributes:
                        terms.append(
                            oracle.value_weight(
                                relation.name, self.skew_attribute, value
                            )
                        )
                    for attribute in relation.attributes:
                        if attribute == self.skew_attribute:
                            continue
                        share = self.heavy_shares[attribute]
                        if coarse_sub:
                            terms.append(
                                oracle.max_bucket_weight(
                                    relation.name, attribute, share
                                )
                            )
                        else:
                            terms.append(
                                oracle.bucket_weight(
                                    relation.name,
                                    attribute,
                                    share,
                                    coordinates[attribute],
                                )
                            )
                    load += min(terms)
                yield load


# ----------------------------------------------------------------------
# Share-vector constructors and closed forms for the paper's query shapes
# ----------------------------------------------------------------------
def shares_communication(
    query: JoinQuery, shares: Mapping[str, int], row_counts: Mapping[str, float]
) -> float:
    """``Σ_e |R_e| · Π_{A∉A_e} s_A`` — the Shares communication objective.

    The quantity the Shares analysis minimizes for a fixed reducer budget,
    evaluated on an arbitrary share mapping (attributes omitted from
    ``shares`` count as share 1) without constructing a schema — the share
    optimizer scores thousands of raw vectors through this single
    implementation, which :meth:`SharesSchema.expected_communication`
    shares.
    """
    total = 0.0
    for relation in query.relations:
        replication = 1
        for attribute, share in shares.items():
            if attribute not in relation.attributes:
                replication *= share
        total += row_counts[relation.name] * replication
    return total



def _spread_budget(attributes: Sequence[str], budget: int) -> List[Dict[str, int]]:
    """Ways of spending a reducer sub-budget on a set of attributes.

    Either evenly (``budget^(1/len)`` per attribute) or concentrated on one
    attribute at a time — the concentrated shapes are what split a skewed
    or oversized relation along a single well-behaved column.
    """
    if not attributes or budget <= 1:
        return [{attribute: 1 for attribute in attributes}]
    shapes: List[Dict[str, int]] = []
    even = max(1, round(budget ** (1.0 / len(attributes))))
    shapes.append({attribute: even for attribute in attributes})
    for target in attributes:
        shapes.append(
            {attribute: budget if attribute == target else 1 for attribute in attributes}
        )
    return shapes


def binary_join_shares(query: JoinQuery, reducers: int) -> List[Dict[str, int]]:
    """Share shapes for a two-relation join ``L ⋈ R`` within a budget.

    The classic hash join spends the whole budget on the shared attributes
    (replication 1) — optimal on balanced data, helpless against a heavy
    join value, which lands every colliding tuple on one coordinate no
    matter how large the shared share is.  These shapes split the budget
    ``reducers = h · l · r`` geometrically between the shared attributes
    (``h``) and each side's private attributes (``l``, ``r``), because
    shares on *private* attributes are what spread a heavy value's tuples
    (they differ on their private columns).  Multi-attribute groups are
    filled evenly or concentrated one attribute at a time.

    The multi-round pipeline planner leans on these for its binary cascade
    rounds: the chain/star closed forms never fire there (intermediate
    queries are not chain- or star-shaped), and uniform-on-shared alone
    cannot certify a skewed round under a tight budget.
    """
    if query.num_relations != 2:
        raise ConfigurationError(
            f"binary_join_shares needs a two-relation query, got "
            f"{query.num_relations} relations"
        )
    if reducers < 1:
        raise ConfigurationError("the number of reducers must be at least 1")
    left, right = query.relations
    shared = [a for a in left.attributes if a in right.attributes]
    left_only = [a for a in left.attributes if a not in shared]
    right_only = [a for a in right.attributes if a not in shared]
    if not shared:
        raise ConfigurationError(
            f"relations {left.name!r} and {right.name!r} share no attributes"
        )
    vectors: Dict[Tuple[Tuple[str, int], ...], Dict[str, int]] = {}
    shared_budget = reducers
    while True:
        side_budget = max(1, reducers // shared_budget)
        root = max(1, math.isqrt(side_budget))
        for left_budget, right_budget in {
            (side_budget, 1),
            (1, side_budget),
            (root, root),
        }:
            for shared_shape in _spread_budget(shared, shared_budget):
                for left_shape in _spread_budget(left_only, left_budget):
                    for right_shape in _spread_budget(right_only, right_budget):
                        vector = {**shared_shape, **left_shape, **right_shape}
                        vectors.setdefault(tuple(sorted(vector.items())), vector)
        if shared_budget == 1:
            break
        shared_budget = max(1, shared_budget // 4)
    return list(vectors.values())


def binary_join_share_grid(
    query: JoinQuery, reducer_budgets: Sequence[int]
) -> List[Dict[str, int]]:
    """The binary shapes across a budget sweep, or nothing when inapplicable.

    The single gate both the planner's vanilla enumeration and the share
    optimizer's grid floor call (so the two can never drift apart, the
    same single-source rule the grid constants follow): a query that is
    not a two-relation join — or whose two relations share no attributes,
    i.e. a cross product — yields no binary shapes.
    """
    if query.num_relations != 2:
        return []
    left, right = query.relations
    if not set(left.attributes) & set(right.attributes):
        return []
    vectors: List[Dict[str, int]] = []
    for reducers in reducer_budgets:
        vectors.extend(binary_join_shares(query, reducers))
    return vectors


def chain_join_shares(num_relations: int, reducers: int) -> Dict[str, int]:
    """Balanced shares for a chain join with ``num_relations`` relations.

    The interior attributes ``A1 .. A_{N-1}`` each receive share
    ``⌈reducers^{1/(N-1)}⌉`` and the two endpoint attributes share 1.  This
    is the share shape that realizes the ``(n/√q)^{N-1}`` upper bound the
    paper quotes from [1] (up to the low-order factor the paper also drops).
    """
    if num_relations < 2:
        raise ConfigurationError("a chain join needs at least two relations")
    if reducers < 1:
        raise ConfigurationError("the number of reducers must be at least 1")
    interior = num_relations - 1
    share = max(1, round(reducers ** (1.0 / interior)))
    shares = {f"A{index}": share for index in range(1, num_relations)}
    shares[f"A{0}"] = 1
    shares[f"A{num_relations}"] = 1
    return shares


def star_join_shares(num_dimensions: int, reducers: int) -> Dict[str, int]:
    """Shares for a star join: ``p^{1/N}`` per fact-table key, 1 elsewhere.

    Matches Section 5.5.2: the share for attributes not in the fact table is
    1 while each fact-table attribute receives share ``p^{1/N}``.
    """
    if num_dimensions < 1:
        raise ConfigurationError("a star join needs at least one dimension table")
    if reducers < 1:
        raise ConfigurationError("the number of reducers must be at least 1")
    key_share = max(1, round(reducers ** (1.0 / num_dimensions)))
    shares: Dict[str, int] = {}
    for index in range(1, num_dimensions + 1):
        shares[f"K{index}"] = key_share
        shares[f"V{index}"] = 1
    return shares


def chain_join_replication_upper_bound(domain_size: int, q: float, num_relations: int) -> float:
    """Closed form ``r = (n / √q)^{N-1}`` for chain joins (Section 5.5.2)."""
    if q <= 0:
        return float("inf")
    return max(1.0, (domain_size / math.sqrt(q)) ** (num_relations - 1))


def star_join_replication_upper_bound(
    fact_size: float, dimension_size: float, q: float, num_dimensions: int
) -> float:
    """Section 5.5.2's star-join upper bound on the replication rate.

    ``r = (f + N·d0·(N·d0/(e·q))^{N-1}) / (f + N·d0)`` with the paper's
    simplifying assumption ``f/p = (1-e)·q``; we use ``e = 1/2`` which the
    paper treats as "not very small or very large".
    """
    if q <= 0:
        return float("inf")
    e = 0.5
    N = num_dimensions
    d0 = dimension_size
    f = fact_size
    numerator = f + N * d0 * (N * d0 / (e * q)) ** (N - 1)
    return max(1.0, numerator / (f + N * d0))


def star_join_replication_lower_bound(
    fact_size: float, dimension_size: float, q: float, num_dimensions: int
) -> float:
    """Section 5.5.2's star-join lower bound ``N·d0·(N·d0/q)^{N-1} / (f + N·d0)``."""
    if q <= 0:
        return float("inf")
    N = num_dimensions
    d0 = dimension_size
    f = fact_size
    return N * d0 * (N * d0 / q) ** (N - 1) / (f + N * d0)
