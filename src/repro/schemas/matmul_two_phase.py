"""Two-phase matrix multiplication (Section 6.3).

Phase 1 computes partial sums: each first-phase reducer is responsible for a
cube of the index space — ``s`` rows ``i``, ``s`` columns ``k`` and ``t``
middle indices ``j`` — and emits one partial sum per ``(i, k)`` pair in its
cube.  Phase 2 groups the partial sums by ``(i, k)`` and adds them.  The
paper shows the total communication of the two phases is minimized at aspect
ratio 2:1 (``s = 2t``), i.e. ``s = √q`` and ``t = √q / 2`` when reducers may
take ``q = 2st`` inputs, giving total communication ``4n³/√q`` — always at
least as good as the one-phase method's ``4n⁴/q`` and strictly better for
every ``q < n²``.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.mapreduce.columnar import BatchEncodingError, BatchKernel, ColumnBatch
from repro.mapreduce.job import JobChain, MapReduceJob
from repro.problems.matmul import MatrixMultiplicationProblem
from repro.schemas.matmul_one_phase import (
    accumulate_tile,
    decode_element_records,
    encode_element_records,
)

ElementRecord = Tuple[str, int, int, float]
CubeId = Tuple[int, int, int]


class TwoPhaseMatMulAlgorithm:
    """The two-round algorithm parameterized by the cube sides ``s`` and ``t``.

    Unlike the single-round constructions this is not a mapping schema in the
    strict one-round sense of the model; it is exposed as a job chain for the
    engine plus closed-form communication accounting, which is exactly how
    Section 6.3 treats it.

    Parameters
    ----------
    n:
        Matrix dimension.
    s:
        Number of rows of R (and columns of S) per first-phase reducer; must
        divide ``n``.
    t:
        Number of middle indices ``j`` per first-phase reducer; must divide
        ``n``.
    """

    def __init__(self, n: int, s: int, t: int) -> None:
        if n <= 0:
            raise ConfigurationError(f"matrix dimension must be positive, got {n}")
        if s <= 0 or n % s != 0:
            raise ConfigurationError(f"s={s} must be positive and divide n={n}")
        if t <= 0 or n % t != 0:
            raise ConfigurationError(f"t={t} must be positive and divide n={n}")
        self.n = n
        self.s = s
        self.t = t
        self.name = f"two-phase-matmul(n={n}, s={s}, t={t})"

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def row_group(self, i: int) -> int:
        return i // self.s

    def column_group(self, k: int) -> int:
        return k // self.s

    def middle_group(self, j: int) -> int:
        return j // self.t

    @property
    def num_row_groups(self) -> int:
        return self.n // self.s

    @property
    def num_middle_groups(self) -> int:
        return self.n // self.t

    @property
    def num_first_phase_reducers(self) -> int:
        """``(n/s)² · (n/t)`` cubes."""
        return self.num_row_groups * self.num_row_groups * self.num_middle_groups

    def reducers_for_element(self, matrix: str, i: int, j: int) -> Iterator[CubeId]:
        """First-phase cubes needing element (i, j) of R or (j, k) of S."""
        if matrix == "R":
            row = self.row_group(i)
            middle = self.middle_group(j)
            for column in range(self.num_row_groups):
                yield (row, column, middle)
        elif matrix == "S":
            middle = self.middle_group(i)
            column = self.column_group(j)
            for row in range(self.num_row_groups):
                yield (row, column, middle)
        else:
            raise ConfigurationError(f"unknown matrix tag {matrix!r}; expected 'R' or 'S'")

    # ------------------------------------------------------------------
    # Closed-form accounting (Section 6.3)
    # ------------------------------------------------------------------
    @property
    def first_phase_reducer_size(self) -> int:
        """``q = 2st``: s·t elements of R plus s·t elements of S per cube."""
        return 2 * self.s * self.t

    def first_phase_communication(self) -> float:
        """``2n³ / s`` — each of the 2n² elements goes to n/s cubes."""
        return 2.0 * self.n ** 3 / self.s

    def second_phase_communication(self) -> float:
        """``n³ / t`` — s² partial sums from each of the (n/s)²(n/t) cubes."""
        return float(self.n ** 3) / self.t

    def total_communication(self) -> float:
        """``2n³/s + n³/t``; equals ``4n³/√q`` at the optimal aspect ratio."""
        return self.first_phase_communication() + self.second_phase_communication()

    # ------------------------------------------------------------------
    # Optimal parameter choice
    # ------------------------------------------------------------------
    @classmethod
    def optimal_for_reducer_size(cls, n: int, q: float) -> "TwoPhaseMatMulAlgorithm":
        """The 2:1 aspect-ratio optimum ``s = √q``, ``t = √q / 2``.

        The continuous optimum is rounded to divisors of ``n``; the paper's
        constraint is ``2st = q``.  Requires ``q >= 2`` so that ``t >= 1``.
        """
        if q < 2:
            raise ConfigurationError("two-phase matrix multiplication needs q >= 2")
        target_s = max(1.0, min(float(n), math.sqrt(q)))
        target_t = max(1.0, min(float(n), math.sqrt(q) / 2.0))
        s = _nearest_divisor(n, target_s)
        t = _nearest_divisor(n, target_t)
        return cls(n, s, t)

    # ------------------------------------------------------------------
    # Executable job chain
    # ------------------------------------------------------------------
    def chain(self) -> JobChain:
        """The two-round job chain: partial sums, then final aggregation.

        The second round's mappers are co-located with the first round's
        reducers (the chain records this), matching the paper's statement
        that no communication is needed between them.
        """
        algorithm = self

        def first_mapper(record: ElementRecord):
            matrix, i, j, value = record
            for cube in algorithm.reducers_for_element(matrix, i, j):
                yield (cube, record)

        def first_reducer(cube: CubeId, records: List[ElementRecord]):
            row_elements: dict[Tuple[int, int], float] = {}
            column_elements: dict[Tuple[int, int], float] = {}
            for matrix, i, j, value in records:
                if matrix == "R":
                    row_elements[(i, j)] = value
                else:
                    column_elements[(i, j)] = value
            row_start = cube[0] * algorithm.s
            column_start = cube[1] * algorithm.s
            middle_start = cube[2] * algorithm.t
            for i in range(row_start, row_start + algorithm.s):
                for k in range(column_start, column_start + algorithm.s):
                    partial = 0.0
                    contributed = False
                    for j in range(middle_start, middle_start + algorithm.t):
                        left = row_elements.get((i, j))
                        right = column_elements.get((j, k))
                        if left is not None and right is not None:
                            partial += left * right
                            contributed = True
                    if contributed:
                        yield ((i, k), partial)

        def second_mapper(record: Tuple[Tuple[int, int], float]):
            (i, k), partial = record
            yield ((i, k), partial)

        def second_reducer(key: Tuple[int, int], partials: List[float]):
            i, k = key
            yield (i, k, sum(partials))

        first_job = MapReduceJob(
            mapper=first_mapper,
            reducer=first_reducer,
            name=f"{self.name}/phase-1",
            reducer_capacity=self.first_phase_reducer_size,
            batch_kernel=CubePartialSumBatchKernel(self),
        )
        second_job = MapReduceJob(
            mapper=second_mapper,
            reducer=second_reducer,
            name=f"{self.name}/phase-2",
            batch_kernel=PartialSumAggregationBatchKernel(self),
        )
        return JobChain(jobs=[first_job, second_job], name=self.name, colocated_rounds=(1,))


class CubePartialSumBatchKernel(BatchKernel):
    """Vectorized twin of the first-phase (partial sum) job.

    Cubes ``(row, column, middle)`` become the code
    ``(row · n/s + column) · n/t + middle``.  The per-cube reduce is
    :func:`repro.schemas.matmul_one_phase.accumulate_tile` restricted to
    the cube's middle-index band; only contributing ``(i, k)`` pairs emit,
    in the scalar reducer's row-major order.
    """

    def __init__(self, algorithm: TwoPhaseMatMulAlgorithm) -> None:
        self.algorithm = algorithm

    def encode(self, records) -> ColumnBatch:
        return encode_element_records(records, self.algorithm.n)

    def decode_records(self, values: ColumnBatch) -> List[ElementRecord]:
        return decode_element_records(values)

    def map_batch(self, batch: ColumnBatch):
        import numpy as np

        algorithm = self.algorithm
        row_groups = algorithm.num_row_groups
        middle_groups = algorithm.num_middle_groups
        tags = batch.column("m")
        is_left = tags == 0
        # R(i, j): cube middle comes from j; S(j, k): from i.
        middle = np.where(
            is_left,
            batch.column("j") // algorithm.t,
            batch.column("i") // algorithm.t,
        )
        # R fans out along a row of cubes (ascending column group), S down a
        # column (ascending row group) — the scalar mapper's loop order.
        anchor = np.where(
            is_left,
            (batch.column("i") // algorithm.s) * row_groups,
            batch.column("j") // algorithm.s,
        )
        step = np.where(is_left, 1, row_groups)
        codes = (
            anchor[:, None] + step[:, None] * np.arange(row_groups, dtype=np.int64)[None, :]
        ) * middle_groups + middle[:, None]
        row_indices = np.repeat(np.arange(len(tags), dtype=np.int64), row_groups)
        return codes.ravel(), row_indices, batch

    def key_of_code(self, code: int) -> CubeId:
        code = int(code)
        middle_groups = self.algorithm.num_middle_groups
        row_groups = self.algorithm.num_row_groups
        tile, middle = divmod(code, middle_groups)
        return (tile // row_groups, tile % row_groups, middle)

    def reduce_group(self, key: CubeId, code: int, values: ColumnBatch):
        import numpy as np

        algorithm = self.algorithm
        row_start = key[0] * algorithm.s
        column_start = key[1] * algorithm.s
        middle_start = key[2] * algorithm.t
        totals, contributed = accumulate_tile(
            values.column("m"),
            values.column("i"),
            values.column("j"),
            values.column("val"),
            (row_start, row_start + algorithm.s),
            (column_start, column_start + algorithm.s),
            (middle_start, middle_start + algorithm.t),
        )
        row_ids = np.repeat(
            np.arange(row_start, row_start + algorithm.s, dtype=np.int64), algorithm.s
        )
        column_ids = np.tile(
            np.arange(column_start, column_start + algorithm.s, dtype=np.int64),
            algorithm.s,
        )
        emit = contributed.ravel()
        return [
            ((i, k), partial)
            for i, k, partial in zip(
                row_ids[emit].tolist(),
                column_ids[emit].tolist(),
                totals.ravel()[emit].tolist(),
            )
        ]


class PartialSumAggregationBatchKernel(BatchKernel):
    """Vectorized twin of the second-phase (final aggregation) job.

    Keys ``(i, k)`` become ``i · n + k``; each record emits exactly once,
    so the value batch is already pair-aligned.  The per-key reduce is the
    scalar ``sum(partials)`` on the arrival-ordered Python floats — the
    addition order is the bit-identity contract, so no numpy pairwise sum.
    """

    def __init__(self, algorithm: TwoPhaseMatMulAlgorithm) -> None:
        self.algorithm = algorithm

    def encode(self, records) -> ColumnBatch:
        import numpy as np

        row_ids: List[int] = []
        column_ids: List[int] = []
        values: List[float] = []
        try:
            for (i, k), partial in records:
                if (
                    type(i) is not int
                    or type(k) is not int
                    or type(partial) is not float
                ):
                    raise BatchEncodingError(
                        "partial-sum records must carry plain int indices "
                        "and a plain float value"
                    )
                row_ids.append(i)
                column_ids.append(k)
                values.append(partial)
        except (TypeError, ValueError) as error:
            raise BatchEncodingError(f"records are not partial sums: {error}")
        index_low = min(min(row_ids, default=0), min(column_ids, default=0))
        index_high = max(max(row_ids, default=0), max(column_ids, default=0))
        if index_low < 0 or index_high >= self.algorithm.n:
            raise BatchEncodingError(
                f"partial-sum indices fall outside [0, n={self.algorithm.n})"
            )
        return ColumnBatch(
            {
                "i": np.asarray(row_ids, dtype=np.int64),
                "k": np.asarray(column_ids, dtype=np.int64),
                "val": np.asarray(values, dtype=np.float64),
            }
        )

    def decode_records(self, values: ColumnBatch) -> List[float]:
        return values.column("val").tolist()

    def map_batch(self, batch: ColumnBatch):
        codes = batch.column("i") * self.algorithm.n + batch.column("k")
        return codes, None, batch

    def key_of_code(self, code: int) -> Tuple[int, int]:
        return divmod(int(code), self.algorithm.n)

    def reduce_group(self, key: Tuple[int, int], code: int, values: ColumnBatch):
        return [(key[0], key[1], sum(values.column("val").tolist()))]


def _nearest_divisor(n: int, target: float) -> int:
    """The divisor of ``n`` closest to ``target`` (ties go to the smaller)."""
    divisors = [d for d in range(1, n + 1) if n % d == 0]
    return min(divisors, key=lambda d: (abs(d - target), d))


def one_phase_total_communication(n: int, q: float) -> float:
    """Section 6.3's one-phase total communication ``4n⁴ / q``."""
    if q <= 0:
        return float("inf")
    return 4.0 * n ** 4 / q


def two_phase_total_communication(n: int, q: float) -> float:
    """Section 6.3's optimal two-phase total communication ``4n³ / √q``."""
    if q <= 0:
        return float("inf")
    return 4.0 * n ** 3 / math.sqrt(q)


def communication_crossover_q(n: int) -> float:
    """The reducer size at which the two methods tie: ``q = n²``."""
    return float(n * n)
