"""The partition-based triangle-finding schema (Section 4 upper bound).

Nodes are hashed into ``k`` buckets; there is one reducer for every multiset
``{a, b, c}`` of bucket indices (``a <= b <= c``).  An edge is sent to every
reducer whose multiset contains the buckets of both its endpoints, which is
exactly ``k`` reducers, so the replication rate is ``k``.  A reducer holds
the edges among (up to) three buckets — about ``4.5 n²/k²`` potential edges —
and can therefore emit every triangle whose three nodes hash into its bucket
multiset.  Solving ``q ≈ 4.5 n²/k²`` for ``k`` gives ``r = O(n/√q)``,
matching the Section 4.1 lower bound ``n/√(2q)`` to within a constant factor
(the ratio is 3, as recorded in EXPERIMENTS.md).

This is the algorithm of Suri–Vassilvitskii [21] and Afrati–Fotakis–Ullman
[2] restated in the paper's vocabulary.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import stable_hash
from repro.problems.triangles import TriangleProblem

Edge = Tuple[int, int]
BucketTriple = Tuple[int, int, int]


class PartitionTriangleSchema(SchemaFamily):
    """Bucket-triple triangle finding with ``k`` node buckets.

    Parameters
    ----------
    n:
        Number of nodes in the data-graph domain.
    num_buckets:
        The parameter ``k``; replication rate equals ``k`` exactly.
    hash_nodes:
        If True nodes are assigned to buckets by a stable hash; if False they
        are assigned contiguously (node // ceil(n/k)), which makes reducer
        loads deterministic and is convenient in tests.
    """

    def __init__(self, n: int, num_buckets: int, hash_nodes: bool = False) -> None:
        if n < 3:
            raise ConfigurationError(f"triangle finding needs n >= 3, got {n}")
        if num_buckets < 1 or num_buckets > n:
            raise ConfigurationError(
                f"num_buckets must be in [1, n={n}], got {num_buckets}"
            )
        self.n = n
        self.num_buckets = num_buckets
        self.hash_nodes = hash_nodes
        self.name = f"partition-triangles(n={n}, k={num_buckets})"

    # ------------------------------------------------------------------
    # Bucketing and routing
    # ------------------------------------------------------------------
    def bucket_of(self, node: int) -> int:
        """Bucket index of a node (hash-based or contiguous)."""
        if self.hash_nodes:
            return stable_hash(node) % self.num_buckets
        group_size = math.ceil(self.n / self.num_buckets)
        return min(node // group_size, self.num_buckets - 1)

    def reducers_for(self, edge: Edge) -> Iterator[BucketTriple]:
        """The ``k`` reducers (bucket multisets) an edge is sent to."""
        u, v = edge
        bucket_u, bucket_v = self.bucket_of(u), self.bucket_of(v)
        for third in range(self.num_buckets):
            yield tuple(sorted((bucket_u, bucket_v, third)))

    def triangle_reducer(self, u: int, v: int, w: int) -> BucketTriple:
        """The unique reducer designated to emit the triangle {u, v, w}."""
        return tuple(sorted((self.bucket_of(u), self.bucket_of(v), self.bucket_of(w))))

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, TriangleProblem):
            raise ConfigurationError(
                "PartitionTriangleSchema serves TriangleProblem instances"
            )
        if problem.n != self.n:
            raise ConfigurationError(
                f"schema built for n={self.n} cannot serve a problem with n={problem.n}"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for edge in problem.inputs():
            for reducer_id in self.reducers_for(edge):
                schema.assign_one(reducer_id, edge)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """Each edge reaches exactly ``k`` reducers."""
        return float(self.num_buckets)

    def max_reducer_size_formula(self) -> float:
        """Edges among the three buckets of a reducer: ``C(3n/k, 2) ≈ 4.5 n²/k²``."""
        nodes_per_reducer = 3.0 * self.n / self.num_buckets
        return nodes_per_reducer * (nodes_per_reducer - 1.0) / 2.0

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Triangle-enumeration job over the edges actually present.

        Each reducer builds the subgraph induced by its edges and emits every
        triangle whose bucket multiset equals the reducer's id, so each
        triangle is produced exactly once across the job.
        """
        schema = self

        def mapper(edge: Edge):
            for reducer_id in schema.reducers_for(edge):
                yield (reducer_id, edge)

        def reducer(reducer_id: BucketTriple, edges: List[Edge]):
            adjacency: dict[int, set[int]] = {}
            edge_set = set(edges)
            for u, v in edge_set:
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
            for u, v in sorted(edge_set):
                common = adjacency[u] & adjacency[v]
                for w in sorted(common):
                    if w <= v:
                        continue
                    if schema.triangle_reducer(u, v, w) == reducer_id:
                        yield (u, v, w)

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name)

    # ------------------------------------------------------------------
    # Sizing helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_reducer_size(cls, n: int, q: float, hash_nodes: bool = False) -> "PartitionTriangleSchema":
        """Pick the largest ``k`` whose reducers stay within ``q`` edges.

        Inverts ``q ≈ 4.5 n² / k²``: ``k = ceil(n·√(4.5/q))``, clamped to
        [1, n].  This is the knob the Section 4 benchmark sweeps.
        """
        if q <= 0:
            raise ConfigurationError("q must be positive")
        k = max(1, math.ceil(n * math.sqrt(4.5 / q)))
        return cls(n, min(k, n), hash_nodes=hash_nodes)
