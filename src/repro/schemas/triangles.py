"""The partition-based triangle-finding schema (Section 4 upper bound).

Nodes are hashed into ``k`` buckets; there is one reducer for every multiset
``{a, b, c}`` of bucket indices (``a <= b <= c``).  An edge is sent to every
reducer whose multiset contains the buckets of both its endpoints, which is
exactly ``k`` reducers, so the replication rate is ``k``.  A reducer holds
the edges among (up to) three buckets — about ``4.5 n²/k²`` potential edges —
and can therefore emit every triangle whose three nodes hash into its bucket
multiset.  Solving ``q ≈ 4.5 n²/k²`` for ``k`` gives ``r = O(n/√q)``,
matching the Section 4.1 lower bound ``n/√(2q)`` to within a constant factor
(the ratio is 3, as recorded in EXPERIMENTS.md).

This is the algorithm of Suri–Vassilvitskii [21] and Afrati–Fotakis–Ullman
[2] restated in the paper's vocabulary.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.columnar import BatchKernel, ColumnBatch
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import stable_hash
from repro.problems.triangles import TriangleProblem

Edge = Tuple[int, int]
BucketTriple = Tuple[int, int, int]


class PartitionTriangleSchema(SchemaFamily):
    """Bucket-triple triangle finding with ``k`` node buckets.

    Parameters
    ----------
    n:
        Number of nodes in the data-graph domain.
    num_buckets:
        The parameter ``k``; replication rate equals ``k`` exactly.
    hash_nodes:
        If True nodes are assigned to buckets by a stable hash; if False they
        are assigned contiguously (node // ceil(n/k)), which makes reducer
        loads deterministic and is convenient in tests.
    """

    def __init__(self, n: int, num_buckets: int, hash_nodes: bool = False) -> None:
        if n < 3:
            raise ConfigurationError(f"triangle finding needs n >= 3, got {n}")
        if num_buckets < 1 or num_buckets > n:
            raise ConfigurationError(
                f"num_buckets must be in [1, n={n}], got {num_buckets}"
            )
        self.n = n
        self.num_buckets = num_buckets
        self.hash_nodes = hash_nodes
        self.name = f"partition-triangles(n={n}, k={num_buckets})"

    # ------------------------------------------------------------------
    # Bucketing and routing
    # ------------------------------------------------------------------
    def bucket_of(self, node: int) -> int:
        """Bucket index of a node (hash-based or contiguous)."""
        if self.hash_nodes:
            return stable_hash(node) % self.num_buckets
        group_size = math.ceil(self.n / self.num_buckets)
        return min(node // group_size, self.num_buckets - 1)

    def reducers_for(self, edge: Edge) -> Iterator[BucketTriple]:
        """The ``k`` reducers (bucket multisets) an edge is sent to."""
        u, v = edge
        bucket_u, bucket_v = self.bucket_of(u), self.bucket_of(v)
        for third in range(self.num_buckets):
            yield tuple(sorted((bucket_u, bucket_v, third)))

    def triangle_reducer(self, u: int, v: int, w: int) -> BucketTriple:
        """The unique reducer designated to emit the triangle {u, v, w}."""
        return tuple(sorted((self.bucket_of(u), self.bucket_of(v), self.bucket_of(w))))

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, TriangleProblem):
            raise ConfigurationError(
                "PartitionTriangleSchema serves TriangleProblem instances"
            )
        if problem.n != self.n:
            raise ConfigurationError(
                f"schema built for n={self.n} cannot serve a problem with n={problem.n}"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for edge in problem.inputs():
            for reducer_id in self.reducers_for(edge):
                schema.assign_one(reducer_id, edge)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """Each edge reaches exactly ``k`` reducers."""
        return float(self.num_buckets)

    def max_reducer_size_formula(self) -> float:
        """Edges among the three buckets of a reducer: ``C(3n/k, 2) ≈ 4.5 n²/k²``."""
        nodes_per_reducer = 3.0 * self.n / self.num_buckets
        return nodes_per_reducer * (nodes_per_reducer - 1.0) / 2.0

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Triangle-enumeration job over the edges actually present.

        Each reducer builds the subgraph induced by its edges and emits every
        triangle whose bucket multiset equals the reducer's id, so each
        triangle is produced exactly once across the job.
        """
        schema = self

        def mapper(edge: Edge):
            for reducer_id in schema.reducers_for(edge):
                yield (reducer_id, edge)

        def reducer(reducer_id: BucketTriple, edges: List[Edge]):
            adjacency: dict[int, set[int]] = {}
            edge_set = set(edges)
            for u, v in edge_set:
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
            for u, v in sorted(edge_set):
                common = adjacency[u] & adjacency[v]
                for w in sorted(common):
                    if w <= v:
                        continue
                    if schema.triangle_reducer(u, v, w) == reducer_id:
                        yield (u, v, w)

        return MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            name=self.name,
            batch_kernel=TriangleBatchKernel(self),
        )

    # ------------------------------------------------------------------
    # Sizing helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_reducer_size(
        cls, n: int, q: float, hash_nodes: bool = False
    ) -> "PartitionTriangleSchema":
        """Pick the largest ``k`` whose reducers stay within ``q`` edges.

        Inverts ``q ≈ 4.5 n² / k²``: ``k = ceil(n·√(4.5/q))``, clamped to
        [1, n].  This is the knob the Section 4 benchmark sweeps.
        """
        if q <= 0:
            raise ConfigurationError("q must be positive")
        k = max(1, math.ceil(n * math.sqrt(4.5 / q)))
        return cls(n, min(k, n), hash_nodes=hash_nodes)


class TriangleBatchKernel(BatchKernel):
    """Vectorized twin of :meth:`PartitionTriangleSchema.job`.

    Reduce keys (sorted bucket triples ``(a, b, c)``) are encoded as the
    mixed-radix integer ``(a·k + b)·k + c``.  The per-group reduce builds a
    boolean adjacency matrix over the group's local node set and finds, for
    every deduplicated edge ``(u, v)``, the common neighbours ``w > v``
    whose bucket completes the reducer's triple — ``np.nonzero`` row-major
    order reproduces the scalar reducer's lexicographic emission order.
    """

    def __init__(self, schema: PartitionTriangleSchema) -> None:
        self.schema = schema
        # Node buckets are memoized per distinct node value: the hash-based
        # bucketing goes through stable_hash, which is not vectorizable.
        self._bucket_cache: Dict[int, int] = {}

    def _buckets_of(self, nodes) -> "object":
        """Bucket indices of an array of *distinct* node values."""
        import numpy as np

        schema, cache = self.schema, self._bucket_cache
        if not schema.hash_nodes:
            group_size = math.ceil(schema.n / schema.num_buckets)
            return np.minimum(nodes // group_size, schema.num_buckets - 1)
        values = nodes.tolist()
        for value in values:
            if value not in cache:
                cache[value] = schema.bucket_of(value)
        return np.fromiter(
            (cache[value] for value in values), dtype=np.int64, count=len(values)
        )

    # -- encode / map ----------------------------------------------------
    def encode(self, records) -> ColumnBatch:
        return ColumnBatch.from_int_tuples(records, ("u", "v"))

    def map_batch(self, batch: ColumnBatch):
        import numpy as np

        k = self.schema.num_buckets
        u, v = batch.column("u"), batch.column("v")
        unique_nodes, inverse = np.unique(
            np.concatenate((u, v)), return_inverse=True
        )
        node_buckets = self._buckets_of(unique_nodes)
        bucket_u = node_buckets[inverse[: len(u)]]
        bucket_v = node_buckets[inverse[len(u) :]]
        # One emission per (edge, third) in the scalar mapper's order:
        # record-major, third ascending.
        num_edges = len(u)
        triples = np.sort(
            np.stack(
                (
                    np.repeat(bucket_u, k),
                    np.repeat(bucket_v, k),
                    np.tile(np.arange(k, dtype=np.int64), num_edges),
                ),
                axis=1,
            ),
            axis=1,
        )
        codes = (triples[:, 0] * k + triples[:, 1]) * k + triples[:, 2]
        row_indices = np.repeat(np.arange(num_edges, dtype=np.int64), k)
        return codes, row_indices, batch

    def key_of_code(self, code: int):
        k = self.schema.num_buckets
        return (code // (k * k), (code // k) % k, code % k)

    # -- reduce ----------------------------------------------------------
    def reduce_group(self, key, code: int, values: ColumnBatch):
        import numpy as np

        u, v = values.column("u"), values.column("v")
        # sorted(set(edges)): lexicographic sort, then first-occurrence
        # dedupe on the (u, v) pairs.
        order = np.lexsort((v, u))
        edge_u, edge_v = u[order], v[order]
        if len(edge_u) == 0:
            return []
        keep = np.empty(len(edge_u), dtype=bool)
        keep[0] = True
        keep[1:] = (edge_u[1:] != edge_u[:-1]) | (edge_v[1:] != edge_v[:-1])
        edge_u, edge_v = edge_u[keep], edge_v[keep]
        nodes = np.unique(np.concatenate((edge_u, edge_v)))
        local_u = np.searchsorted(nodes, edge_u)
        local_v = np.searchsorted(nodes, edge_v)
        size = len(nodes)
        adjacency = np.zeros((size, size), dtype=bool)
        adjacency[local_u, local_v] = True
        adjacency[local_v, local_u] = True
        buckets = self._buckets_of(nodes)
        # The third bucket that completes this reducer's multiset for each
        # edge; {bucket(u), bucket(v)} is a sub-multiset of the key by
        # construction, so the difference of sums identifies it.
        target = (key[0] + key[1] + key[2]) - buckets[local_u] - buckets[local_v]
        candidates = adjacency[local_u] & adjacency[local_v]
        candidates &= nodes[None, :] > edge_v[:, None]
        candidates &= buckets[None, :] == target[:, None]
        edge_index, node_index = np.nonzero(candidates)
        return list(
            zip(
                edge_u[edge_index].tolist(),
                edge_v[edge_index].tolist(),
                nodes[node_index].tolist(),
            )
        )
