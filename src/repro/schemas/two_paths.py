"""The 2-path schema of Section 5.4.2.

Nodes are hashed into ``k`` buckets.  Reducers are pairs ``[u, {i, j}]`` of a
middle node ``u`` and an unordered pair of bucket indices ``{i, j}`` with
``i != j``.  An edge ``(a, b)`` is sent to the ``2(k-1)`` reducers
``[b, {h(a), *}]`` and ``[a, {*, h(b)}]``, so the replication rate is
``2(k-1)``.  Each reducer receives roughly ``q = 2n/k`` edges, and the lower
bound ``2n/q = k`` is therefore within a factor of two of this construction.

The emission rule of the paper guarantees each 2-path is produced exactly
once: reducer ``[u, {i, j}]`` emits ``v-u-w`` if the endpoint buckets are
``{i, j}``, or if both endpoints hash to ``i`` and ``j = i + 1 (mod k)``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.columnar import (
    BatchEncodingError,
    BatchKernel,
    ColumnBatch,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import stable_hash
from repro.problems.subgraphs import TwoPathProblem

Edge = Tuple[int, int]
ReducerId = Tuple[int, FrozenSet[int]]


class TwoPathSchema(SchemaFamily):
    """Middle-node / bucket-pair schema for finding all paths of length two.

    Parameters
    ----------
    n:
        Number of nodes in the data-graph domain.
    num_buckets:
        The hash-bucket count ``k``; must be at least 2 so that bucket pairs
        exist.  ``k`` controls the tradeoff: ``q ≈ 2n/k`` and ``r = 2(k-1)``.
    hash_nodes:
        Hash-based bucketing (True) or contiguous bucketing (False).
    """

    def __init__(self, n: int, num_buckets: int, hash_nodes: bool = False) -> None:
        if n < 3:
            raise ConfigurationError(f"2-path finding needs n >= 3, got {n}")
        if num_buckets < 2 or num_buckets > n:
            raise ConfigurationError(
                f"num_buckets must be in [2, n={n}], got {num_buckets}"
            )
        self.n = n
        self.num_buckets = num_buckets
        self.hash_nodes = hash_nodes
        self.name = f"two-path(n={n}, k={num_buckets})"

    # ------------------------------------------------------------------
    # Bucketing and routing
    # ------------------------------------------------------------------
    def bucket_of(self, node: int) -> int:
        if self.hash_nodes:
            return stable_hash(node) % self.num_buckets
        group_size = math.ceil(self.n / self.num_buckets)
        return min(node // group_size, self.num_buckets - 1)

    def reducers_for(self, edge: Edge) -> Iterator[ReducerId]:
        """The ``2(k-1)`` reducers an edge (a, b) is sent to."""
        a, b = edge
        bucket_a, bucket_b = self.bucket_of(a), self.bucket_of(b)
        for other in range(self.num_buckets):
            if other != bucket_a:
                yield (b, frozenset((bucket_a, other)))
            if other != bucket_b:
                yield (a, frozenset((bucket_b, other)))

    def emitting_reducer(self, v: int, u: int, w: int) -> ReducerId:
        """The reducer designated to emit the 2-path ``v - u - w``."""
        bucket_v, bucket_w = self.bucket_of(v), self.bucket_of(w)
        if bucket_v != bucket_w:
            return (u, frozenset((bucket_v, bucket_w)))
        neighbour = (bucket_v + 1) % self.num_buckets
        return (u, frozenset((bucket_v, neighbour)))

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, TwoPathProblem):
            raise ConfigurationError("TwoPathSchema serves TwoPathProblem instances")
        if problem.n != self.n:
            raise ConfigurationError(
                f"schema built for n={self.n} cannot serve a problem with n={problem.n}"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for edge in problem.inputs():
            for reducer_id in self.reducers_for(edge):
                schema.assign_one(reducer_id, edge)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """Each edge reaches exactly ``2(k-1)`` reducers."""
        return 2.0 * (self.num_buckets - 1)

    def max_reducer_size_formula(self) -> float:
        """Approximately ``2n/k`` edges per reducer (Section 5.4.2)."""
        return 2.0 * self.n / self.num_buckets

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Job emitting every present 2-path exactly once."""
        schema = self

        def mapper(edge: Edge):
            for reducer_id in schema.reducers_for(edge):
                yield (reducer_id, edge)

        def reducer(reducer_id: ReducerId, edges: List[Edge]):
            middle, _buckets = reducer_id
            neighbours = set()
            for a, b in set(edges):
                if a == middle:
                    neighbours.add(b)
                elif b == middle:
                    neighbours.add(a)
            ordered = sorted(neighbours)
            for index, v in enumerate(ordered):
                for w in ordered[index + 1 :]:
                    if schema.emitting_reducer(v, middle, w) == reducer_id:
                        yield (v, middle, w)

        return MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            name=self.name,
            batch_kernel=TwoPathBatchKernel(self),
        )

    @classmethod
    def for_reducer_size(cls, n: int, q: float, hash_nodes: bool = False) -> "TwoPathSchema":
        """Pick ``k`` so that reducers receive about ``q`` edges (``k = 2n/q``)."""
        if q <= 0:
            raise ConfigurationError("q must be positive")
        k = max(2, math.ceil(2.0 * n / q))
        return cls(n, min(k, n), hash_nodes=hash_nodes)


class TwoPathBatchKernel(BatchKernel):
    """Vectorized twin of :meth:`TwoPathSchema.job`.

    A reducer id ``(middle, {i, j})`` with ``i < j`` becomes the code
    ``(middle · k + i) · k + j``.  The scalar mapper interleaves, for each
    ``other`` bucket in ascending order, the ``(b, {h(a), other})`` and
    ``(a, {h(b), other})`` emissions; the kernel lays the same codes out as
    a ``(num_edges, 2k)`` matrix and drops the skipped slots with a mask,
    so the row-major ravel reproduces the record-path emission order.
    """

    def __init__(self, schema: TwoPathSchema) -> None:
        self.schema = schema
        self._bucket_cache: Dict[int, int] = {}

    def _buckets_of(self, nodes):
        """Bucket indices of an array of *distinct* node values."""
        import numpy as np

        schema, cache = self.schema, self._bucket_cache
        if not schema.hash_nodes:
            group_size = math.ceil(schema.n / schema.num_buckets)
            return np.minimum(nodes // group_size, schema.num_buckets - 1)
        values = nodes.tolist()
        for value in values:
            if value not in cache:
                cache[value] = schema.bucket_of(value)
        return np.fromiter(
            (cache[value] for value in values), dtype=np.int64, count=len(values)
        )

    def encode(self, records) -> ColumnBatch:
        k = self.schema.num_buckets
        if self.schema.n * k * k >= 2**62:
            raise BatchEncodingError(
                f"reducer codes for n={self.schema.n}, k={k} exceed exact "
                "int64 arithmetic"
            )
        batch = ColumnBatch.from_int_tuples(records, ("u", "v"))
        if len(batch) > 0:
            import numpy as np

            low = min(int(batch.column("u").min()), int(batch.column("v").min()))
            high = max(int(batch.column("u").max()), int(batch.column("v").max()))
            if low < 0 or high >= self.schema.n:
                raise BatchEncodingError(
                    f"edge endpoints fall outside [0, n={self.schema.n})"
                )
        return batch

    def map_batch(self, batch: ColumnBatch):
        import numpy as np

        k = self.schema.num_buckets
        u, v = batch.column("u"), batch.column("v")
        unique_nodes, inverse = np.unique(np.concatenate((u, v)), return_inverse=True)
        node_buckets = self._buckets_of(unique_nodes)
        bucket_u = node_buckets[inverse[: len(u)]]
        bucket_v = node_buckets[inverse[len(u) :]]
        num_edges = len(u)
        codes = np.empty((num_edges, 2 * k), dtype=np.int64)
        valid = np.empty((num_edges, 2 * k), dtype=bool)
        for other in range(k):
            codes[:, 2 * other] = (
                v * k + np.minimum(bucket_u, other)
            ) * k + np.maximum(bucket_u, other)
            valid[:, 2 * other] = bucket_u != other
            codes[:, 2 * other + 1] = (
                u * k + np.minimum(bucket_v, other)
            ) * k + np.maximum(bucket_v, other)
            valid[:, 2 * other + 1] = bucket_v != other
        mask = valid.ravel()
        row_indices = np.repeat(np.arange(num_edges, dtype=np.int64), 2 * k)
        return codes.ravel()[mask], row_indices[mask], batch

    def key_of_code(self, code: int) -> ReducerId:
        k = self.schema.num_buckets
        code = int(code)
        return (code // (k * k), frozenset(((code // k) % k, code % k)))

    def reduce_group(self, key: ReducerId, code: int, values: ColumnBatch):
        import numpy as np

        k = self.schema.num_buckets
        middle = code // (k * k)
        bucket_i, bucket_j = (code // k) % k, code % k
        u, v = values.column("u"), values.column("v")
        # if a == middle take b; elif b == middle take a — same rule as the
        # scalar reducer's neighbour collection.
        incident = (u == middle) | (v == middle)
        neighbours = np.unique(np.where(u == middle, v, u)[incident])
        if len(neighbours) < 2:
            return []
        left, right = np.triu_indices(len(neighbours), k=1)
        bucket_left = self._buckets_of(neighbours)[left]
        bucket_right = self._buckets_of(neighbours)[right]
        same = bucket_left == bucket_right
        alternate = (bucket_left + 1) % k
        pair_low = np.where(
            same,
            np.minimum(bucket_left, alternate),
            np.minimum(bucket_left, bucket_right),
        )
        pair_high = np.where(
            same,
            np.maximum(bucket_left, alternate),
            np.maximum(bucket_left, bucket_right),
        )
        keep = (pair_low == bucket_i) & (pair_high == bucket_j)
        first = neighbours[left[keep]].tolist()
        second = neighbours[right[keep]].tolist()
        return [(v_node, middle, w_node) for v_node, w_node in zip(first, second)]
