"""The 2-path schema of Section 5.4.2.

Nodes are hashed into ``k`` buckets.  Reducers are pairs ``[u, {i, j}]`` of a
middle node ``u`` and an unordered pair of bucket indices ``{i, j}`` with
``i != j``.  An edge ``(a, b)`` is sent to the ``2(k-1)`` reducers
``[b, {h(a), *}]`` and ``[a, {*, h(b)}]``, so the replication rate is
``2(k-1)``.  Each reducer receives roughly ``q = 2n/k`` edges, and the lower
bound ``2n/q = k`` is therefore within a factor of two of this construction.

The emission rule of the paper guarantees each 2-path is produced exactly
once: reducer ``[u, {i, j}]`` emits ``v-u-w`` if the endpoint buckets are
``{i, j}``, or if both endpoints hash to ``i`` and ``j = i + 1 (mod k)``.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterator, List, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import stable_hash
from repro.problems.subgraphs import TwoPathProblem

Edge = Tuple[int, int]
ReducerId = Tuple[int, FrozenSet[int]]


class TwoPathSchema(SchemaFamily):
    """Middle-node / bucket-pair schema for finding all paths of length two.

    Parameters
    ----------
    n:
        Number of nodes in the data-graph domain.
    num_buckets:
        The hash-bucket count ``k``; must be at least 2 so that bucket pairs
        exist.  ``k`` controls the tradeoff: ``q ≈ 2n/k`` and ``r = 2(k-1)``.
    hash_nodes:
        Hash-based bucketing (True) or contiguous bucketing (False).
    """

    def __init__(self, n: int, num_buckets: int, hash_nodes: bool = False) -> None:
        if n < 3:
            raise ConfigurationError(f"2-path finding needs n >= 3, got {n}")
        if num_buckets < 2 or num_buckets > n:
            raise ConfigurationError(
                f"num_buckets must be in [2, n={n}], got {num_buckets}"
            )
        self.n = n
        self.num_buckets = num_buckets
        self.hash_nodes = hash_nodes
        self.name = f"two-path(n={n}, k={num_buckets})"

    # ------------------------------------------------------------------
    # Bucketing and routing
    # ------------------------------------------------------------------
    def bucket_of(self, node: int) -> int:
        if self.hash_nodes:
            return stable_hash(node) % self.num_buckets
        group_size = math.ceil(self.n / self.num_buckets)
        return min(node // group_size, self.num_buckets - 1)

    def reducers_for(self, edge: Edge) -> Iterator[ReducerId]:
        """The ``2(k-1)`` reducers an edge (a, b) is sent to."""
        a, b = edge
        bucket_a, bucket_b = self.bucket_of(a), self.bucket_of(b)
        for other in range(self.num_buckets):
            if other != bucket_a:
                yield (b, frozenset((bucket_a, other)))
            if other != bucket_b:
                yield (a, frozenset((bucket_b, other)))

    def emitting_reducer(self, v: int, u: int, w: int) -> ReducerId:
        """The reducer designated to emit the 2-path ``v - u - w``."""
        bucket_v, bucket_w = self.bucket_of(v), self.bucket_of(w)
        if bucket_v != bucket_w:
            return (u, frozenset((bucket_v, bucket_w)))
        neighbour = (bucket_v + 1) % self.num_buckets
        return (u, frozenset((bucket_v, neighbour)))

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, TwoPathProblem):
            raise ConfigurationError("TwoPathSchema serves TwoPathProblem instances")
        if problem.n != self.n:
            raise ConfigurationError(
                f"schema built for n={self.n} cannot serve a problem with n={problem.n}"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for edge in problem.inputs():
            for reducer_id in self.reducers_for(edge):
                schema.assign_one(reducer_id, edge)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """Each edge reaches exactly ``2(k-1)`` reducers."""
        return 2.0 * (self.num_buckets - 1)

    def max_reducer_size_formula(self) -> float:
        """Approximately ``2n/k`` edges per reducer (Section 5.4.2)."""
        return 2.0 * self.n / self.num_buckets

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Job emitting every present 2-path exactly once."""
        schema = self

        def mapper(edge: Edge):
            for reducer_id in schema.reducers_for(edge):
                yield (reducer_id, edge)

        def reducer(reducer_id: ReducerId, edges: List[Edge]):
            middle, _buckets = reducer_id
            neighbours = set()
            for a, b in set(edges):
                if a == middle:
                    neighbours.add(b)
                elif b == middle:
                    neighbours.add(a)
            ordered = sorted(neighbours)
            for index, v in enumerate(ordered):
                for w in ordered[index + 1 :]:
                    if schema.emitting_reducer(v, middle, w) == reducer_id:
                        yield (v, middle, w)

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name)

    @classmethod
    def for_reducer_size(cls, n: int, q: float, hash_nodes: bool = False) -> "TwoPathSchema":
        """Pick ``k`` so that reducers receive about ``q`` edges (``k = 2n/q``)."""
        if q <= 0:
            raise ConfigurationError("q must be positive")
        k = max(2, math.ceil(2.0 * n / q))
        return cls(n, min(k, n), hash_nodes=hash_nodes)
