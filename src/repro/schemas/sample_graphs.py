"""Partition-based schema for finding arbitrary sample graphs (Section 5).

This generalizes the triangle construction of Section 4 to any fixed sample
graph ``S`` with ``s`` nodes, in the style of the multiway-join / subgraph
enumeration algorithms of [2] (Afrati, Fotakis, Ullman): hash the data-graph
nodes into ``k`` buckets and create one reducer for every multiset of ``s``
bucket indices.  An edge is sent to every reducer whose multiset contains
the buckets of both endpoints (with multiplicity when they collide), so a
reducer holds all edges among at most ``s`` buckets and can enumerate every
instance of ``S`` whose nodes fall inside them.

Replication rate: an edge occupies 2 slots of the multiset (or 1..2 when the
endpoints share a bucket); the remaining ``s - 2`` slots range over multisets
of the ``k`` buckets, so the replication rate is ``C(k + s - 3, s - 2)``
≈ ``k^{s-2}/(s-2)!`` — the ``(n/√q)^{s-2}`` shape of Section 5.2 once
``q ≈ C(s·n/k, 2)`` is inverted.
"""

from __future__ import annotations

import bisect
import itertools
import math
from typing import Dict, FrozenSet, Iterator, List, Mapping, Sequence, Tuple

import networkx as nx

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import stable_hash
from repro.problems.subgraphs import SampleGraph, SampleGraphProblem

Edge = Tuple[int, int]
BucketMultiset = Tuple[int, ...]


class PartitionSampleGraphSchema(SchemaFamily):
    """Bucket-multiset schema finding all instances of a fixed sample graph.

    Parameters
    ----------
    n:
        Number of nodes in the data-graph domain.
    sample:
        The sample graph to search for (triangle, cycle, clique, ...).
    num_buckets:
        The number of node buckets ``k``.
    hash_nodes:
        Hash-based bucketing (True) or contiguous bucketing (False).
    boundaries:
        Optional non-uniform contiguous bucketing: ``k - 1`` non-decreasing
        interior cut points, bucket ``i`` covering nodes in
        ``[boundaries[i-1], boundaries[i])``.  Mutually exclusive with
        ``hash_nodes``; built by :func:`degree_balanced_boundaries` to
        equalize an instance's endpoint mass per bucket.
    """

    def __init__(
        self,
        n: int,
        sample: SampleGraph,
        num_buckets: int,
        hash_nodes: bool = False,
        boundaries: Sequence[int] | None = None,
    ) -> None:
        if n < sample.num_nodes:
            raise ConfigurationError(
                f"the data graph needs at least {sample.num_nodes} nodes, got {n}"
            )
        if num_buckets < 1 or num_buckets > n:
            raise ConfigurationError(
                f"num_buckets must be in [1, n={n}], got {num_buckets}"
            )
        if boundaries is not None:
            if hash_nodes:
                raise ConfigurationError(
                    "boundaries define a contiguous bucketing; they cannot be "
                    "combined with hash_nodes"
                )
            boundaries = tuple(int(cut) for cut in boundaries)
            if len(boundaries) != num_buckets - 1:
                raise ConfigurationError(
                    f"a {num_buckets}-bucket schema needs {num_buckets - 1} "
                    f"cut points, got {len(boundaries)}"
                )
            if any(b < a for a, b in zip(boundaries, boundaries[1:])) or any(
                cut < 0 or cut > n for cut in boundaries
            ):
                raise ConfigurationError(
                    f"cut points must be non-decreasing within [0, n={n}], "
                    f"got {boundaries}"
                )
        self.n = n
        self.sample = sample
        self.num_buckets = num_buckets
        self.hash_nodes = hash_nodes
        self.boundaries = boundaries
        suffix = ", balanced" if boundaries is not None else ""
        self.name = f"partition-{sample.name}(n={n}, k={num_buckets}{suffix})"

    # ------------------------------------------------------------------
    # Bucketing and routing
    # ------------------------------------------------------------------
    def bucket_of(self, node: int) -> int:
        if self.boundaries is not None:
            return bisect.bisect_right(self.boundaries, node)
        if self.hash_nodes:
            return stable_hash(node) % self.num_buckets
        group_size = math.ceil(self.n / self.num_buckets)
        return min(node // group_size, self.num_buckets - 1)

    def reducers_for(self, edge: Edge) -> Iterator[BucketMultiset]:
        """All size-``s`` bucket multisets containing both endpoint buckets."""
        u, v = edge
        base = sorted((self.bucket_of(u), self.bucket_of(v)))
        slots = self.sample.num_nodes - 2
        seen = set()
        for extra in itertools.combinations_with_replacement(range(self.num_buckets), slots):
            multiset = tuple(sorted(base + list(extra)))
            if multiset not in seen:
                seen.add(multiset)
                yield multiset

    def instance_reducer(self, nodes: Sequence[int]) -> BucketMultiset:
        """The unique reducer designated to emit an instance on ``nodes``."""
        return tuple(sorted(self.bucket_of(node) for node in nodes))

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, SampleGraphProblem):
            raise ConfigurationError(
                "PartitionSampleGraphSchema serves SampleGraphProblem instances"
            )
        if problem.n != self.n or problem.sample.name != self.sample.name:
            raise ConfigurationError(
                "schema and problem were built for different parameters"
            )
        schema = MappingSchema(problem, q=None, name=self.name)
        for edge in problem.inputs():
            for reducer_id in self.reducers_for(edge):
                schema.assign_one(reducer_id, edge)
        schema.q = schema.max_reducer_size()
        return schema

    def replication_rate_formula(self) -> float:
        """``C(k + s - 3, s - 2)``: multisets of size s-2 over k buckets.

        This counts the reducers an edge with two *distinct* endpoint buckets
        reaches; edges whose endpoints share a bucket reach slightly more
        (their multiset has a free slot more ways to coincide), so the exact
        average is marginally above this for contiguous bucketing.  The
        asymptotic shape is ``k^{s-2}/(s-2)!``.
        """
        s = self.sample.num_nodes
        return float(math.comb(self.num_buckets + s - 3, s - 2))

    def max_reducer_size_formula(self) -> float:
        """Edges among ``s`` buckets of ``n/k`` nodes each: ``C(s·n/k, 2)``.

        With explicit ``boundaries`` the widest bucket replaces ``n/k`` —
        the full-domain worst case of a non-uniform bucketing; the
        instance-specific certificate comes from
        :func:`repro.planner.certify.certify_sample_graph_load` instead.
        """
        if self.boundaries is not None:
            edges = (0,) + self.boundaries + (self.n,)
            widest = max(b - a for a, b in zip(edges, edges[1:]))
            nodes = min(self.n, self.sample.num_nodes * widest)
        else:
            nodes = self.sample.num_nodes * self.n / self.num_buckets
        return nodes * (nodes - 1) / 2.0

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Job enumerating every instance of the sample graph exactly once.

        Each reducer builds the subgraph induced by its edges and runs a
        subgraph-isomorphism search (networkx GraphMatcher) for the sample
        graph; an instance is emitted only at the reducer matching its node
        buckets, as a frozenset of its data edges.
        """
        schema = self
        pattern = self.sample.to_networkx()

        def mapper(edge: Edge):
            for reducer_id in schema.reducers_for(edge):
                yield (reducer_id, edge)

        def reducer(reducer_id: BucketMultiset, edges: List[Edge]):
            graph = nx.Graph()
            graph.add_edges_from(set(edges))
            matcher = nx.algorithms.isomorphism.GraphMatcher(graph, pattern)
            emitted = set()
            for mapping in matcher.subgraph_monomorphisms_iter():
                # mapping: data node -> pattern node; invert to place edges.
                inverse = {pattern_node: data_node for data_node, pattern_node in mapping.items()}
                instance_nodes = tuple(sorted(inverse.values()))
                instance = frozenset(
                    tuple(sorted((inverse[a], inverse[b]))) for a, b in pattern.edges
                )
                if instance in emitted:
                    continue
                if schema.instance_reducer(instance_nodes) == reducer_id:
                    emitted.add(instance)
                    yield instance

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name)


def degree_balanced_boundaries(
    degrees: Mapping[int, int], n: int, num_buckets: int
) -> Tuple[int, ...]:
    """Contiguous cut points that equalize endpoint mass across buckets.

    ``degrees`` maps nodes to their endpoint counts (as collected by
    :func:`repro.stats.profile.profile_graph`); nodes absent from the map
    weigh nothing.  Returns ``num_buckets - 1`` non-decreasing interior cut
    points for :class:`PartitionSampleGraphSchema`; trailing buckets may be
    empty when the mass is concentrated at high node ids.
    """
    if num_buckets < 1 or num_buckets > n:
        raise ConfigurationError(
            f"num_buckets must be in [1, n={n}], got {num_buckets}"
        )
    total = sum(degrees.values())
    cuts: List[int] = []
    accumulated = 0
    for node in range(n):
        if len(cuts) == num_buckets - 1:
            break
        accumulated += degrees.get(node, 0)
        if accumulated * num_buckets >= total * (len(cuts) + 1):
            cuts.append(node + 1)
    while len(cuts) < num_buckets - 1:
        cuts.append(min((cuts[-1] if cuts else 0) + 1, n))
    return tuple(cuts)


def enumerate_sample_graph_oracle(
    edges: Sequence[Edge], sample: SampleGraph
) -> FrozenSet[FrozenSet[Edge]]:
    """Serial oracle: all instances of ``sample`` in the given edge set.

    Instances are reported as frozensets of data edges, matching the output
    convention of :class:`PartitionSampleGraphSchema` and
    :class:`~repro.problems.subgraphs.SampleGraphProblem`.
    """
    graph = nx.Graph()
    graph.add_edges_from(set(edges))
    pattern = sample.to_networkx()
    matcher = nx.algorithms.isomorphism.GraphMatcher(graph, pattern)
    instances = set()
    for mapping in matcher.subgraph_monomorphisms_iter():
        inverse = {pattern_node: data_node for data_node, pattern_node in mapping.items()}
        instance = frozenset(
            tuple(sorted((inverse[a], inverse[b]))) for a, b in pattern.edges
        )
        instances.add(instance)
    return frozenset(instances)
