"""Constructive mapping schemas: the paper's upper-bound algorithms.

Every schema family can (a) build an explicit, verifiable mapping schema for
small domains, (b) report its closed-form replication rate and reducer size
for arbitrary parameters, and (c) produce an executable map-reduce job for
the simulated engine.
"""

from repro.schemas.hamming_distance_d import BallTwoSchema, SegmentDeletionSchema
from repro.schemas.hamming_splitting import (
    PairReducersSchema,
    SingleReducerSchema,
    SplittingSchema,
    splitting_points,
)
from repro.schemas.hamming_weight import HypercubeWeightSchema, WeightPartitionSchema
from repro.schemas.join_shares import (
    SharesSchema,
    SkewAwareSharesSchema,
    chain_join_replication_upper_bound,
    chain_join_shares,
    star_join_replication_lower_bound,
    star_join_replication_upper_bound,
    star_join_shares,
)
from repro.schemas.matmul_one_phase import OnePhaseTilingSchema
from repro.schemas.sample_graphs import (
    PartitionSampleGraphSchema,
    degree_balanced_boundaries,
    enumerate_sample_graph_oracle,
)
from repro.schemas.matmul_two_phase import (
    TwoPhaseMatMulAlgorithm,
    communication_crossover_q,
    one_phase_total_communication,
    two_phase_total_communication,
)
from repro.schemas.triangles import PartitionTriangleSchema
from repro.schemas.two_paths import TwoPathSchema

__all__ = [
    "BallTwoSchema",
    "HypercubeWeightSchema",
    "OnePhaseTilingSchema",
    "PairReducersSchema",
    "PartitionSampleGraphSchema",
    "PartitionTriangleSchema",
    "SegmentDeletionSchema",
    "SharesSchema",
    "SingleReducerSchema",
    "SkewAwareSharesSchema",
    "SplittingSchema",
    "TwoPathSchema",
    "TwoPhaseMatMulAlgorithm",
    "WeightPartitionSchema",
    "chain_join_replication_upper_bound",
    "chain_join_shares",
    "communication_crossover_q",
    "degree_balanced_boundaries",
    "enumerate_sample_graph_oracle",
    "one_phase_total_communication",
    "splitting_points",
    "star_join_replication_lower_bound",
    "star_join_replication_upper_bound",
    "star_join_shares",
    "two_phase_total_communication",
]
