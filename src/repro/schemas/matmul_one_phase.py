"""One-round matrix multiplication by output tiling (Section 6.2).

Let ``s`` divide ``n``.  Partition the rows of R into ``n/s`` groups of
``s`` rows and the columns of S into ``n/s`` groups of ``s`` columns.  One
reducer exists per (row group, column group) pair; it receives the ``2sn``
elements of its rows and columns and produces the ``s²`` product elements of
its output tile.  Every input element is needed by the ``n/s`` reducers
pairing its group with each opposite-side group, so the replication rate is
``n/s = 2n²/q`` — exactly the Section 6.1 lower bound.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import MapReduceJob
from repro.problems.matmul import MatrixMultiplicationProblem

ElementRecord = Tuple[str, int, int, float]
TileId = Tuple[int, int]


class OnePhaseTilingSchema(SchemaFamily):
    """Square output tiling with group size ``s`` (rows of R / columns of S).

    Parameters
    ----------
    n:
        Matrix dimension; ``group_size`` must divide it.
    group_size:
        The parameter ``s``; reducer size is ``q = 2sn`` and replication rate
        ``n/s``.
    """

    def __init__(self, n: int, group_size: int) -> None:
        if n <= 0:
            raise ConfigurationError(f"matrix dimension must be positive, got {n}")
        if group_size <= 0 or n % group_size != 0:
            raise ConfigurationError(
                f"group_size={group_size} must be positive and divide n={n}"
            )
        self.n = n
        self.group_size = group_size
        self.num_groups = n // group_size
        self.name = f"one-phase-tiling(n={n}, s={group_size})"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def row_group(self, i: int) -> int:
        return i // self.group_size

    def column_group(self, k: int) -> int:
        return k // self.group_size

    def reducers_for_element(self, matrix: str, i: int, j: int) -> Iterator[TileId]:
        """Reducers (tiles) needing element ``(i, j)`` of matrix R or S."""
        if matrix == "R":
            row = self.row_group(i)
            for column in range(self.num_groups):
                yield (row, column)
        elif matrix == "S":
            column = self.column_group(j)
            for row in range(self.num_groups):
                yield (row, column)
        else:
            raise ConfigurationError(f"unknown matrix tag {matrix!r}; expected 'R' or 'S'")

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, MatrixMultiplicationProblem):
            raise ConfigurationError(
                "OnePhaseTilingSchema serves MatrixMultiplicationProblem instances"
            )
        if problem.n != self.n:
            raise ConfigurationError(
                f"schema built for n={self.n} cannot serve a problem with n={problem.n}"
            )
        schema = MappingSchema(problem, q=int(self.max_reducer_size_formula()), name=self.name)
        for input_id in problem.inputs():
            matrix, i, j = input_id
            for tile in self.reducers_for_element(matrix, i, j):
                schema.assign_one(tile, input_id)
        return schema

    def replication_rate_formula(self) -> float:
        """``r = n / s = 2n² / q`` — matches the lower bound exactly."""
        return float(self.num_groups)

    def max_reducer_size_formula(self) -> float:
        """``q = 2sn``: s full rows of R plus s full columns of S."""
        return 2.0 * self.group_size * self.n

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Job computing the product from element records.

        Input records are ``("R", i, j, value)`` / ``("S", j, k, value)``;
        output records are ``(i, k, value)`` with each product element
        produced by exactly one reducer (its tile).
        """
        schema = self

        def mapper(record: ElementRecord):
            matrix, i, j, value = record
            for tile in schema.reducers_for_element(matrix, i, j):
                yield (tile, record)

        def reducer(tile: TileId, records: List[ElementRecord]):
            row_elements: dict[Tuple[int, int], float] = {}
            column_elements: dict[Tuple[int, int], float] = {}
            for matrix, i, j, value in records:
                if matrix == "R":
                    row_elements[(i, j)] = value
                else:
                    column_elements[(i, j)] = value
            row_start = tile[0] * schema.group_size
            column_start = tile[1] * schema.group_size
            for i in range(row_start, row_start + schema.group_size):
                for k in range(column_start, column_start + schema.group_size):
                    total = 0.0
                    for j in range(schema.n):
                        left = row_elements.get((i, j))
                        right = column_elements.get((j, k))
                        if left is not None and right is not None:
                            total += left * right
                    yield (i, k, total)

        return MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            name=self.name,
            reducer_capacity=int(self.max_reducer_size_formula()),
        )

    # ------------------------------------------------------------------
    # Sizing helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_reducer_size(cls, n: int, q: float) -> "OnePhaseTilingSchema":
        """The largest tiling that fits reducers of ``q`` inputs (``s = q/2n``).

        Requires ``q >= 2n`` (below that no reducer can produce any output,
        as Section 6.2 notes) and rounds ``s`` down to a divisor of ``n``.
        """
        if q < 2 * n:
            raise ConfigurationError(
                f"one-round matrix multiplication needs q >= 2n = {2 * n}, got {q}"
            )
        target = min(n, int(q // (2 * n)))
        for s in range(target, 0, -1):
            if n % s == 0:
                return cls(n, s)
        return cls(n, 1)

    def total_communication(self) -> float:
        """Total shuffled elements ``r · |I| = (n/s) · 2n²`` (Section 6.3's 4n⁴/q)."""
        return self.replication_rate_formula() * 2.0 * self.n * self.n
