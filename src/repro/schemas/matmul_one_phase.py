"""One-round matrix multiplication by output tiling (Section 6.2).

Let ``s`` divide ``n``.  Partition the rows of R into ``n/s`` groups of
``s`` rows and the columns of S into ``n/s`` groups of ``s`` columns.  One
reducer exists per (row group, column group) pair; it receives the ``2sn``
elements of its rows and columns and produces the ``s²`` product elements of
its output tile.  Every input element is needed by the ``n/s`` reducers
pairing its group with each opposite-side group, so the replication rate is
``n/s = 2n²/q`` — exactly the Section 6.1 lower bound.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.columnar import BatchEncodingError, BatchKernel, ColumnBatch
from repro.mapreduce.job import MapReduceJob
from repro.problems.matmul import MatrixMultiplicationProblem

ElementRecord = Tuple[str, int, int, float]
TileId = Tuple[int, int]

_MATRIX_TAGS = {"R": 0, "S": 1}


def encode_element_records(records, n: int) -> ColumnBatch:
    """Pack element records into (tag, i, j, value) columns, or decline.

    Shared by the matrix-multiplication kernels.  Values must be plain
    Python floats (as :func:`repro.datagen.matrix_to_records` produces):
    coercing ints or decimals to float64 silently would let the decoded
    records drift from the originals and break bit identity.
    """
    import numpy as np

    tags: List[int] = []
    row_ids: List[int] = []
    column_ids: List[int] = []
    values: List[float] = []
    try:
        for matrix, i, j, value in records:
            tags.append(_MATRIX_TAGS[matrix])
            if (
                type(i) is not int
                or type(j) is not int
                or type(value) is not float
            ):
                raise BatchEncodingError(
                    "element records must carry plain int indices and a "
                    "plain float value"
                )
            row_ids.append(i)
            column_ids.append(j)
            values.append(value)
    except (KeyError, TypeError, ValueError) as error:
        raise BatchEncodingError(f"records are not element records: {error}")
    index_low = min(min(row_ids, default=0), min(column_ids, default=0))
    index_high = max(max(row_ids, default=0), max(column_ids, default=0))
    if index_low < 0 or index_high >= n:
        raise BatchEncodingError(f"element indices fall outside [0, n={n})")
    return ColumnBatch(
        {
            "m": np.asarray(tags, dtype=np.int64),
            "i": np.asarray(row_ids, dtype=np.int64),
            "j": np.asarray(column_ids, dtype=np.int64),
            "val": np.asarray(values, dtype=np.float64),
        }
    )


def decode_element_records(values: ColumnBatch) -> List[ElementRecord]:
    """Inverse of :func:`encode_element_records` (bit-identical records)."""
    return [
        ("R" if tag == 0 else "S", i, j, value)
        for tag, i, j, value in zip(
            values.column("m").tolist(),
            values.column("i").tolist(),
            values.column("j").tolist(),
            values.column("val").tolist(),
        )
    ]


def accumulate_tile(tags, row_ids, column_ids, values, row_range, column_range, middle_range):
    """Per-tile products summed in the scalar reducers' exact order.

    Builds dense (rows × middles) / (middles × columns) operand blocks with
    presence masks, then accumulates ``j`` strictly in ascending order:
    IEEE addition order is part of the bit-identity contract, so a single
    ``matmul`` (pairwise summation, different rounding) is off the table.
    Missing pairs contribute an exact ``+0.0``, which is a bitwise no-op on
    every total this accumulation can produce.  Returns ``(totals,
    contributed)`` dense tiles.
    """
    import numpy as np

    row_start, row_stop = row_range
    column_start, column_stop = column_range
    middle_start, middle_stop = middle_range
    rows = row_stop - row_start
    columns = column_stop - column_start
    middles = middle_stop - middle_start
    left = np.zeros((rows, middles))
    left_present = np.zeros((rows, middles), dtype=bool)
    right = np.zeros((middles, columns))
    right_present = np.zeros((middles, columns), dtype=bool)
    is_left = tags == 0
    # Duplicate (i, j) records overwrite in arrival order, matching the
    # scalar reducers' dict construction.
    left[row_ids[is_left] - row_start, column_ids[is_left] - middle_start] = values[
        is_left
    ]
    left_present[
        row_ids[is_left] - row_start, column_ids[is_left] - middle_start
    ] = True
    is_right = ~is_left
    right[row_ids[is_right] - middle_start, column_ids[is_right] - column_start] = (
        values[is_right]
    )
    right_present[
        row_ids[is_right] - middle_start, column_ids[is_right] - column_start
    ] = True
    totals = np.zeros((rows, columns))
    contributed = np.zeros((rows, columns), dtype=bool)
    for middle in range(middles):
        both = left_present[:, middle][:, None] & right_present[middle, :][None, :]
        product = left[:, middle][:, None] * right[middle, :][None, :]
        totals += np.where(both, product, 0.0)
        contributed |= both
    return totals, contributed


class OnePhaseTilingSchema(SchemaFamily):
    """Square output tiling with group size ``s`` (rows of R / columns of S).

    Parameters
    ----------
    n:
        Matrix dimension; ``group_size`` must divide it.
    group_size:
        The parameter ``s``; reducer size is ``q = 2sn`` and replication rate
        ``n/s``.
    """

    def __init__(self, n: int, group_size: int) -> None:
        if n <= 0:
            raise ConfigurationError(f"matrix dimension must be positive, got {n}")
        if group_size <= 0 or n % group_size != 0:
            raise ConfigurationError(
                f"group_size={group_size} must be positive and divide n={n}"
            )
        self.n = n
        self.group_size = group_size
        self.num_groups = n // group_size
        self.name = f"one-phase-tiling(n={n}, s={group_size})"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def row_group(self, i: int) -> int:
        return i // self.group_size

    def column_group(self, k: int) -> int:
        return k // self.group_size

    def reducers_for_element(self, matrix: str, i: int, j: int) -> Iterator[TileId]:
        """Reducers (tiles) needing element ``(i, j)`` of matrix R or S."""
        if matrix == "R":
            row = self.row_group(i)
            for column in range(self.num_groups):
                yield (row, column)
        elif matrix == "S":
            column = self.column_group(j)
            for row in range(self.num_groups):
                yield (row, column)
        else:
            raise ConfigurationError(f"unknown matrix tag {matrix!r}; expected 'R' or 'S'")

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        if not isinstance(problem, MatrixMultiplicationProblem):
            raise ConfigurationError(
                "OnePhaseTilingSchema serves MatrixMultiplicationProblem instances"
            )
        if problem.n != self.n:
            raise ConfigurationError(
                f"schema built for n={self.n} cannot serve a problem with n={problem.n}"
            )
        schema = MappingSchema(problem, q=int(self.max_reducer_size_formula()), name=self.name)
        for input_id in problem.inputs():
            matrix, i, j = input_id
            for tile in self.reducers_for_element(matrix, i, j):
                schema.assign_one(tile, input_id)
        return schema

    def replication_rate_formula(self) -> float:
        """``r = n / s = 2n² / q`` — matches the lower bound exactly."""
        return float(self.num_groups)

    def max_reducer_size_formula(self) -> float:
        """``q = 2sn``: s full rows of R plus s full columns of S."""
        return 2.0 * self.group_size * self.n

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Job computing the product from element records.

        Input records are ``("R", i, j, value)`` / ``("S", j, k, value)``;
        output records are ``(i, k, value)`` with each product element
        produced by exactly one reducer (its tile).
        """
        schema = self

        def mapper(record: ElementRecord):
            matrix, i, j, value = record
            for tile in schema.reducers_for_element(matrix, i, j):
                yield (tile, record)

        def reducer(tile: TileId, records: List[ElementRecord]):
            row_elements: dict[Tuple[int, int], float] = {}
            column_elements: dict[Tuple[int, int], float] = {}
            for matrix, i, j, value in records:
                if matrix == "R":
                    row_elements[(i, j)] = value
                else:
                    column_elements[(i, j)] = value
            row_start = tile[0] * schema.group_size
            column_start = tile[1] * schema.group_size
            for i in range(row_start, row_start + schema.group_size):
                for k in range(column_start, column_start + schema.group_size):
                    total = 0.0
                    for j in range(schema.n):
                        left = row_elements.get((i, j))
                        right = column_elements.get((j, k))
                        if left is not None and right is not None:
                            total += left * right
                    yield (i, k, total)

        return MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            name=self.name,
            reducer_capacity=int(self.max_reducer_size_formula()),
            batch_kernel=OnePhaseTilingBatchKernel(self),
        )

    # ------------------------------------------------------------------
    # Sizing helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_reducer_size(cls, n: int, q: float) -> "OnePhaseTilingSchema":
        """The largest tiling that fits reducers of ``q`` inputs (``s = q/2n``).

        Requires ``q >= 2n`` (below that no reducer can produce any output,
        as Section 6.2 notes) and rounds ``s`` down to a divisor of ``n``.
        """
        if q < 2 * n:
            raise ConfigurationError(
                f"one-round matrix multiplication needs q >= 2n = {2 * n}, got {q}"
            )
        target = min(n, int(q // (2 * n)))
        for s in range(target, 0, -1):
            if n % s == 0:
                return cls(n, s)
        return cls(n, 1)

    def total_communication(self) -> float:
        """Total shuffled elements ``r · |I| = (n/s) · 2n²`` (Section 6.3's 4n⁴/q)."""
        return self.replication_rate_formula() * 2.0 * self.n * self.n


class OnePhaseTilingBatchKernel(BatchKernel):
    """Vectorized twin of :meth:`OnePhaseTilingSchema.job`.

    Tiles ``(row, column)`` become the code ``row · (n/s) + column``.  An R
    element fans out along a tile row (ascending column group), an S element
    down a tile column (ascending row group) — the same order as the scalar
    mapper.  The per-tile reduce accumulates products middle-index by
    middle-index (see :func:`accumulate_tile`) so float totals are
    bit-identical to the scalar reducer's sequential sums.
    """

    def __init__(self, schema: OnePhaseTilingSchema) -> None:
        self.schema = schema

    def encode(self, records) -> ColumnBatch:
        return encode_element_records(records, self.schema.n)

    def decode_records(self, values: ColumnBatch) -> List[ElementRecord]:
        return decode_element_records(values)

    def map_batch(self, batch: ColumnBatch):
        import numpy as np

        schema = self.schema
        groups = schema.num_groups
        size = schema.group_size
        tags = batch.column("m")
        anchor = np.where(
            tags == 0,
            (batch.column("i") // size) * groups,
            batch.column("j") // size,
        )
        step = np.where(tags == 0, 1, groups)
        codes = (
            anchor[:, None] + step[:, None] * np.arange(groups, dtype=np.int64)[None, :]
        )
        row_indices = np.repeat(np.arange(len(tags), dtype=np.int64), groups)
        return codes.ravel(), row_indices, batch

    def key_of_code(self, code: int) -> TileId:
        code = int(code)
        return (code // self.schema.num_groups, code % self.schema.num_groups)

    def reduce_group(self, key: TileId, code: int, values: ColumnBatch):
        import numpy as np

        schema = self.schema
        size = schema.group_size
        row_start = key[0] * size
        column_start = key[1] * size
        totals, _ = accumulate_tile(
            values.column("m"),
            values.column("i"),
            values.column("j"),
            values.column("val"),
            (row_start, row_start + size),
            (column_start, column_start + size),
            (0, schema.n),
        )
        row_ids = np.repeat(
            np.arange(row_start, row_start + size, dtype=np.int64), size
        )
        column_ids = np.tile(
            np.arange(column_start, column_start + size, dtype=np.int64), size
        )
        return list(
            zip(row_ids.tolist(), column_ids.tolist(), totals.ravel().tolist())
        )
