"""Schemas for Hamming distance 1: the Splitting algorithm and the extremes.

Section 3.3 describes three constructions that meet the ``b / log2 q`` lower
bound exactly:

* ``q = 2``: one reducer per potential output pair, replication rate ``b``;
* ``q = 2^b``: a single reducer holding the whole universe, rate 1;
* the Splitting algorithm: for any ``c`` dividing ``b``, split each string
  into ``c`` segments; a reducer corresponds to a (group index, remaining
  bits) pair obtained by deleting one segment.  Reducer size is ``2^{b/c}``
  and the replication rate is exactly ``c = b / log2 q``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Tuple

from repro.core.mapping_schema import MappingSchema, SchemaFamily
from repro.core.problem import Problem
from repro.exceptions import ConfigurationError
from repro.mapreduce.columnar import (
    BatchEncodingError,
    BatchKernel,
    ColumnBatch,
    EncodedRun,
    pairs_within_groups,
    unique_sorted_within_groups,
)
from repro.mapreduce.job import MapReduceJob
from repro.problems.hamming import HammingDistanceProblem


def _encode_words(records, b: int) -> ColumnBatch:
    """Pack bare bit-string ints into a one-column batch, or decline.

    Shared by the Hamming kernels: words must be plain ints inside
    ``[0, 2^b)`` with ``b`` small enough that reducer codes stay exact
    int64 arithmetic.
    """
    import numpy as np

    if b > 62:
        raise BatchEncodingError(f"b={b} exceeds exact int64 code arithmetic")
    if not hasattr(np, "bitwise_count"):  # numpy < 2.0: no popcount ufunc
        raise BatchEncodingError("numpy >= 2.0 is required for popcount kernels")
    try:
        words = np.asarray(records)
    except (ValueError, OverflowError) as error:
        raise BatchEncodingError(f"words are not a uniform int array: {error}")
    if words.ndim != 1 or (len(words) > 0 and words.dtype.kind != "i"):
        raise BatchEncodingError(
            f"expected plain int words, got array of shape {words.shape} "
            f"and dtype {words.dtype}"
        )
    words = words.astype(np.int64, copy=False)
    if len(words) > 0 and (int(words.min()) < 0 or int(words.max()) >= 1 << b):
        raise BatchEncodingError(f"words fall outside [0, 2^{b})")
    return ColumnBatch({"word": words})


def _group_pairs(run: EncodedRun):
    """Per-group ``sorted(set(words))`` and all ``i < j`` pairs of the run.

    Returns ``(group_of_pair, left_words, right_words)`` with pairs laid
    out group-major in the run's order and nested-loop order inside each
    group — the scalar all-pairs reducers' iteration order exactly.
    """
    import numpy as np

    group_ids = np.repeat(np.arange(run.num_groups, dtype=np.int64), run.sizes)
    groups, words = unique_sorted_within_groups(group_ids, run.values.column("word"))
    sizes = np.bincount(groups, minlength=run.num_groups)
    group_of_pair, left, right = pairs_within_groups(sizes)
    starts = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64))
    )
    base = starts[group_of_pair]
    return group_of_pair, words[base + left], words[base + right]


def _single_bit_positions(differences):
    """Bit index of each value of an array of single-bit ints.

    Powers of two up to ``2^62`` are exact in float64, so ``frexp``'s
    exponent recovers the position without a per-element Python loop.
    """
    import numpy as np

    _, exponents = np.frexp(differences.astype(np.float64))
    return exponents.astype(np.int64) - 1


def _check_problem(problem: Problem) -> HammingDistanceProblem:
    if not isinstance(problem, HammingDistanceProblem):
        raise ConfigurationError(
            "Hamming-distance schemas require a HammingDistanceProblem, "
            f"got {type(problem).__name__}"
        )
    if problem.distance != 1:
        raise ConfigurationError(
            "the Splitting schema as implemented targets Hamming distance 1; "
            "use HammingDistanceDSchema for larger distances"
        )
    return problem


class SplittingSchema(SchemaFamily):
    """The Splitting algorithm with ``c`` segments (Section 3.3).

    Parameters
    ----------
    b:
        Bit-string length.
    num_segments:
        The parameter ``c``; must divide ``b``.  ``c = 1`` degenerates to the
        single-reducer schema, ``c = b`` to the one-reducer-per-pair schema.
    """

    def __init__(self, b: int, num_segments: int) -> None:
        if b <= 0:
            raise ConfigurationError(f"b must be positive, got {b}")
        if num_segments <= 0 or b % num_segments != 0:
            raise ConfigurationError(
                f"num_segments={num_segments} must be positive and divide b={b}"
            )
        self.b = b
        self.num_segments = num_segments
        self.segment_length = b // num_segments
        self.name = f"splitting(b={b}, c={num_segments})"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def reducers_for(self, word: int) -> Iterator[Tuple[int, int]]:
        """Yield the ``c`` reducer ids an input string is sent to.

        Reducer ids are ``(group index i, residual bits)`` where the residual
        is the string with its i-th segment deleted.
        """
        for group in range(self.num_segments):
            yield (group, self._delete_segment(word, group))

    def _delete_segment(self, word: int, group: int) -> int:
        """Remove the ``group``-th segment (counting from the most significant)."""
        seg_len = self.segment_length
        total = self.b
        # Bits above the deleted segment (more significant side).
        high_shift = total - group * seg_len
        high = word >> high_shift if group > 0 else 0
        # Bits below the deleted segment (less significant side).
        low_bits = total - (group + 1) * seg_len
        low = word & ((1 << low_bits) - 1) if low_bits > 0 else 0
        return (high << low_bits) | low

    def emitting_group(self, u: int, v: int) -> int:
        """The unique group index at which the pair {u, v} is emitted.

        Strings at distance 1 differ in exactly one segment; the reducer of
        that group covers the pair, and we designate it as the one that
        emits, so every output is produced exactly once.
        """
        difference = u ^ v
        highest = difference.bit_length() - 1
        position_from_left = self.b - 1 - highest
        return position_from_left // self.segment_length

    # ------------------------------------------------------------------
    # SchemaFamily interface
    # ------------------------------------------------------------------
    def build(self, problem: Problem) -> MappingSchema:
        hamming = _check_problem(problem)
        if hamming.b != self.b:
            raise ConfigurationError(
                f"schema built for b={self.b} cannot serve a problem with b={hamming.b}"
            )
        schema = MappingSchema(
            problem, q=int(self.max_reducer_size_formula()), name=self.name
        )
        for word in problem.inputs():
            for reducer_id in self.reducers_for(word):
                schema.assign_one(reducer_id, word)
        return schema

    def replication_rate_formula(self) -> float:
        """Each input is sent to exactly ``c`` reducers."""
        return float(self.num_segments)

    def max_reducer_size_formula(self) -> float:
        """Each reducer receives the ``2^{b/c}`` strings sharing its residual."""
        return float(2 ** self.segment_length)

    # ------------------------------------------------------------------
    # Executable job
    # ------------------------------------------------------------------
    def job(self) -> MapReduceJob:
        """Map-reduce job finding all distance-1 pairs among present inputs.

        The mapper routes each string to its ``c`` reducers; each reducer
        compares the strings it received and emits a pair only if it is that
        pair's designated emitting group, so outputs are produced exactly
        once across the whole job.
        """
        schema = self

        def mapper(word: int):
            for reducer_id in schema.reducers_for(word):
                yield (reducer_id, word)

        def reducer(reducer_id: Tuple[int, int], words: List[int]):
            group, _ = reducer_id
            ordered = sorted(set(words))
            for index, first in enumerate(ordered):
                for second in ordered[index + 1 :]:
                    if (first ^ second).bit_count() != 1:
                        continue
                    if schema.emitting_group(first, second) == group:
                        yield (first, second)

        return MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            name=self.name,
            reducer_capacity=int(self.max_reducer_size_formula()),
            batch_kernel=SplittingBatchKernel(self),
        )


class SplittingBatchKernel(BatchKernel):
    """Vectorized twin of :meth:`SplittingSchema.job`.

    Reducer keys ``(group, residual)`` are encoded as
    ``group * 2^(b - b/c) + residual``.  The reduce runs across all groups
    of a run at once: deduplicate words per group, enumerate the
    nested-loop pairs, keep those at Hamming distance one whose differing
    bit lies in the reducer's own segment.
    """

    def __init__(self, schema: SplittingSchema) -> None:
        self.schema = schema
        self._residual_bits = schema.b - schema.segment_length

    def encode(self, records) -> ColumnBatch:
        return _encode_words(records, self.schema.b)

    def decode_records(self, values: ColumnBatch) -> List[int]:
        return values.column("word").tolist()

    def map_batch(self, batch: ColumnBatch):
        import numpy as np

        schema = self.schema
        words = batch.column("word")
        seg_len, total = schema.segment_length, schema.b
        residual_radix = 1 << self._residual_bits
        codes = np.empty((len(words), schema.num_segments), dtype=np.int64)
        for group in range(schema.num_segments):
            high_shift = total - group * seg_len
            high = words >> high_shift if group > 0 else 0
            low_bits = total - (group + 1) * seg_len
            low = words & ((1 << low_bits) - 1) if low_bits > 0 else 0
            codes[:, group] = group * residual_radix + ((high << low_bits) | low)
        row_indices = np.repeat(
            np.arange(len(words), dtype=np.int64), schema.num_segments
        )
        return codes.ravel(), row_indices, batch

    def key_of_code(self, code: int) -> Tuple[int, int]:
        code = int(code)
        return (code >> self._residual_bits, code % (1 << self._residual_bits))

    def reduce_groups(self, run: EncodedRun) -> List[Tuple[int, int]]:
        import numpy as np

        group_of_pair, left, right = _group_pairs(run)
        if len(left) == 0:
            return []
        difference = left ^ right
        keep = np.bitwise_count(difference) == 1
        key_groups = run.codes >> self._residual_bits
        positions = _single_bit_positions(np.where(keep, difference, 1))
        emitting = (self.schema.b - 1 - positions) // self.schema.segment_length
        keep &= emitting == key_groups[group_of_pair]
        return list(zip(left[keep].tolist(), right[keep].tolist()))


class PairReducersSchema(SchemaFamily):
    """The ``q = 2`` extreme: one reducer per potential distance-1 pair.

    Every string is sent to the ``b`` reducers of the pairs it belongs to, so
    the replication rate is exactly ``b``, matching ``b / log2 2``.
    """

    def __init__(self, b: int) -> None:
        if b <= 0:
            raise ConfigurationError(f"b must be positive, got {b}")
        self.b = b
        self.name = f"pair-reducers(b={b})"

    def reducers_for(self, word: int) -> Iterator[Tuple[int, int]]:
        for position in range(self.b):
            other = word ^ (1 << position)
            yield (min(word, other), max(word, other))

    def build(self, problem: Problem) -> MappingSchema:
        hamming = _check_problem(problem)
        if hamming.b != self.b:
            raise ConfigurationError(
                f"schema built for b={self.b} cannot serve a problem with b={hamming.b}"
            )
        schema = MappingSchema(problem, q=2, name=self.name)
        for word in problem.inputs():
            for reducer_id in self.reducers_for(word):
                schema.assign_one(reducer_id, word)
        return schema

    def replication_rate_formula(self) -> float:
        return float(self.b)

    def max_reducer_size_formula(self) -> float:
        return 2.0

    def job(self) -> MapReduceJob:
        """Executable job: each pair-reducer emits its pair if both arrived."""
        schema = self

        def mapper(word: int):
            for reducer_id in schema.reducers_for(word):
                yield (reducer_id, word)

        def reducer(reducer_id: Tuple[int, int], words: List[int]):
            present = set(words)
            first, second = reducer_id
            if first in present and second in present:
                yield (first, second)

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name, reducer_capacity=2)


class SingleReducerSchema(SchemaFamily):
    """The ``q = 2^b`` extreme: the whole universe at one reducer (r = 1)."""

    def __init__(self, b: int) -> None:
        if b <= 0:
            raise ConfigurationError(f"b must be positive, got {b}")
        self.b = b
        self.name = f"single-reducer(b={b})"

    def build(self, problem: Problem) -> MappingSchema:
        hamming = _check_problem(problem)
        if hamming.b != self.b:
            raise ConfigurationError(
                f"schema built for b={self.b} cannot serve a problem with b={hamming.b}"
            )
        schema = MappingSchema(problem, q=1 << self.b, name=self.name)
        schema.assign("all", problem.inputs())
        return schema

    def replication_rate_formula(self) -> float:
        return 1.0

    def max_reducer_size_formula(self) -> float:
        return float(1 << self.b)

    def job(self) -> MapReduceJob:
        def mapper(word: int):
            yield ("all", word)

        def reducer(_key: str, words: List[int]):
            ordered = sorted(set(words))
            for index, first in enumerate(ordered):
                for second in ordered[index + 1 :]:
                    if (first ^ second).bit_count() == 1:
                        yield (first, second)

        return MapReduceJob(mapper=mapper, reducer=reducer, name=self.name)


def splitting_points(b: int) -> List[Tuple[int, float, float]]:
    """The Fig. 1 dots: (c, log2 q, r) for every c dividing b.

    Returns tuples ``(c, log2 q = b / c, replication rate = c)``; these are
    the known algorithms matching the lower bound on replication rate.
    """
    points = []
    for c in range(1, b + 1):
        if b % c == 0:
            points.append((c, b / c, float(c)))
    return points
