"""Cost-based planning over pluggable schema families.

This subpackage is the selection layer between the model
(:mod:`repro.core`), the constructive algorithms (:mod:`repro.schemas`) and
the execution substrate (:mod:`repro.mapreduce`).  Instead of hand-picking
a schema family and a reducer size, call sites ask the
:class:`CostBasedPlanner` for a ranked list of executable
:class:`ExecutionPlan` objects:

    >>> from repro.planner import CostBasedPlanner
    >>> from repro.problems import TriangleProblem
    >>> plans = CostBasedPlanner.min_replication().plan(TriangleProblem(40), q=200)
    >>> result = plans.best.execute(edges)            # doctest: +SKIP

New problem families plug in by registering a candidate builder on
:data:`default_registry` (see :mod:`repro.planner.registry`); the built-in
builders covering every family of the paper live in
:mod:`repro.planner.builtins` and are loaded with this package.
"""

from repro.planner.cache import CacheStats, SchemaCache, default_schema_cache
from repro.planner.certify import (
    Certification,
    CertificationKind,
    ProfileWeightOracle,
    certify_max_reducer_load,
    certify_sample_graph_load,
    exact_certification,
    expected_certification,
    high_probability_certification,
)
from repro.planner.plan import (
    ExecutionPlan,
    PlanningResult,
    SweepPoint,
    SweepResult,
)
from repro.planner.planner import CostBasedPlanner
from repro.planner.registry import (
    PlanCandidate,
    SchemaRegistry,
    default_registry,
    thin_parameter_sweep,
)
from repro.planner.share_opt import (
    ShareOptimization,
    optimize_shares,
    repair_shares,
)

# Populate the default registry with the paper's schema families.
from repro.planner import builtins as _builtins  # noqa: E402,F401  (side effect)

__all__ = [
    "CacheStats",
    "Certification",
    "CertificationKind",
    "CostBasedPlanner",
    "ExecutionPlan",
    "PlanCandidate",
    "PlanningResult",
    "ProfileWeightOracle",
    "SchemaCache",
    "SchemaRegistry",
    "ShareOptimization",
    "SweepPoint",
    "SweepResult",
    "certify_max_reducer_load",
    "certify_sample_graph_load",
    "default_registry",
    "default_schema_cache",
    "exact_certification",
    "expected_certification",
    "high_probability_certification",
    "optimize_shares",
    "repair_shares",
    "thin_parameter_sweep",
]
