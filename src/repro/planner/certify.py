"""Reducer-size certification: from dataset statistics to trusted budgets.

The paper's Section 5.5 budgets a Shares join candidate by its *expected*
hash-balanced reducer load.  On skewed inputs that expectation says nothing
about the maximum — one heavy join value can blow a single reducer far past
the budget while the average stays tiny — so a cluster that *enforces* its
capacity cannot trust expectation-certified plans.  This module replaces
the expectation with per-bucket tail bounds computed from a
:class:`~repro.stats.profile.DatasetProfile`:

* **exact** — from full per-attribute histograms, the exact weight of every
  hash bucket is known, so ``min`` over a relation's attributes of its
  bucket weights upper-bounds the relation's tuples at a grid point, and
  the sum over relations bounds the reducer's load.  Deterministic.
* **expected** — the paper's original certificate, kept for candidates
  planned without a profile; carried so reports can display what kind of
  promise a plan actually makes.
* **high-probability** — from reservoir samples, bucket weights are
  estimated and inflated by a Hoeffding term; a union bound over every
  consulted cell makes *all* the estimates simultaneously valid with
  probability ``1 - delta``, so the resulting max-load bound holds with at
  least that probability.  Deterministic Misra–Gries upper bounds
  (``counter + N/(k+1)``) are folded in where they are tighter.

Schemas participate through one duck-typed hook,
``reducer_load_bounds(oracle)``, yielding an upper bound per reducer; the
oracle (built here from the profile) answers bucket- and value-weight
queries.  This keeps all statistics math on the planner side — schemas only
know their own grid geometry — mirroring how PostBOUND feeds guaranteed
cardinality bounds into an otherwise statistics-agnostic optimizer.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.core.cost import LoadSummary
from repro.exceptions import BoundDerivationError, ConfigurationError
from repro.mapreduce.partitioner import stable_hash
from repro.stats.profile import AttributeProfile, DatasetProfile

#: Default failure probability for sample-based certificates.
DEFAULT_DELTA = 0.05

#: Above this many distinct bucket subsets, sample-graph certification uses
#: one coarse bound instead of enumerating (mirrors the Shares grid limit).
_SAMPLE_GRAPH_SUBSET_LIMIT = 20_000


class CertificationKind(enum.Enum):
    """How a plan's reducer-size claim is backed."""

    EXACT = "exact"
    EXPECTED = "expected"
    HIGH_PROBABILITY = "high-probability"


@dataclass(frozen=True)
class Certification:
    """One certified upper bound on a candidate's maximum reducer load.

    ``bound`` is the certified value; ``delta`` is the failure probability
    for :attr:`CertificationKind.HIGH_PROBABILITY` bounds (``None``
    otherwise); ``detail`` names the evidence (e.g. which statistics fed
    the bound).  ``load`` optionally carries the certified load summary
    behind the bound — the maximum always, plus the full per-reducer load
    profile when the certifier enumerated one (exact histograms over an
    enumerable grid) — so the cost model can price the ``b·q`` term from
    the certified distribution instead of the scalar bound.
    """

    kind: CertificationKind
    bound: float
    delta: Optional[float] = None
    detail: str = ""
    load: Optional[LoadSummary] = None
    #: The bound-derivation method behind the certificate (e.g.
    #: ``per-bucket-histogram``, ``hoeffding-sample``, ``closed-form``,
    #: ``degree-sequence``, ``expectation``) — surfaced in plan tables next
    #: to the certification kind so a reader can see *why* a plan was
    #: priced the way it was.  Empty when the certifier predates the label.
    method: str = ""

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise ConfigurationError(
                f"certified bound must be non-negative, got {self.bound}"
            )
        if self.kind is CertificationKind.HIGH_PROBABILITY:
            if self.delta is None or not (0.0 < self.delta < 1.0):
                raise ConfigurationError(
                    "high-probability certificates need a delta in (0, 1), "
                    f"got {self.delta}"
                )
        elif self.delta is not None:
            raise ConfigurationError(
                f"{self.kind.value} certificates carry no delta, got {self.delta}"
            )

    @property
    def label(self) -> str:
        """Compact rendering for plan tables: ``exact`` / ``hp(δ=0.05)``."""
        if self.kind is CertificationKind.HIGH_PROBABILITY:
            return f"hp(δ={self.delta:g})"
        return self.kind.value


def exact_certification(
    bound: float,
    detail: str = "",
    load: Optional[LoadSummary] = None,
    method: str = "",
) -> Certification:
    return Certification(
        CertificationKind.EXACT, float(bound), detail=detail, load=load, method=method
    )


def expected_certification(bound: float, detail: str = "") -> Certification:
    return Certification(
        CertificationKind.EXPECTED, float(bound), detail=detail, method="expectation"
    )


def high_probability_certification(
    bound: float,
    delta: float,
    detail: str = "",
    load: Optional[LoadSummary] = None,
    method: str = "",
) -> Certification:
    return Certification(
        CertificationKind.HIGH_PROBABILITY,
        float(bound),
        delta=delta,
        detail=detail,
        load=load,
        method=method,
    )


def attribute_bucket(attribute: str, value: Hashable, share: int) -> int:
    """The hash bucket of a value within an attribute's share.

    Single source of truth shared with
    :meth:`~repro.schemas.join_shares.SharesSchema.bucket_of`: certification
    is only sound if the certifier and the executing schema hash values to
    buckets identically.
    """
    if share <= 1:
        return 0
    return stable_hash((attribute, value)) % share


class ProfileWeightOracle:
    """Answers the weight queries schemas pose while bounding their loads.

    ``bucket_weight`` upper-bounds the number of a relation's rows whose
    value on one attribute falls in one hash bucket; ``value_weight``
    upper-bounds one value's frequency.  Exact-histogram attributes answer
    exactly; sampled attributes answer from the reservoir inflated by the
    per-attribute Hoeffding term in ``epsilons`` (0 during the recording
    pass) and remember every consulted cell in :attr:`sampled_cells` so the
    caller can size the union bound.

    ``bucket_cache`` optionally shares one bucket-weight table across
    *epsilon-free* oracles over the same profile — the share optimizer
    certifies dozens of vectors whose (relation, attribute, share) cells
    recur, and recomputing each from the histograms per oracle is the
    dominant cost.  An oracle carrying epsilons always keeps a private
    cache (its weights are inflation-dependent and must not leak into the
    shared table).
    """

    def __init__(
        self,
        profile: DatasetProfile,
        epsilons: Optional[Dict[Tuple[str, str], float]] = None,
        bucket_cache: Optional[Dict[Tuple, Tuple[float, ...]]] = None,
    ) -> None:
        self.profile = profile
        self.epsilons = epsilons or {}
        self.sampled_cells: set = set()
        if bucket_cache is not None and not self.epsilons:
            self._bucket_cache = bucket_cache
        else:
            self._bucket_cache: Dict[Tuple, Tuple[float, ...]] = {}

    # -- internals ------------------------------------------------------
    def _attribute(self, relation: str, attribute: str) -> AttributeProfile:
        return self.profile.relation(relation).attribute(attribute)

    def _epsilon(self, relation: str, attribute: str) -> float:
        return self.epsilons.get((relation, attribute), 0.0)

    def _bucket_weights(
        self,
        relation: str,
        attribute: str,
        share: int,
        exclude: FrozenSet[Hashable],
    ) -> Tuple[float, ...]:
        key = (relation, attribute, share, exclude)
        stats = self._attribute(relation, attribute)
        # Consulting a sampled cell must be recorded *before* the cache
        # lookup: with a shared bucket cache a later oracle can hit entries
        # it never computed, and an unrecorded cell would shrink the
        # Hoeffding union bound below what this call actually relies on.
        if not stats.exact:
            self.sampled_cells.add(key)
        cached = self._bucket_cache.get(key)
        if cached is not None:
            return cached
        total = float(stats.total_count)
        weights = [0.0] * share
        if stats.exact:
            for value, count in stats.histogram.items():
                if value in exclude:
                    continue
                weights[attribute_bucket(attribute, value, share)] += count
        else:
            m = len(stats.sample)
            if m == 0:
                weights = [total] * share
            else:
                counts = [0] * share
                for value in stats.sample:
                    if value in exclude:
                        continue
                    counts[attribute_bucket(attribute, value, share)] += 1
                epsilon = self._epsilon(relation, attribute)
                weights = [
                    min(total, total * (count / m + epsilon)) for count in counts
                ]
            # Deterministic cap per bucket from the Misra–Gries lower
            # bounds: rows of a tracked value provably hash to that value's
            # bucket (or are excluded), so a bucket's weight never exceeds
            # the total minus the tracked mass that lands elsewhere.  The
            # value-level lower bounds are deterministic, so this tightens
            # even the Hoeffding-inflated weights without touching delta.
            if stats.heavy_hitters:
                tracked_in_bucket = [0.0] * share
                tracked_elsewhere = 0.0
                for value, low in stats.heavy_hitters.items():
                    if value in exclude:
                        tracked_elsewhere += low
                        continue
                    tracked_in_bucket[
                        attribute_bucket(attribute, value, share)
                    ] += low
                tracked_total = tracked_elsewhere + sum(tracked_in_bucket)
                weights = [
                    min(
                        weight,
                        max(0.0, total - (tracked_total - tracked_in_bucket[index])),
                    )
                    for index, weight in enumerate(weights)
                ]
        result = tuple(weights)
        self._bucket_cache[key] = result
        return result

    # -- queries schemas pose ------------------------------------------
    def relation_rows(self, relation: str) -> int:
        return self.profile.relation(relation).total_rows

    def bucket_weight(
        self,
        relation: str,
        attribute: str,
        share: int,
        bucket: int,
        exclude: FrozenSet[Hashable] = frozenset(),
    ) -> float:
        return self._bucket_weights(relation, attribute, share, exclude)[bucket]

    def max_bucket_weight(
        self,
        relation: str,
        attribute: str,
        share: int,
        exclude: FrozenSet[Hashable] = frozenset(),
    ) -> float:
        return max(self._bucket_weights(relation, attribute, share, exclude))

    def value_weight(self, relation: str, attribute: str, value: Hashable) -> float:
        stats = self._attribute(relation, attribute)
        if stats.exact:
            return float(stats.histogram.get(value, 0))
        # Deterministic Misra-Gries upper bound, tightened by the sample
        # estimate when one exists.
        bound = float(stats.frequency_upper_bound(value))
        m = len(stats.sample)
        if m > 0:
            self.sampled_cells.add((relation, attribute, "value", value))
            fraction = sum(1 for item in stats.sample if item == value) / m
            epsilon = self._epsilon(relation, attribute)
            bound = min(bound, stats.total_count * (fraction + epsilon))
        return min(bound, float(stats.total_count))


def certify_max_reducer_load(
    schema,
    profile: DatasetProfile,
    delta: float = DEFAULT_DELTA,
    bucket_cache: Optional[Dict[Tuple, Tuple[float, ...]]] = None,
) -> Certification:
    """Certify a schema's maximum reducer load under a dataset profile.

    ``schema`` must provide ``reducer_load_bounds(oracle)`` yielding one
    upper bound per reducer (the Shares families do).  Returns an
    :attr:`CertificationKind.EXACT` certificate when every consulted
    attribute carries a full histogram, otherwise a
    :attr:`CertificationKind.HIGH_PROBABILITY` certificate at ``delta``.

    ``bucket_cache`` lets a caller certifying many schemas over one
    profile share the epsilon-free bucket-weight table between calls (see
    :class:`ProfileWeightOracle`); the Hoeffding-inflated pass never uses
    it.
    """
    loads_fn = getattr(schema, "reducer_load_bounds", None)
    if loads_fn is None:
        raise BoundDerivationError(
            f"schema {getattr(schema, 'name', schema)!r} does not expose "
            "reducer_load_bounds(); it cannot be profile-certified"
        )
    # Recording pass: exact answers are final, sampled answers are optimistic
    # (epsilon 0) but tell us how many estimates the union bound must cover.
    recorder = ProfileWeightOracle(profile, bucket_cache=bucket_cache)
    exact_loads = [float(load) for load in loads_fn(recorder)]
    optimistic = max(exact_loads, default=0.0)
    if not recorder.sampled_cells:
        # The per-reducer profile is only attached when the bounds really
        # enumerate the schema's reducers one by one — a coarse fallback
        # (one bound for the whole grid) certifies the max alone.
        enumerated = len(exact_loads) == getattr(
            schema, "num_reducers", len(exact_loads)
        )
        return exact_certification(
            optimistic,
            detail="per-bucket maxima from full histograms",
            load=LoadSummary(
                optimistic, loads=tuple(exact_loads) if enumerated else None
            ),
            method="per-bucket-histogram",
        )
    if not (0.0 < delta < 1.0):
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    # One Hoeffding event per *empirical proportion*: a bucket-weight cell
    # (relation, attribute, share, exclude) contributes one estimate per
    # bucket of that share, a value cell contributes one.  Counting cells
    # instead of estimates would shrink epsilon by up to the largest share
    # factor and void the stated delta.
    estimates = sum(
        1 if cell[2] == "value" else cell[2] for cell in recorder.sampled_cells
    )
    epsilons: Dict[Tuple[str, str], float] = {}
    for cell in recorder.sampled_cells:
        relation, attribute = cell[0], cell[1]
        stats = profile.relation(relation).attribute(attribute)
        m = max(len(stats.sample), 1)
        epsilons[(relation, attribute)] = math.sqrt(
            math.log(estimates / delta) / (2.0 * m)
        )
    inflated = ProfileWeightOracle(profile, epsilons=epsilons)
    bound = max(loads_fn(inflated), default=0.0)
    return high_probability_certification(
        bound,
        delta,
        detail=(
            f"Hoeffding over {estimates} sampled estimates "
            f"(union bound, per-estimate failure {delta / estimates:.2e})"
        ),
        # Sampled bounds certify only the maximum; the per-reducer profile
        # is reserved for exact histograms (ISSUE: certified-load pricing).
        load=LoadSummary(bound),
        method="hoeffding-sample",
    )


def expected_load_certification(schema, profile: DatasetProfile) -> Certification:
    """The paper's expectation-only certificate, evaluated on the instance.

    Wraps :meth:`~repro.schemas.join_shares.SharesSchema.expected_reducer_load`
    with the profiled relation sizes.  This is the claim the tail
    certificates replace; it is exposed so reports and tests can show the
    expectation a skewed instance violates.
    """
    row_counts = {
        name: relation.total_rows for name, relation in profile.relations.items()
    }
    return expected_certification(
        schema.expected_reducer_load(row_counts),
        detail="hash-balanced expectation on profiled relation sizes",
    )


def certify_sample_graph_load(schema, profile: DatasetProfile) -> Certification:
    """Exact load certificate for a bucketed sample-graph schema.

    Requires an exact graph profile (see
    :func:`~repro.stats.profile.profile_graph`): the per-endpoint histograms
    are the degree sequence, so the edges inside any set ``M`` of buckets
    are at most ``min(|E|, ⌊Σ_{b∈M} mass(b) / 2⌋, C(nodes(M), 2))`` — every
    such edge spends both endpoints inside ``M``.  The maximum over the
    schema's reducers (bucket multisets) is deterministic.
    """
    import itertools

    relation_name = next(iter(profile.relations))
    relation = profile.relation(relation_name)
    if not relation.exact:
        raise BoundDerivationError(
            "sample-graph certification needs an exact graph profile "
            "(full endpoint histograms)"
        )
    left = relation.attribute("u").histogram
    right = relation.attribute("v").histogram
    total_edges = relation.total_rows
    num_buckets = schema.num_buckets
    mass = [0] * num_buckets
    nodes_per_bucket = [0] * num_buckets
    for node in set(left) | set(right):
        bucket = schema.bucket_of(node)
        mass[bucket] += left.get(node, 0) + right.get(node, 0)
        nodes_per_bucket[bucket] += 1
    slots = schema.sample.num_nodes
    # A reducer's load depends only on the *set* of buckets in its multiset,
    # so enumerate distinct subsets of size <= slots.  Past the enumeration
    # limit, fall back to one coarse bound valid for every reducer: no
    # subset can beat the `slots` heaviest buckets on either component.
    subsets = sum(math.comb(num_buckets, size) for size in range(1, slots + 1))
    if subsets > _SAMPLE_GRAPH_SUBSET_LIMIT:
        top_mass = sum(sorted(mass, reverse=True)[:slots])
        top_nodes = sum(sorted(nodes_per_bucket, reverse=True)[:slots])
        worst = min(total_edges, top_mass // 2, math.comb(top_nodes, 2))
        return exact_certification(
            float(worst),
            detail=f"coarse degree-sequence bound ({slots} heaviest buckets)",
            load=LoadSummary(float(worst)),
            method="degree-sequence",
        )
    worst = 0
    for size in range(1, slots + 1):
        for buckets in itertools.combinations(range(num_buckets), size):
            endpoint_mass = sum(mass[bucket] for bucket in buckets)
            nodes = sum(nodes_per_bucket[bucket] for bucket in buckets)
            bound = min(total_edges, endpoint_mass // 2, math.comb(nodes, 2))
            worst = max(worst, bound)
    return exact_certification(
        float(worst),
        detail="degree-sequence bound per bucket multiset",
        load=LoadSummary(float(worst)),
        method="degree-sequence",
    )
