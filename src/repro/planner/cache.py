"""Keyed cache for built plan candidates (schemas plus their closed forms).

Candidate enumeration is the planner's hot path: a single ``plan`` call may
construct dozens of schema-family objects and evaluate their certified
reducer sizes and replication rates, and a budget *sweep* repeats that for
every budget.  Most of that work is identical across budgets — a
``SplittingSchema(b=24, c=3)`` is the same object whatever ``q`` the caller
is shopping for; only the *feasibility filter* depends on the budget.

:class:`SchemaCache` memoizes those builds behind a caller-chosen key —
conventionally ``(family, *parameters)`` with every parameter a hashable
value that fully determines the build.  The built-in builders in
:mod:`repro.planner.builtins` route every family construction through
:data:`default_schema_cache`, so

* a sweep over many budgets builds each (family, params) candidate once;
* repeated ``plan`` calls (benchmark loops, tests) reuse earlier builds;
* hit/miss counters make the "built at most once" property testable.

Cached values are treated as immutable — :class:`~repro.planner.registry.
PlanCandidate` is a frozen dataclass and the schema families never mutate
after construction — so sharing one instance across planning calls is safe.

This mirrors PostBOUND's memoization of enumerated plans across cost
budgets: the enumeration loop stays budget-aware while the expensive
per-candidate knowledge is computed once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple, TypeVar

from repro.exceptions import ConfigurationError

T = TypeVar("T")

#: Cache keys are flat tuples of hashables: ``(family_tag, *parameters)``.
CacheKey = Tuple[Hashable, ...]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`SchemaCache`."""

    hits: int
    misses: int
    evictions: int
    size: int

    @property
    def builds(self) -> int:
        """Number of times a build function actually ran (== misses)."""
        return self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class SchemaCache:
    """Keyed memoization of candidate builds with LRU bounding.

    Thread-safe: lookups, inserts and the eviction accounting all happen
    under one re-entrant lock, so concurrent planners (the query service
    plans submissions from many client threads) cannot corrupt the LRU
    order or lose counter updates.  The lock is held *across* ``build`` as
    well, which keeps the "built at most once per key" property under
    concurrency; builds are CPU-bound planner work, so serializing them
    costs nothing the GIL was not already costing.  The lock is re-entrant
    because builds legitimately nest — a pipeline round's build routes its
    own schema constructions back through this cache.

    Parameters
    ----------
    maxsize:
        Maximum number of cached entries; ``None`` (the default) means
        unbounded, which is appropriate for the library's enumeration
        spaces (at most a few hundred candidates per problem family).
        When bounded, the least recently used entry is evicted first.
    """

    def __init__(self, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ConfigurationError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: CacheKey, build: Callable[[], T]) -> T:
        """Return the cached value for ``key``, building it on first use.

        ``build`` must be a zero-argument callable whose result is fully
        determined by ``key``; it runs at most once per key while the entry
        remains cached — including when many threads race on the same key.
        """
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            value = build()
            self._entries[key] = value
            if self.maxsize is not None and len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def stats(self) -> CacheStats:
        """A point-in-time snapshot, internally consistent under concurrency."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
            )

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0


#: The cache the built-in candidate builders share.  Bounded (LRU) so
#: long-lived sessions sweeping many distinct problem parameters cannot
#: grow it without limit; the bound is far above any single problem's
#: enumeration space, so "built at most once per sweep" still holds.
#: Tests that assert build counts should ``clear()`` it first to start
#: from known counters.
default_schema_cache = SchemaCache(maxsize=4096)
