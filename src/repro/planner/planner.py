"""The cost-based planner: enumerate, bound, cost, rank.

Given a problem, a cluster configuration and a reducer-size budget ``q``,
:class:`CostBasedPlanner` answers the paper's operational question — *which
point on the replication/parallelism tradeoff curve should this job run at?*
— mechanically:

1. **Enumerate**: ask the :class:`~repro.planner.registry.SchemaRegistry`
   for every feasible candidate (schema family + parameters) within ``q``.
2. **Bound**: evaluate the problem's Section 2.4 lower-bound recipe at each
   candidate's reducer size, recording the optimality gap.
3. **Cost**: price each candidate with the Section 1.2 cluster cost model
   ``a·r + b·q (+ c·t(q))`` built from the cluster's rate constants.
4. **Rank**: sort ascending by total predicted cost (deterministic
   tie-break on ``(q, name)``) and return the ranked, executable plans.

This mirrors how PostBOUND structures pluggable cardinality bounds behind an
abstract optimizer interface: the planner owns the enumerate-and-bound loop
while the registry keeps the per-problem knowledge pluggable.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, List, Optional

from repro.core.cost import ClusterCostModel
from repro.core.problem import Problem
from repro.core.recipe import LowerBoundRecipe
from repro.core.tradeoff import AlgorithmPoint, TradeoffCurve
from repro.exceptions import BoundDerivationError, ConfigurationError, PlanningError
from repro.mapreduce.cluster import ClusterConfig
from repro.planner.plan import ExecutionPlan, PlanningResult, SweepPoint, SweepResult
from repro.planner.registry import PlanCandidate, SchemaRegistry, default_registry
from repro.stats.profile import DatasetProfile


class CostBasedPlanner:
    """Selects the cheapest feasible schema family for a problem.

    Parameters
    ----------
    registry:
        Schema registry to enumerate candidates from; defaults to the global
        registry populated with every family in :mod:`repro.schemas`.
    cost_model:
        Cost model used to price candidates.  When omitted, one is built per
        ``plan`` call from the cluster's ``communication_cost_per_record``
        (the ``a`` constant) and ``worker_cost_per_unit`` (the ``b``
        constant), so the cluster's pricing drives the choice.
    """

    def __init__(
        self,
        registry: Optional[SchemaRegistry] = None,
        cost_model: Optional[ClusterCostModel] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    # Alternative construction
    # ------------------------------------------------------------------
    @classmethod
    def min_replication(
        cls, registry: Optional[SchemaRegistry] = None
    ) -> "CostBasedPlanner":
        """A planner that minimizes replication rate subject to the budget.

        This is the paper's pure tradeoff question (ignore processor rental,
        minimize communication): rank candidates by ``r`` alone.  Useful for
        reproducing the figures, where the best algorithm *at* a reducer
        size is wanted rather than the globally cheapest configuration.
        """
        return cls(
            registry=registry,
            cost_model=ClusterCostModel(communication_rate=1.0, processing_rate=0.0),
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        problem: Problem,
        cluster: Optional[ClusterConfig] = None,
        q: Optional[float] = None,
        profile: Optional[DatasetProfile] = None,
    ) -> PlanningResult:
        """Return ranked executable plans for ``problem`` under budget ``q``.

        Parameters
        ----------
        problem:
            The problem to plan for; its type selects the registered
            candidate builders.
        cluster:
            Target cluster.  Provides the default budget (its
            ``reducer_capacity``) and the cost-rate constants.  A default
            cluster is used when omitted.
        q:
            Reducer-size budget.  Falls back to ``cluster.reducer_capacity``
            and finally to the problem's input count (i.e. unconstrained).
        profile:
            Optional dataset statistics.  Profile-aware builders (the Shares
            join, sample graphs) then certify their candidates with
            per-bucket tail bounds on the *actual* instance instead of the
            expectation-only closed forms, rejecting candidates whose tail
            bound blows the budget and adding skew-resistant variants.  Each
            plan's :attr:`~repro.planner.plan.ExecutionPlan.certification`
            records which kind of bound its ``q`` is.
        """
        started = time.perf_counter()
        cluster = cluster or ClusterConfig()
        budget = self._resolve_budget(problem, cluster, q)
        candidates = self.registry.candidates(problem, budget, profile=profile)
        if not candidates:
            raise PlanningError(
                f"no registered schema family for {problem.name!r} fits within "
                f"the reducer-size budget q={budget:g}"
            )
        model = self.cost_model or ClusterCostModel(
            communication_rate=cluster.communication_cost_per_record,
            processing_rate=cluster.worker_cost_per_unit,
            planning_rate=cluster.planning_cost_per_second,
        )
        curve = self._tradeoff_curve(problem, candidates)
        ranked = self._rank(problem, candidates, model, curve, cluster)
        # Planning-time accounting (ROADMAP leftover): the wall-clock this
        # call spent enumerating/certifying/ranking, attached *after* the
        # ranking — the same seconds back every candidate, so the priced
        # term shifts totals uniformly and cannot reorder plans.
        planning_seconds = time.perf_counter() - started
        ranked = [
            dataclasses.replace(
                plan, cost=model.with_planning(plan.cost, planning_seconds)
            )
            for plan in ranked
        ]
        return PlanningResult(
            problem=problem,
            q_budget=budget,
            cluster=cluster,
            plans=ranked,
            tradeoff=curve,
        )

    # ------------------------------------------------------------------
    # Budget sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        problem: Problem,
        budgets: Iterable[float],
        cluster: Optional[ClusterConfig] = None,
        profile: Optional[DatasetProfile] = None,
    ) -> SweepResult:
        """Trace the achievable replication/q tradeoff curve in one call.

        Plans ``problem`` at every budget in ``budgets`` (deduplicated,
        ascending) and returns a :class:`SweepResult` whose
        :meth:`~repro.planner.plan.SweepResult.frontier` is the reproduced
        tradeoff curve — the winning plan, its replication rate, and the
        lower bound at each budget.  Budgets no registered candidate fits
        become infeasible points instead of aborting the sweep, so callers
        can probe below a family's minimum ``q`` safely.

        Candidate schema builds are shared across the budgets: the built-in
        builders memoize each (family, parameters) construction in
        :data:`~repro.planner.cache.default_schema_cache`, so an 8-budget
        sweep costs one enumeration's worth of schema building plus eight
        cheap feasibility filters — not eight rebuilds.  The same cache
        carries over between ``sweep`` and ``plan`` calls.
        """
        cluster = cluster or ClusterConfig()
        unique_budgets = sorted({float(budget) for budget in budgets})
        if not unique_budgets:
            raise ConfigurationError("sweep needs at least one budget")
        points: List[SweepPoint] = []
        for budget in unique_budgets:
            try:
                result = self.plan(problem, cluster, q=budget, profile=profile)
            except PlanningError as error:
                points.append(
                    SweepPoint(budget=budget, infeasible_reason=str(error))
                )
            else:
                points.append(SweepPoint(budget=budget, result=result))
        return SweepResult(problem=problem, cluster=cluster, points=points)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_budget(
        problem: Problem, cluster: ClusterConfig, q: Optional[float]
    ) -> float:
        if q is None:
            q = cluster.reducer_capacity
        if q is None:
            q = float(problem.num_inputs)
        if q <= 0:
            raise ConfigurationError(f"reducer-size budget must be positive, got {q}")
        return float(q)

    @staticmethod
    def _tradeoff_curve(
        problem: Problem, candidates: Iterable[PlanCandidate]
    ) -> Optional[TradeoffCurve]:
        """Problem's lower-bound curve with the candidates as its dots.

        Problems that do not define ``g(q)`` simply yield no curve (the
        plans then carry no lower bound / optimality gap).
        """
        try:
            recipe = LowerBoundRecipe.from_problem(problem)
            curve = TradeoffCurve.from_recipe(recipe)
            # Probe once so problems without g(q) fail fast here, not later.
            curve.lower_bound_at(2.0)
        except (NotImplementedError, BoundDerivationError):
            # No g(q) / recipe for this problem: plans carry no lower bound.
            return None
        curve.add_algorithms(
            AlgorithmPoint(
                name=candidate.name,
                q=candidate.q,
                replication_rate=candidate.replication_rate,
                load=(
                    candidate.certification.load
                    if candidate.certification is not None
                    else None
                ),
            )
            for candidate in candidates
            # The recipe bounds single-round mapping schemas only; plotting a
            # multi-round algorithm under the one-round hyperbola would let
            # it appear to beat a proven bound.
            if candidate.rounds == 1
        )
        return curve

    def _rank(
        self,
        problem: Problem,
        candidates: List[PlanCandidate],
        model: ClusterCostModel,
        curve: Optional[TradeoffCurve],
        cluster: ClusterConfig,
    ) -> List[ExecutionPlan]:
        plans: List[ExecutionPlan] = []
        for candidate in candidates:
            rate = candidate.replication_rate
            # Certified candidates (profiled joins, sample graphs) carry a
            # load summary: the b·q term then prices the certified load —
            # the per-reducer profile when histograms were exact — instead
            # of the scalar bound.
            load = (
                candidate.certification.load
                if candidate.certification is not None
                else None
            )
            breakdown = model.cost_at(candidate.q, lambda _q: rate, load=load)
            lower = None
            # The Section 2.4 lower bound applies to one-round mapping
            # schemas; multi-round candidates carry no bound (and no gap).
            if curve is not None and candidate.rounds == 1:
                try:
                    lower = curve.lower_bound_at(candidate.q)
                except (NotImplementedError, BoundDerivationError):
                    lower = None
            plans.append(
                ExecutionPlan(
                    problem=problem,
                    candidate=candidate,
                    cost=breakdown,
                    cluster=cluster,
                    lower_bound=lower,
                )
            )
        plans.sort(key=lambda plan: (plan.total_cost, plan.q, plan.name))
        return [
            dataclasses.replace(plan, rank=rank) for rank, plan in enumerate(plans)
        ]
