"""Profile-driven share-vector optimization for the Shares algorithm.

The planner's fixed grids (:data:`GRID_REDUCER_SWEEP` crossed with
chain/star/uniform shapes — the constants live here and
:mod:`repro.planner.builtins` imports them) sample the share space at a
handful of hand-picked points.  The Shares analysis, however, poses a concrete
optimization problem: given a reducer budget ``k``, pick integer shares
``s_A ≥ 1`` with ``Π_A s_A ≤ k`` minimizing the communication

    C(s) = Σ_e  w_e · Π_{A ∉ A_e} s_A

where ``w_e`` is relation ``R_e``'s size — the model's ``n^arity`` in the
paper, the *profiled row count* when a :class:`~repro.stats.profile.
DatasetProfile` is available.  In log-shares ``x_A = ln s_A`` the objective
``Σ_e w_e · exp(Σ_{A∉e} x_A)`` is convex and the budget becomes the simplex
constraint ``Σ x_A = ln k, x ≥ 0``, so the continuous relaxation is solved
exactly by projected gradient descent (the Lagrangean stationarity
condition — every attribute with ``x_A > 0`` sees the same marginal
communication — is what the projection enforces at convergence).

Integers are recovered in three guarded steps:

1. **rounding** — every floor/ceil combination of the fractional
   coordinates (capped; plain rounding past the cap);
2. **repair** — while ``Π s > k``, decrement the largest share (never
   below 1), so the reducer budget is *never* exceeded and no share can
   reach 0; the invariant is asserted on every returned vector;
3. **local search** — hill-climb over ±1 neighbours inside the budget on
   the selection metric.

The selection metric is where the profile earns its keep: with a covering
profile, candidate vectors are scored by their **certified maximum reducer
load** (:func:`~repro.planner.certify.certify_max_reducer_load` — exact
per-bucket tail bounds, the same certificates the planner enforces), with
profiled communication as the tie-break; without a profile, by expected
communication alone.  The paper-shaped grid vectors for the same budget —
budget-repaired like every vector the optimizer may return, since the
closed forms round *up* and can overshoot ``k`` — are always included in
the scored pool, so the optimizer's choice is by construction **never
worse under the metric than the best fixed-grid vector that fits the
budget**.  (The planner's vanilla enumeration separately offers the
unrepaired shapes, which may spend more than ``k`` reducers; both
candidate sets meet in the ranked plan list, so nothing is lost either
way.)  (Abo Khamis–Ngo–Suciu make the same move for
worst-case-optimal joins: instance statistics turn a shape-generic bound
into a materially tighter one.)
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.planner.certify import Certification, certify_max_reducer_load
from repro.problems.joins import JoinQuery
from repro.schemas.join_shares import (
    SharesSchema,
    SkewAwareSharesSchema,
    binary_join_share_grid,
    chain_join_shares,
    shares_communication,
    star_join_shares,
)
from repro.stats.profile import DatasetProfile

#: Above this many fractional coordinates, rounding enumerates nothing and
#: falls back to nearest-integer rounding (2^10 combinations is the cap).
_MAX_ROUNDING_COORDINATES = 10

#: Hill-climbing steps before the local search gives up.
_MAX_LOCAL_SEARCH_STEPS = 64

#: The fixed-grid enumeration constants.  These are the *single source of
#: truth* — :mod:`repro.planner.builtins` imports them for its grid sweep —
#: so the vectors the optimizer treats as its floor are exactly the vectors
#: the planner would otherwise enumerate; a value added to the grid is
#: automatically in the optimizer's scored pool too.
GRID_REDUCER_SWEEP = (2, 4, 8, 16, 27, 32, 64, 128, 256)
GRID_UNIFORM_SHARES = (2, 3, 4, 6, 8)
#: Uniform per-value sub-grid shares tried for heavy-hitter isolation —
#: the fixed sweep the skew-aware sub-grid optimizer must never lose to.
GRID_SKEW_SUBSHARES = (2, 4, 8)

ShareVector = Dict[str, int]


@dataclass(frozen=True)
class ShareOptimization:
    """The outcome of one share-vector optimization at one reducer budget.

    ``shares`` is the chosen integer vector (``Π ≤ budget`` guaranteed);
    ``continuous`` the Lagrangean relaxation's solution it was rounded
    from; ``score`` the selection-metric value of the winner and
    ``metric`` which metric ranked the pool (``"certified-bound"`` with a
    profile, ``"expected-communication"`` without).
    """

    shares: ShareVector
    continuous: Dict[str, float]
    score: float
    metric: str
    budget: int
    #: The winner's certification, when the selection metric was the
    #: certified bound — callers building plan candidates can reuse it
    #: instead of certifying the same schema a second time.
    certification: Optional[Certification] = None
    #: Wall-clock seconds this optimization took (relaxation + rounding +
    #: certification + hill-climb) — the quantity the cost model's
    #: ``planning_rate`` term prices so optimizer cost can be amortized.
    elapsed_seconds: float = 0.0

    @property
    def num_reducers(self) -> int:
        product = 1
        for share in self.shares.values():
            product *= share
        return product


# ----------------------------------------------------------------------
# Weights
# ----------------------------------------------------------------------
def relation_weights(
    query: JoinQuery,
    profile: Optional[DatasetProfile] = None,
    domain_size: Optional[int] = None,
) -> Dict[str, float]:
    """Communication weight per relation: profiled rows, else ``n^arity``.

    A profile that does not cover every relation of the query is ignored
    (same rule the profile-aware candidate builders apply).  Only the
    *query's* relations are weighted — a profile collected over a larger
    dataset may carry unrelated (and much bigger) relations whose counts
    would otherwise distort the relaxation's normalization.
    """
    if profile is not None and profile.covers(
        [relation.name for relation in query.relations]
    ):
        counts = profile.row_counts()
        return {
            relation.name: float(counts[relation.name])
            for relation in query.relations
        }
    if domain_size is not None:
        return {
            relation.name: float(domain_size**relation.arity)
            for relation in query.relations
        }
    return {relation.name: 1.0 for relation in query.relations}


# ----------------------------------------------------------------------
# Continuous relaxation: projected gradient on log-shares
# ----------------------------------------------------------------------
def _project_simplex(values: Sequence[float], total: float) -> List[float]:
    """Euclidean projection onto ``{y ≥ 0, Σ y = total}`` (sort-based)."""
    ordered = sorted(values, reverse=True)
    cumulative = 0.0
    theta = 0.0
    for index, value in enumerate(ordered):
        cumulative += value
        candidate = (cumulative - total) / (index + 1)
        if value - candidate > 0:
            theta = candidate
    return [max(0.0, value - theta) for value in values]


def optimize_log_shares(
    query: JoinQuery,
    budget: int,
    weights: Mapping[str, float],
    iterations: int = 300,
    tolerance: float = 1e-10,
) -> Dict[str, float]:
    """Solve the continuous share relaxation; returns fractional shares.

    Minimizes ``Σ_e w_e exp(Σ_{A∉e} x_A)`` over the simplex
    ``Σ x = ln budget, x ≥ 0`` by projected gradient descent with
    backtracking line search.  The objective is convex (a positive sum of
    exponentials of linear forms) and the feasible set is a simplex, so
    the iteration converges to the global optimum; everything is
    deterministic.  Returned as ``{attribute: exp(x_A)}``.
    """
    if budget < 1:
        raise ConfigurationError(f"reducer budget must be >= 1, got {budget}")
    attributes = query.attributes
    log_budget = math.log(budget)
    if log_budget == 0.0 or not attributes:
        return {attribute: 1.0 for attribute in attributes}
    scale = max(weights.values(), default=1.0) or 1.0
    scaled = {name: weight / scale for name, weight in weights.items()}
    membership = {
        attribute: frozenset(
            relation.name
            for relation in query.relations
            if attribute in relation.attributes
        )
        for attribute in attributes
    }

    def objective_and_gradient(x: Sequence[float]) -> Tuple[float, List[float]]:
        assignment = dict(zip(attributes, x))
        value = 0.0
        per_relation: Dict[str, float] = {}
        for relation in query.relations:
            exponent = sum(
                assignment[attribute]
                for attribute in attributes
                if attribute not in relation.attributes
            )
            term = scaled[relation.name] * math.exp(exponent)
            per_relation[relation.name] = term
            value += term
        gradient = [
            sum(
                term
                for name, term in per_relation.items()
                if name not in membership[attribute]
            )
            for attribute in attributes
        ]
        return value, gradient

    # Start from the uniform interior point — strictly feasible, symmetric.
    x = [log_budget / len(attributes)] * len(attributes)
    value, gradient = objective_and_gradient(x)
    for _ in range(iterations):
        norm = math.sqrt(sum(g * g for g in gradient))
        if norm == 0.0:
            break
        step = log_budget / norm
        moved = False
        while step > 1e-14:
            trial = _project_simplex(
                [xi - step * gi for xi, gi in zip(x, gradient)], log_budget
            )
            trial_value, trial_gradient = objective_and_gradient(trial)
            if trial_value < value - tolerance:
                x, value, gradient = trial, trial_value, trial_gradient
                moved = True
                break
            step /= 2.0
        if not moved:
            break
    return {attribute: math.exp(xi) for attribute, xi in zip(attributes, x)}


# ----------------------------------------------------------------------
# Integer recovery: rounding, repair, local search
# ----------------------------------------------------------------------
def share_product(shares: Mapping[str, int]) -> int:
    product = 1
    for share in shares.values():
        product *= share
    return product


def repair_shares(shares: Mapping[str, int], budget: int) -> ShareVector:
    """Force ``Π s_A ≤ budget`` by decrementing the largest share.

    Shares below 1 are clamped up first, so a repaired vector can never
    contain 0; ties between equally-large shares break on the attribute
    name for determinism.  The budget invariant is asserted on the result
    — a violation here is a programming error, not an input error.
    """
    if budget < 1:
        raise ConfigurationError(f"reducer budget must be >= 1, got {budget}")
    repaired: ShareVector = {
        attribute: max(1, int(share)) for attribute, share in shares.items()
    }
    while share_product(repaired) > budget:
        attribute = max(
            (a for a in repaired if repaired[a] > 1),
            key=lambda a: (repaired[a], a),
        )
        repaired[attribute] -= 1
    assert share_product(repaired) <= budget, (
        f"share repair failed: {repaired} exceeds budget {budget}"
    )
    assert all(share >= 1 for share in repaired.values()), (
        f"share repair produced a zero share: {repaired}"
    )
    return repaired


def _rounding_candidates(
    continuous: Mapping[str, float], budget: int
) -> List[ShareVector]:
    """Floor/ceil combinations of the relaxation, each budget-repaired."""
    attributes = list(continuous)
    fractional = [
        attribute
        for attribute in attributes
        if abs(continuous[attribute] - round(continuous[attribute])) > 1e-9
    ]
    vectors: List[ShareVector] = []
    if len(fractional) > _MAX_ROUNDING_COORDINATES:
        vectors.append(
            {a: max(1, round(continuous[a])) for a in attributes}
        )
    else:
        choices = []
        for attribute in attributes:
            value = continuous[attribute]
            if attribute in fractional:
                choices.append(
                    sorted({max(1, math.floor(value)), max(1, math.ceil(value))})
                )
            else:
                choices.append([max(1, round(value))])
        for combination in itertools.product(*choices):
            vectors.append(dict(zip(attributes, combination)))
    return [repair_shares(vector, budget) for vector in vectors]


def grid_share_vectors(query: JoinQuery, budget: int) -> List[ShareVector]:
    """The fixed-grid vectors for this budget: the optimizer's floor.

    Mirrors the shapes the builtins' grid sweep enumerates — trivial,
    chain/star closed forms, uniform-on-shared — every one repaired into
    the budget so the comparison is at equal reducer count.  The chain and
    star closed forms round *up* (``chain_join_shares(3, 8)`` yields 3×3 =
    9 reducers), so the repaired vector here can differ from the vanilla
    candidate builtins enumerates for the same nominal ``reducers`` value;
    the dominance guarantee is over vectors that *fit the budget*, which
    is the constraint the optimizer itself must honour.
    """
    vectors: List[ShareVector] = [{a: 1 for a in query.attributes}]
    if query.name.startswith("chain-join"):
        vectors.append(chain_join_shares(query.num_relations, budget))
    elif query.name.startswith("star-join"):
        vectors.append(star_join_shares(query.num_relations - 1, budget))
    # The binary hash-join / skew-splitting shapes builtins enumerates for
    # two-relation queries (one shared gate, so the optimizer's scored pool
    # keeps the never-worse-than-the-grid guarantee there too).
    vectors.extend(binary_join_share_grid(query, (budget,)))
    membership: Dict[str, int] = {}
    for relation in query.relations:
        for attribute in relation.attributes:
            membership[attribute] = membership.get(attribute, 0) + 1
    shared = {a for a, count in membership.items() if count >= 2}
    for share in GRID_UNIFORM_SHARES:
        uniform = {
            a: share if a in shared else 1 for a in query.attributes
        }
        if share_product(uniform) <= budget:
            vectors.append(uniform)
    return [repair_shares(vector, budget) for vector in vectors]


def _neighbours(shares: ShareVector, budget: int) -> List[ShareVector]:
    """±1 moves on single coordinates that stay inside the budget."""
    product = share_product(shares)
    moves: List[ShareVector] = []
    for attribute in shares:
        share = shares[attribute]
        if share > 1:
            moves.append({**shares, attribute: share - 1})
        grown = product // share * (share + 1)
        if grown <= budget:
            moves.append({**shares, attribute: share + 1})
    return moves


def _vector_key(shares: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted(shares.items()))


# ----------------------------------------------------------------------
# The optimizer
# ----------------------------------------------------------------------
def optimize_shares(
    query: JoinQuery,
    budget: int,
    profile: Optional[DatasetProfile] = None,
    domain_size: Optional[int] = None,
    weights: Optional[Mapping[str, float]] = None,
    bucket_cache: Optional[Dict[Tuple, Tuple[float, ...]]] = None,
) -> ShareOptimization:
    """Choose a Shares vector for ``budget`` reducers, profile-informed.

    Solves the continuous log-share relaxation under the (profiled)
    communication weights, recovers integers (rounding + budget repair +
    hill-climbing), and selects among the recovered vectors *and* the
    fixed-grid vectors for the same budget:

    * with a covering exact-or-sampled ``profile`` (and ``domain_size``
      for the schema's closed forms), by certified maximum reducer load,
      communication as tie-break — so the returned vector's certificate is
      never worse than the best grid vector's;
    * otherwise by expected communication under ``weights`` (explicit, or
      derived from the profile / ``domain_size``).

    The returned :class:`ShareOptimization` always satisfies
    ``Π s_A ≤ budget`` with every share ≥ 1.  ``bucket_cache`` optionally
    shares the epsilon-free bucket-weight table with other optimizations
    over the same profile (the table's cells are budget-independent, so a
    caller sweeping many budgets avoids rebucketing the histograms per
    budget).
    """
    if budget < 1:
        raise ConfigurationError(f"reducer budget must be >= 1, got {budget}")
    started = time.perf_counter()
    resolved_weights = (
        dict(weights)
        if weights is not None
        else relation_weights(query, profile=profile, domain_size=domain_size)
    )
    usable_profile = (
        profile
        if profile is not None
        and domain_size is not None
        and profile.covers([relation.name for relation in query.relations])
        else None
    )

    score_cache: Dict[Tuple[Tuple[str, int], ...], Tuple[float, ...]] = {}
    certifications: Dict[Tuple[Tuple[str, int], ...], Certification] = {}
    # One epsilon-free bucket-weight table for every vector scored in this
    # call (or across calls, when the caller passes one in): share values
    # recur heavily across the pool and the hill-climb neighbourhood, and
    # rebucketing the histograms per certification is otherwise the
    # optimizer's dominant cost.
    if bucket_cache is None:
        bucket_cache = {}

    def score(shares: ShareVector) -> Tuple[float, ...]:
        key = _vector_key(shares)
        cached = score_cache.get(key)
        if cached is not None:
            return cached
        communication = shares_communication(query, shares, resolved_weights)
        if usable_profile is not None:
            schema = SharesSchema(query, shares, domain_size)
            certification = certify_max_reducer_load(
                schema, usable_profile, bucket_cache=bucket_cache
            )
            certifications[key] = certification
            result: Tuple[float, ...] = (certification.bound, communication)
        else:
            result = (communication,)
        score_cache[key] = result
        return result

    continuous = optimize_log_shares(query, budget, resolved_weights)
    pool: Dict[Tuple[Tuple[str, int], ...], ShareVector] = {}
    for vector in _rounding_candidates(continuous, budget):
        pool.setdefault(_vector_key(vector), vector)
    for vector in grid_share_vectors(query, budget):
        pool.setdefault(_vector_key(vector), vector)

    best = min(pool.values(), key=lambda v: (score(v), _vector_key(v)))
    # Hill-climb from the pool's winner: ±1 moves inside the budget, until
    # no neighbour improves the metric.  This is what lets the optimizer
    # escape bucket-alignment accidents the relaxation cannot see (a
    # neighbouring share can hash a heavy value into a lighter bucket).
    for _ in range(_MAX_LOCAL_SEARCH_STEPS):
        improved = False
        for neighbour in _neighbours(best, budget):
            if score(neighbour) < score(best):
                best = neighbour
                improved = True
        if not improved:
            break

    metric = (
        "certified-bound" if usable_profile is not None else "expected-communication"
    )
    chosen = repair_shares(best, budget)
    chosen_score = score(chosen)[0]
    return ShareOptimization(
        shares=chosen,
        continuous=continuous,
        score=chosen_score,
        metric=metric,
        budget=budget,
        certification=certifications.get(_vector_key(chosen)),
        elapsed_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Skew-aware sub-grid optimization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SkewShareOptimization:
    """Outcome of one heavy-hitter sub-grid optimization at one budget.

    ``shares`` is the main-grid vector (chosen by :func:`optimize_shares`
    at the same budget), ``heavy_shares`` the per-heavy-value sub-grid
    shares over the attributes co-occurring with the skew attribute, and
    ``score`` the winner's certified maximum reducer load over the full
    skew-aware schema (main grid and every sub-grid, broadcast cost
    included).
    """

    shares: ShareVector
    heavy_shares: ShareVector
    skew_attribute: str
    heavy_values: Tuple[int, ...]
    score: float
    budget: int
    certification: Optional[Certification] = None
    elapsed_seconds: float = 0.0


def optimize_skew_shares(
    query: JoinQuery,
    budget: int,
    profile: DatasetProfile,
    domain_size: int,
    skew_attribute: str,
    heavy_values: Sequence[int],
    shares: Optional[Mapping[str, int]] = None,
    bucket_cache: Optional[Dict[Tuple, Tuple[float, ...]]] = None,
) -> SkewShareOptimization:
    """Hill-climb a *non-uniform* heavy-hitter sub-grid, certified.

    The fixed enumeration (:data:`GRID_SKEW_SUBSHARES` crossed with the
    grid share vectors) only ever tries the same sub-share on every
    co-occurring attribute, yet the heavy value's residual join is its own
    little Shares problem whose optimal grid is generally lopsided (a
    heavy FK value joining a wide dimension wants all its sub-shares on
    the dimension's key, none on payload attributes).  This optimizer
    scores whole :class:`~repro.schemas.join_shares.SkewAwareSharesSchema`
    instances by :func:`~repro.planner.certify.certify_max_reducer_load`
    — the exact per-bucket certificates the planner enforces, so broadcast
    cost and main-grid load are priced in, not just the sub-grid — and
    hill-climbs ±1 moves on individual sub-shares from the best seed.

    The seed pool always contains the uniform
    :data:`GRID_SKEW_SUBSHARES` vectors and the trivial all-ones vector,
    so the result is **never worse under the certified bound than the
    fixed sub-grid sweep** for the same main-grid vector.  Growth moves
    keep the sub-grid's reducer product within ``budget`` (the uniform
    seeds are exempt — the fixed sweep never budgeted them either, and
    dropping them would break the floor).

    ``shares`` optionally pins the main-grid vector; by default it is the
    certified winner of :func:`optimize_shares` at the same budget.
    ``profile`` must cover the query's relations — scoring is by
    certificate, which needs the histograms.
    """
    if budget < 1:
        raise ConfigurationError(f"reducer budget must be >= 1, got {budget}")
    if not profile.covers([relation.name for relation in query.relations]):
        raise ConfigurationError(
            "optimize_skew_shares needs a profile covering every relation of "
            f"query {query.name!r}; scoring is by certified reducer load"
        )
    if not heavy_values:
        raise ConfigurationError(
            "optimize_skew_shares needs at least one heavy value; use "
            "optimize_shares when the profile shows no skew"
        )
    started = time.perf_counter()
    co_occurring = tuple(
        dict.fromkeys(
            attribute
            for relation in query.relations
            if skew_attribute in relation.attributes
            for attribute in relation.attributes
            if attribute != skew_attribute
        )
    )
    if not co_occurring:
        raise ConfigurationError(
            f"skew attribute {skew_attribute!r} co-occurs with no other "
            "attribute; a sub-grid cannot spread its tuples"
        )
    if shares is not None:
        main_shares: ShareVector = repair_shares(shares, budget)
    else:
        main_shares = optimize_shares(
            query,
            budget,
            profile=profile,
            domain_size=domain_size,
            bucket_cache=bucket_cache,
        ).shares
    if bucket_cache is None:
        bucket_cache = {}

    score_cache: Dict[Tuple[Tuple[str, int], ...], Tuple[float, float]] = {}
    certifications: Dict[Tuple[Tuple[str, int], ...], Certification] = {}

    def score(heavy: ShareVector) -> Tuple[float, float]:
        key = _vector_key(heavy)
        cached = score_cache.get(key)
        if cached is not None:
            return cached
        schema = SkewAwareSharesSchema(
            query,
            main_shares,
            domain_size,
            skew_attribute=skew_attribute,
            heavy_values=heavy_values,
            heavy_shares=heavy,
        )
        certification = certify_max_reducer_load(
            schema, profile, bucket_cache=bucket_cache
        )
        certifications[key] = certification
        result = (certification.bound, schema.replication_rate_formula())
        score_cache[key] = result
        return result

    pool: Dict[Tuple[Tuple[str, int], ...], ShareVector] = {}
    trivial = {attribute: 1 for attribute in co_occurring}
    pool[_vector_key(trivial)] = trivial
    for sub_share in GRID_SKEW_SUBSHARES:
        uniform = {attribute: sub_share for attribute in co_occurring}
        pool.setdefault(_vector_key(uniform), uniform)

    best = min(pool.values(), key=lambda v: (score(v), _vector_key(v)))
    for _ in range(_MAX_LOCAL_SEARCH_STEPS):
        improved = False
        for neighbour in _neighbours(best, max(budget, share_product(best))):
            if score(neighbour) < score(best):
                best = neighbour
                improved = True
        if not improved:
            break

    best_key = _vector_key(best)
    return SkewShareOptimization(
        shares=main_shares,
        heavy_shares=best,
        skew_attribute=skew_attribute,
        heavy_values=tuple(heavy_values),
        score=score(best)[0],
        budget=budget,
        certification=certifications.get(best_key),
        elapsed_seconds=time.perf_counter() - started,
    )
