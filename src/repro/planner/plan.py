"""Execution plans: the planner's output, directly runnable on the engine.

An :class:`ExecutionPlan` pairs one enumerated candidate (a schema family
with fixed parameters) with its predicted cost on the target cluster.  A
:class:`PlanningResult` is the ranked list of such plans for one planning
request; its first element is the recommendation.  Both are plain data plus
an ``execute`` bridge to :class:`~repro.mapreduce.engine.MapReduceEngine`,
so call sites never need to hand-construct schemas or jobs again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.cost import CostBreakdown
from repro.core.problem import Problem
from repro.core.tradeoff import TradeoffCurve
from repro.exceptions import PlanningError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.engine import JobResult, MapReduceEngine, PipelineResult
from repro.mapreduce.job import JobChain, MapReduceJob
from repro.mapreduce.metrics import PhaseTimings
from repro.planner.certify import Certification
from repro.planner.registry import PlanCandidate


@dataclass(frozen=True)
class ExecutionPlan:
    """One ranked, executable way of running a problem on a cluster.

    Attributes
    ----------
    problem:
        The problem the plan serves.
    candidate:
        The enumerated algorithm point (name, certified q, replication rate,
        job factory).
    cost:
        Predicted Section 1.2 cost breakdown at the candidate's ``(q, r)``.
    cluster:
        The cluster configuration the plan was costed for; ``execute`` runs
        on an engine with this configuration unless one is supplied.
    lower_bound:
        The replication-rate lower bound ``f(q)`` at the candidate's ``q``,
        when the problem's recipe provides one (``None`` otherwise).  The
        ratio ``replication_rate / lower_bound`` is the plan's optimality
        gap.
    rank:
        Position in the ranked plan list (0 is the planner's choice).
    """

    problem: Problem
    candidate: PlanCandidate
    cost: CostBreakdown
    cluster: ClusterConfig
    lower_bound: Optional[float] = None
    rank: int = 0
    #: Per-phase wall-clock seconds of the most recent ``execute`` call on
    #: this plan object (measurement, not identity: excluded from equality).
    last_timings: Optional[PhaseTimings] = field(
        default=None, compare=False, repr=False
    )

    # -- convenience pass-throughs -------------------------------------
    @property
    def name(self) -> str:
        return self.candidate.name

    @property
    def q(self) -> float:
        """Certified maximum reducer input size of this plan."""
        return self.candidate.q

    @property
    def replication_rate(self) -> float:
        return self.candidate.replication_rate

    @property
    def rounds(self) -> int:
        return self.candidate.rounds

    @property
    def family(self) -> Optional[Any]:
        return self.candidate.family

    @property
    def certification(self) -> Optional["Certification"]:
        """How the plan's ``q`` is backed (exact / expected / high-probability).

        ``None`` means the candidate predates certification tracking; the
        built-in combinatorial families all attach exact certificates.
        """
        return self.candidate.certification

    @property
    def certification_label(self) -> str:
        certification = self.candidate.certification
        return certification.label if certification is not None else "exact"

    @property
    def bound_method(self) -> Optional[str]:
        """Which bound family produced ``q`` (``"closed-form"``,
        ``"per-bucket-histogram"``, ``"hoeffding-sample"``, ...), or
        ``None`` for candidates predating method tracking."""
        certification = self.candidate.certification
        if certification is None or not certification.method:
            return None
        return certification.method

    @property
    def total_cost(self) -> float:
        return self.cost.total

    @property
    def optimality_gap(self) -> Optional[float]:
        """``r / f(q)``; 1.0 means the plan meets the lower bound."""
        if self.lower_bound is None or self.lower_bound <= 0:
            return None
        return self.replication_rate / self.lower_bound

    # -- execution ------------------------------------------------------
    def build_work(self, inputs: Sequence[Any] = ()) -> Union[MapReduceJob, JobChain]:
        """Materialize the executable job (or chain) for this plan."""
        return self.candidate.job_factory(inputs)

    def execute(
        self,
        inputs: Iterable[Any],
        engine: Optional[MapReduceEngine] = None,
    ) -> Union[JobResult, PipelineResult]:
        """Run the plan over ``inputs`` and return the engine's result.

        Inputs stay streamed unless the candidate's job factory needs them
        materialized (data-dependent jobs such as the Shares join).
        """
        engine = engine or MapReduceEngine(self.cluster)
        if self.candidate.needs_inputs:
            inputs = list(inputs)
            work = self.build_work(inputs)
        else:
            work = self.build_work()
        if isinstance(work, JobChain):
            result: Union[JobResult, PipelineResult] = engine.run_chain(work, inputs)
            timings = result.metrics.phase_seconds()
        else:
            result = engine.run(work, inputs)
            timings = result.metrics.timings
        # The plan is frozen (it is planner output, hashable and comparable);
        # the timing cache is measurement riding along, not plan identity.
        object.__setattr__(self, "last_timings", timings)
        return result

    @property
    def cost_pricing(self) -> str:
        """What backed the cost model's processing term for this plan.

        ``"bound"`` (scalar reducer-size bound), ``"certified-max"``
        (certified maximum load) or ``"certified-load"`` (certified
        per-reducer load profile).
        """
        return self.cost.pricing

    def describe(self) -> Dict[str, object]:
        """Flat row for reports and benchmark tables.

        When the plan has been executed, the row also carries the last
        run's per-phase wall-clock seconds (``map_s`` / ``shuffle_s`` /
        ``reduce_s`` / ``total_s``), so the data-plane speedups are
        attributable per phase; before any execution they are ``None``.
        """
        timings = self.last_timings
        return {
            "rank": self.rank,
            "plan": self.name,
            "q": self.q,
            "certified": self.certification_label,
            "bound_method": self.bound_method,
            "pricing": self.cost_pricing,
            "replication_rate": self.replication_rate,
            "rounds": self.rounds,
            "total_cost": self.total_cost,
            "planning_s": self.cost.planning_seconds,
            "planning_cost": self.cost.planning_cost,
            "lower_bound": self.lower_bound,
            "gap": self.optimality_gap,
            "map_s": timings.map_seconds if timings is not None else None,
            "shuffle_s": timings.shuffle_seconds if timings is not None else None,
            "reduce_s": timings.reduce_seconds if timings is not None else None,
            "total_s": timings.total_seconds if timings is not None else None,
        }


@dataclass
class PlanningResult:
    """The ranked outcome of one ``CostBasedPlanner.plan`` call.

    Behaves as a sequence of :class:`ExecutionPlan` (cheapest first), so
    ``result[0]`` / ``result.best`` is the recommendation and the rest are
    the alternatives with their predicted costs.
    """

    problem: Problem
    q_budget: float
    cluster: ClusterConfig
    plans: List[ExecutionPlan] = field(default_factory=list)
    tradeoff: Optional[TradeoffCurve] = None

    @property
    def best(self) -> ExecutionPlan:
        if not self.plans:
            raise PlanningError(
                f"planning result for {self.problem.name!r} holds no plans"
            )
        return self.plans[0]

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self) -> Iterator[ExecutionPlan]:
        return iter(self.plans)

    def __getitem__(self, index: int) -> ExecutionPlan:
        return self.plans[index]

    def find(self, fragment: str) -> Optional[ExecutionPlan]:
        """First plan whose name contains ``fragment`` (for tests/reports)."""
        for plan in self.plans:
            if fragment in plan.name:
                return plan
        return None

    def table(self) -> List[Dict[str, object]]:
        """All plans as flat rows, ranked, for printing."""
        return [plan.describe() for plan in self.plans]


@dataclass(frozen=True)
class SweepPoint:
    """One budget of a planner sweep: its ranked plans, or why it has none.

    ``result`` is ``None`` for budgets no registered candidate fits; the
    ``infeasible_reason`` then carries the planner's explanation so the
    point can still be reported in tradeoff tables.
    """

    budget: float
    result: Optional[PlanningResult] = None
    infeasible_reason: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.result is not None

    @property
    def best(self) -> Optional[ExecutionPlan]:
        if self.result is None:
            return None
        return self.result.best


@dataclass
class SweepResult:
    """The full replication/q tradeoff curve of one ``sweep`` call.

    Points are ordered by ascending budget.  Iteration yields every
    :class:`SweepPoint` — including infeasible ones, which carry
    ``result=None`` and an ``infeasible_reason`` (check ``point.feasible``
    before dereferencing ``point.best``).  :meth:`frontier` flattens the
    winning plan per budget into rows ready for a Figure 1/3-style table.
    """

    problem: Problem
    cluster: ClusterConfig
    points: List[SweepPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    @property
    def budgets(self) -> List[float]:
        return [point.budget for point in self.points]

    @property
    def feasible_points(self) -> List[SweepPoint]:
        return [point for point in self.points if point.feasible]

    def at(self, budget: float) -> SweepPoint:
        """The sweep point for ``budget`` (exact match on the float value)."""
        for point in self.points:
            if point.budget == budget:
                return point
        raise PlanningError(
            f"budget {budget:g} is not part of this sweep "
            f"(swept budgets: {[f'{b:g}' for b in self.budgets]})"
        )

    def best_plans(self) -> List[ExecutionPlan]:
        """The winning plan at each feasible budget, ascending budget."""
        return [point.best for point in self.feasible_points]

    def frontier(self) -> List[Dict[str, object]]:
        """The achievable tradeoff curve as flat rows (one per budget).

        Infeasible budgets appear with a ``plan`` of ``None`` so tables show
        where the achievable region ends instead of silently dropping rows.
        """
        rows: List[Dict[str, object]] = []
        for point in self.points:
            best = point.best
            if best is None:
                rows.append(
                    {
                        "budget": point.budget,
                        "plan": None,
                        "q": None,
                        "certified": None,
                        "bound_method": None,
                        "pricing": None,
                        "replication_rate": None,
                        "lower_bound": None,
                        "gap": None,
                        "total_cost": None,
                        "planning_s": None,
                    }
                )
            else:
                rows.append(
                    {
                        "budget": point.budget,
                        "plan": best.name,
                        "q": best.q,
                        "certified": best.certification_label,
                        "bound_method": best.bound_method,
                        "pricing": best.cost_pricing,
                        "replication_rate": best.replication_rate,
                        "lower_bound": best.lower_bound,
                        "gap": best.optimality_gap,
                        "total_cost": best.total_cost,
                        "planning_s": best.cost.planning_seconds,
                    }
                )
        return rows
