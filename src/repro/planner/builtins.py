"""Built-in candidate builders: every family in :mod:`repro.schemas`.

Importing this module populates :data:`repro.planner.registry.default_registry`
with one builder per problem family of the paper:

========================  =====================================================
Problem type              Candidates enumerated
========================  =====================================================
TriangleProblem           partition schema over bucket counts ``k``
TwoPathProblem            middle-node/bucket-pair schema over ``k``
SampleGraphProblem        generalized partition schema over ``k``
HammingDistanceProblem    d=1: Splitting / pair-reducers / single-reducer /
                          weight-partition grids; d=2: segment deletion and
                          Ball-2; d>2: segment deletion
MultiwayJoinProblem       Shares over chain/star/uniform share vectors
MatrixMultiplicationPr.   one-phase tilings and the two-phase chain
========================  =====================================================

Every builder yields only candidates whose **certified** maximum reducer
size fits the budget.  For all single-round graph/Hamming/matmul families
the certification is an exact combinatorial bound over the problem's full
input domain (ceil-corrected where the closed forms use real-valued
approximations); for the Shares join it is the expected hash-balanced size,
which is the quantity the paper's Section 5.5 analysis budgets as well.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.datagen.relations import RelationInstance
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import JobChain, MapReduceJob
from repro.planner.registry import PlanCandidate, default_registry, thin_parameter_sweep
from repro.problems.hamming import HammingDistanceProblem
from repro.problems.joins import JoinQuery, MultiwayJoinProblem
from repro.problems.matmul import MatrixMultiplicationProblem
from repro.problems.subgraphs import SampleGraphProblem, TwoPathProblem
from repro.problems.triangles import TriangleProblem
from repro.schemas.hamming_distance_d import BallTwoSchema, SegmentDeletionSchema
from repro.schemas.hamming_splitting import (
    PairReducersSchema,
    SingleReducerSchema,
    SplittingSchema,
)
from repro.schemas.hamming_weight import HypercubeWeightSchema
from repro.schemas.join_shares import (
    SharesSchema,
    chain_join_shares,
    star_join_shares,
)
from repro.schemas.matmul_one_phase import OnePhaseTilingSchema
from repro.schemas.matmul_two_phase import TwoPhaseMatMulAlgorithm
from repro.schemas.sample_graphs import PartitionSampleGraphSchema
from repro.schemas.triangles import PartitionTriangleSchema
from repro.schemas.two_paths import TwoPathSchema

#: Grid sizes tried for the Shares join (total reducers per share vector).
_SHARES_REDUCER_SWEEP = (2, 4, 8, 16, 27, 32, 64, 128, 256)
#: Uniform shares tried on the join's shared attributes.
_SHARES_UNIFORM_SWEEP = (2, 3, 4, 6, 8)


def _divisors(n: int) -> List[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def _static_job(family: Any) -> Any:
    """Job factory for families whose job needs no input data."""

    def factory(_inputs: Sequence[Any]) -> MapReduceJob:
        return family.job()

    return factory


# ----------------------------------------------------------------------
# Triangles (Section 4)
# ----------------------------------------------------------------------
def _triangle_certified_q(n: int, k: int) -> int:
    """Exact bound on edges at one reducer: all pairs among its ≤3 buckets."""
    nodes = min(n, 3 * math.ceil(n / k))
    return math.comb(nodes, 2)


@default_registry.register(TriangleProblem)
def triangle_candidates(
    problem: TriangleProblem, q: float
) -> Iterator[PlanCandidate]:
    n = problem.n
    feasible = [k for k in range(1, n + 1) if _triangle_certified_q(n, k) <= q]
    for k in thin_parameter_sweep(feasible):
        family = PartitionTriangleSchema(n, k)
        yield PlanCandidate(
            name=family.name,
            q=float(_triangle_certified_q(n, k)),
            replication_rate=family.replication_rate_formula(),
            job_factory=_static_job(family),
            family=family,
        )


# ----------------------------------------------------------------------
# 2-paths (Section 5.4)
# ----------------------------------------------------------------------
def _two_path_certified_q(n: int, k: int) -> int:
    """Edges at reducer [u, {i, j}]: u to a node of bucket i or j."""
    return min(n - 1, 2 * math.ceil(n / k))


@default_registry.register(TwoPathProblem)
def two_path_candidates(
    problem: TwoPathProblem, q: float
) -> Iterator[PlanCandidate]:
    n = problem.n
    feasible = [k for k in range(2, n + 1) if _two_path_certified_q(n, k) <= q]
    for k in thin_parameter_sweep(feasible):
        family = TwoPathSchema(n, k)
        yield PlanCandidate(
            name=family.name,
            q=float(_two_path_certified_q(n, k)),
            replication_rate=family.replication_rate_formula(),
            job_factory=_static_job(family),
            family=family,
        )


# ----------------------------------------------------------------------
# Arbitrary sample graphs (Section 5.2)
# ----------------------------------------------------------------------
@default_registry.register(SampleGraphProblem)
def sample_graph_candidates(
    problem: SampleGraphProblem, q: float
) -> Iterator[PlanCandidate]:
    n = problem.n
    s = problem.sample.num_nodes

    def certified(k: int) -> int:
        nodes = min(n, s * math.ceil(n / k))
        return math.comb(nodes, 2)

    feasible = [k for k in range(1, n + 1) if certified(k) <= q]
    for k in thin_parameter_sweep(feasible):
        family = PartitionSampleGraphSchema(n, problem.sample, k)
        yield PlanCandidate(
            name=family.name,
            q=float(certified(k)),
            replication_rate=family.replication_rate_formula(),
            job_factory=_static_job(family),
            family=family,
        )


# ----------------------------------------------------------------------
# Hamming distance (Section 3)
# ----------------------------------------------------------------------
@default_registry.register(HammingDistanceProblem)
def hamming_candidates(
    problem: HammingDistanceProblem, q: float
) -> Iterator[PlanCandidate]:
    if problem.distance == 1:
        yield from _hamming1_candidates(problem, q)
    else:
        yield from _hamming_d_candidates(problem, q)


def _hamming1_candidates(
    problem: HammingDistanceProblem, q: float
) -> Iterator[PlanCandidate]:
    b = problem.b
    # Splitting family: one dot per divisor c of b, reducer size exactly
    # 2^(b/c).  c=1 is the single-reducer extreme, c=b the pair-reducers
    # extreme; the named extreme schemas are also offered for discoverability.
    for c in _divisors(b):
        size = 2 ** (b // c)
        if size <= q:
            family = SplittingSchema(b, c)
            yield PlanCandidate(
                name=family.name,
                q=float(size),
                replication_rate=family.replication_rate_formula(),
                job_factory=_static_job(family),
                family=family,
            )
    if 2 <= q:
        pair = PairReducersSchema(b)
        yield PlanCandidate(
            name=pair.name,
            q=2.0,
            replication_rate=pair.replication_rate_formula(),
            job_factory=_static_job(pair),
            family=pair,
        )
    if (1 << b) <= q:
        single = SingleReducerSchema(b)
        yield PlanCandidate(
            name=single.name,
            q=float(1 << b),
            replication_rate=single.replication_rate_formula(),
            job_factory=_static_job(single),
            family=single,
        )
    # Weight-grid family (Sections 3.4/3.5): replication below 2 with large
    # reducers.  Certified with the exact binomial cell populations, and the
    # exact average replication (the 1 + d/k closed form is asymptotic).
    for num_pieces in (2, 3, 4):
        if b % num_pieces != 0:
            continue
        piece = b // num_pieces
        for cell_width in _divisors(piece):
            if cell_width == piece and num_pieces > 2:
                continue  # degenerate single-cell grid; d=2 already covers it
            family = HypercubeWeightSchema(b, num_pieces, cell_width)
            size = family.exact_max_reducer_size()
            if size <= q:
                yield PlanCandidate(
                    name=family.name,
                    q=float(size),
                    replication_rate=family.exact_replication_rate(),
                    job_factory=_static_job(family),
                    family=family,
                )


def _hamming_d_candidates(
    problem: HammingDistanceProblem, q: float
) -> Iterator[PlanCandidate]:
    b, d = problem.b, problem.distance
    for k in _divisors(b):
        if not d < k:
            continue
        size = 2 ** ((b // k) * d)
        if size > q:
            continue
        family = SegmentDeletionSchema(b, k, d)
        yield PlanCandidate(
            name=family.name,
            q=float(size),
            replication_rate=family.replication_rate_formula(),
            job_factory=_segment_deletion_job(family, d),
            family=family,
        )
    if d == 2 and b + 1 <= q:
        ball = BallTwoSchema(b)
        yield PlanCandidate(
            name=ball.name,
            q=float(b + 1),
            replication_rate=ball.replication_rate_formula(),
            # The stock Ball-2 job also emits distance-1 pairs (it covers
            # both); the planner serves the exact-distance problem.
            job_factory=_ball_two_job(ball, emit_distance=2),
            family=ball,
        )


def _segment_deletion_job(family: SegmentDeletionSchema, distance: int) -> Any:
    def factory(_inputs: Sequence[Any]) -> MapReduceJob:
        return family.job(emit_distance=distance)

    return factory


def _ball_two_job(family: BallTwoSchema, emit_distance: int) -> Any:
    def factory(_inputs: Sequence[Any]) -> MapReduceJob:
        return family.job(emit_distance=emit_distance)

    return factory


# ----------------------------------------------------------------------
# Matrix multiplication (Section 6)
# ----------------------------------------------------------------------
@default_registry.register(MatrixMultiplicationProblem)
def matmul_candidates(
    problem: MatrixMultiplicationProblem, q: float
) -> Iterator[PlanCandidate]:
    n = problem.n
    for s in _divisors(n):
        size = 2 * s * n
        if size <= q:
            family = OnePhaseTilingSchema(n, s)
            yield PlanCandidate(
                name=family.name,
                q=float(size),
                replication_rate=family.replication_rate_formula(),
                job_factory=_static_job(family),
                family=family,
            )
    best = _best_two_phase(n, q)
    if best is not None:
        # Replication rate of a multi-round algorithm: total shuffled pairs
        # over the 2n² inputs, the same normalization Section 6.3 uses when
        # comparing against the one-phase method.
        effective_rate = best.total_communication() / (2.0 * n * n)
        yield PlanCandidate(
            name=best.name,
            q=float(_two_phase_certified_q(best)),
            replication_rate=effective_rate,
            job_factory=_chain_job(best),
            rounds=2,
            family=best,
        )


def _two_phase_certified_q(algorithm: TwoPhaseMatMulAlgorithm) -> int:
    """Largest reducer of either round: 2st in phase 1, n/t sums in phase 2."""
    return max(
        algorithm.first_phase_reducer_size,
        algorithm.n // algorithm.t,
    )


def _best_two_phase(n: int, q: float) -> TwoPhaseMatMulAlgorithm | None:
    """Min-communication two-phase cubes whose reducers all fit in ``q``."""
    best: TwoPhaseMatMulAlgorithm | None = None
    for s in _divisors(n):
        for t in _divisors(n):
            algorithm = TwoPhaseMatMulAlgorithm(n, s, t)
            if _two_phase_certified_q(algorithm) > q:
                continue
            if best is None or algorithm.total_communication() < best.total_communication():
                best = algorithm
    return best


def _chain_job(algorithm: TwoPhaseMatMulAlgorithm) -> Any:
    def factory(_inputs: Sequence[Any]) -> JobChain:
        return algorithm.chain()

    return factory


# ----------------------------------------------------------------------
# Multiway joins: the Shares algorithm (Section 5.5)
# ----------------------------------------------------------------------
@default_registry.register(MultiwayJoinProblem)
def join_candidates(
    problem: MultiwayJoinProblem, q: float
) -> Iterator[PlanCandidate]:
    query = problem.query
    for shares in _share_vectors(query):
        schema = SharesSchema(query, shares, problem.domain_size)
        expected_size = schema.max_reducer_size_formula()
        if expected_size > q:
            continue
        yield PlanCandidate(
            name=schema.name,
            q=expected_size,
            replication_rate=schema.replication_rate_formula(),
            job_factory=_shares_job(schema, query),
            family=schema,
            needs_inputs=True,
        )


def _share_vectors(query: JoinQuery) -> List[Dict[str, int]]:
    """Candidate share vectors: trivial, shape-specific, uniform-on-shared."""
    vectors: List[Dict[str, int]] = [{a: 1 for a in query.attributes}]
    if query.name.startswith("chain-join"):
        for reducers in _SHARES_REDUCER_SWEEP:
            vectors.append(chain_join_shares(query.num_relations, reducers))
    elif query.name.startswith("star-join"):
        num_dimensions = query.num_relations - 1
        for reducers in _SHARES_REDUCER_SWEEP:
            vectors.append(star_join_shares(num_dimensions, reducers))
    membership: Dict[str, int] = {}
    for relation in query.relations:
        for attribute in relation.attributes:
            membership[attribute] = membership.get(attribute, 0) + 1
    shared = {a for a, count in membership.items() if count >= 2}
    for share in _SHARES_UNIFORM_SWEEP:
        vectors.append(
            {a: share if a in shared else 1 for a in query.attributes}
        )
    unique: Dict[Tuple[Tuple[str, int], ...], Dict[str, int]] = {}
    for vector in vectors:
        key = tuple(sorted(vector.items()))
        unique.setdefault(key, vector)
    return list(unique.values())


def _shares_job(schema: SharesSchema, query: JoinQuery) -> Any:
    def factory(records: Sequence[Any]) -> MapReduceJob:
        return schema.job(_relations_from_records(query, records))

    return factory


def _relations_from_records(
    query: JoinQuery, records: Sequence[Tuple[str, Tuple[int, ...]]]
) -> List[RelationInstance]:
    """Reassemble relation instances from ``(relation name, tuple)`` records."""
    fragments: Dict[str, set] = {relation.name: set() for relation in query.relations}
    for name, row in records:
        if name not in fragments:
            raise ConfigurationError(
                f"input record names relation {name!r}, which is not part of "
                f"join query {query.name!r}"
            )
        fragments[name].add(tuple(row))
    return [
        RelationInstance(
            name=relation.name,
            attributes=relation.attributes,
            tuples=tuple(sorted(fragments[relation.name])),
        )
        for relation in query.relations
    ]
