"""Built-in candidate builders: every family in :mod:`repro.schemas`.

Importing this module populates :data:`repro.planner.registry.default_registry`
with one builder per problem family of the paper:

========================  =====================================================
Problem type              Candidates enumerated
========================  =====================================================
TriangleProblem           partition schema over bucket counts ``k``
TwoPathProblem            middle-node/bucket-pair schema over ``k``
SampleGraphProblem        generalized partition schema over ``k``
HammingDistanceProblem    d=1: Splitting / pair-reducers / single-reducer /
                          weight-partition grids; d=2: segment deletion and
                          Ball-2; d>2: segment deletion
MultiwayJoinProblem       Shares over chain/star/uniform share vectors
MatrixMultiplicationPr.   one-phase tilings and the two-phase chain
WordCountProblem          direct per-word grouping (replication exactly 1)
GroupByAggregationProbl.  direct per-group aggregation, with/without combiner
========================  =====================================================

Every builder yields only candidates whose **certified** maximum reducer
size fits the budget, and every candidate carries a
:class:`~repro.planner.certify.Certification` naming the kind of promise.
For all single-round graph/Hamming/matmul families the certification is an
exact combinatorial bound over the problem's full input domain
(ceil-corrected where the closed forms use real-valued approximations).
For the Shares join it is, by default, the expected hash-balanced size —
the quantity the paper's Section 5.5 analysis budgets, which skew can
violate.  When the planner passes a
:class:`~repro.stats.profile.DatasetProfile`, the profile-aware builders
(joins, sample graphs) replace that expectation with per-bucket tail
bounds on the actual instance (exact from full histograms, Hoeffding
high-probability from samples) and additionally enumerate skew-resistant
candidates: :class:`~repro.schemas.join_shares.SkewAwareSharesSchema`
grids isolating profiled heavy hitters, and degree-balanced non-uniform
sample-graph bucketings.

Candidate *builds* — constructing the schema-family object and evaluating
its certified size and replication closed forms, which for the weight-grid
(exact binomial populations) and Shares (share-vector expectation) families
is the expensive part of planning — are routed through
:data:`repro.planner.cache.default_schema_cache`.  The cache key is the
family tag plus every parameter that determines the build, so a
:meth:`CostBasedPlanner.sweep <repro.planner.planner.CostBasedPlanner.sweep>`
over many budgets, or repeated ``plan`` calls in a benchmark loop, performs
each build exactly once.  Only the budget *filter* runs per call.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.datagen.relations import RelationInstance
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import JobChain, MapReduceJob
from repro.planner.cache import default_schema_cache
from repro.planner.certify import (
    certify_max_reducer_load,
    certify_sample_graph_load,
    exact_certification,
    expected_certification,
)
from repro.planner.registry import PlanCandidate, default_registry, thin_parameter_sweep
from repro.planner.share_opt import (
    GRID_REDUCER_SWEEP,
    GRID_SKEW_SUBSHARES,
    GRID_UNIFORM_SHARES,
    optimize_shares,
    optimize_skew_shares,
)
from repro.stats.profile import DatasetProfile
from repro.problems.grouping import GroupByAggregationProblem
from repro.problems.hamming import HammingDistanceProblem
from repro.problems.joins import JoinQuery, MultiwayJoinProblem
from repro.problems.matmul import MatrixMultiplicationProblem
from repro.problems.subgraphs import SampleGraphProblem, TwoPathProblem
from repro.problems.triangles import TriangleProblem
from repro.problems.wordcount import WordCountProblem
from repro.schemas.hamming_distance_d import BallTwoSchema, SegmentDeletionSchema
from repro.schemas.hamming_splitting import (
    PairReducersSchema,
    SingleReducerSchema,
    SplittingSchema,
)
from repro.schemas.hamming_weight import HypercubeWeightSchema
from repro.schemas.join_shares import (
    SharesSchema,
    SkewAwareSharesSchema,
    binary_join_share_grid,
    chain_join_shares,
    star_join_shares,
)
from repro.schemas.matmul_one_phase import OnePhaseTilingSchema
from repro.schemas.matmul_two_phase import TwoPhaseMatMulAlgorithm
from repro.schemas.sample_graphs import (
    PartitionSampleGraphSchema,
    degree_balanced_boundaries,
)
from repro.schemas.triangles import PartitionTriangleSchema
from repro.schemas.two_paths import TwoPathSchema

#: Grid sizes tried for the Shares join (total reducers per share vector)
#: and uniform shares tried on the join's shared attributes.  Defined in
#: :mod:`repro.planner.share_opt` so the optimizer's "never worse than the
#: grid" floor and this enumeration can never drift apart.
_SHARES_REDUCER_SWEEP = GRID_REDUCER_SWEEP
_SHARES_UNIFORM_SWEEP = GRID_UNIFORM_SHARES
#: Sub-grid shares tried for profiled heavy-hitter isolation.  Shared with
#: the skew sub-grid optimizer, whose seed pool treats these as its floor.
_SKEW_SUBSHARE_SWEEP = GRID_SKEW_SUBSHARES
#: At most this many heavy values are isolated onto dedicated sub-grids.
_MAX_HEAVY_VALUES = 6
#: Non-uniform sample-graph bucketings tried per profiled graph.
_BALANCED_BUCKET_KEEP = 12


def _divisors(n: int) -> List[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def _exact(bound: float) -> Any:
    """Exact certification for the combinatorial families' closed forms."""
    return exact_certification(
        float(bound), detail="combinatorial closed form", method="closed-form"
    )


def _static_job(family: Any) -> Any:
    """Job factory for families whose job needs no input data."""

    def factory(_inputs: Sequence[Any]) -> MapReduceJob:
        return family.job()

    return factory


# ----------------------------------------------------------------------
# Triangles (Section 4)
# ----------------------------------------------------------------------
def _triangle_certified_q(n: int, k: int) -> int:
    """Exact bound on edges at one reducer: all pairs among its ≤3 buckets."""
    nodes = min(n, 3 * math.ceil(n / k))
    return math.comb(nodes, 2)


def _build_triangle_candidate(n: int, k: int) -> PlanCandidate:
    family = PartitionTriangleSchema(n, k)
    return PlanCandidate(
        name=family.name,
        q=float(_triangle_certified_q(n, k)),
        replication_rate=family.replication_rate_formula(),
        job_factory=_static_job(family),
        family=family,
        certification=_exact(_triangle_certified_q(n, k)),
    )


@default_registry.register(TriangleProblem)
def triangle_candidates(
    problem: TriangleProblem, q: float
) -> Iterator[PlanCandidate]:
    n = problem.n
    feasible = [k for k in range(1, n + 1) if _triangle_certified_q(n, k) <= q]
    for k in thin_parameter_sweep(feasible):
        yield default_schema_cache.get(
            ("triangle-partition", n, k),
            lambda n=n, k=k: _build_triangle_candidate(n, k),
        )


# ----------------------------------------------------------------------
# 2-paths (Section 5.4)
# ----------------------------------------------------------------------
def _two_path_certified_q(n: int, k: int) -> int:
    """Edges at reducer [u, {i, j}]: u to a node of bucket i or j."""
    return min(n - 1, 2 * math.ceil(n / k))


def _build_two_path_candidate(n: int, k: int) -> PlanCandidate:
    family = TwoPathSchema(n, k)
    return PlanCandidate(
        name=family.name,
        q=float(_two_path_certified_q(n, k)),
        replication_rate=family.replication_rate_formula(),
        job_factory=_static_job(family),
        family=family,
        certification=_exact(_two_path_certified_q(n, k)),
    )


@default_registry.register(TwoPathProblem)
def two_path_candidates(
    problem: TwoPathProblem, q: float
) -> Iterator[PlanCandidate]:
    n = problem.n
    feasible = [k for k in range(2, n + 1) if _two_path_certified_q(n, k) <= q]
    for k in thin_parameter_sweep(feasible):
        yield default_schema_cache.get(
            ("two-path", n, k),
            lambda n=n, k=k: _build_two_path_candidate(n, k),
        )


# ----------------------------------------------------------------------
# Arbitrary sample graphs (Section 5.2)
# ----------------------------------------------------------------------
def _sample_graph_certified_q(n: int, s: int, k: int) -> int:
    nodes = min(n, s * math.ceil(n / k))
    return math.comb(nodes, 2)


@default_registry.register(SampleGraphProblem)
def sample_graph_candidates(
    problem: SampleGraphProblem,
    q: float,
    profile: Optional[DatasetProfile] = None,
) -> Iterator[PlanCandidate]:
    """Uniform bucketings always; degree-balanced ones when profiled.

    The uniform candidates are certified over the model's full input domain
    (every edge present).  Given an exact graph profile (see
    :func:`~repro.stats.profile.profile_graph`), the builder additionally
    enumerates *non-uniform* contiguous bucketings whose cut points balance
    the instance's endpoint mass, certified with the same exact-histogram
    path the profiled joins use — so a skewed degree sequence no longer
    forces the planner onto needlessly fine uniform grids.
    """
    n = problem.n
    sample = problem.sample
    s = sample.num_nodes

    def build(k: int) -> PlanCandidate:
        family = PartitionSampleGraphSchema(n, sample, k)
        return PlanCandidate(
            name=family.name,
            q=float(_sample_graph_certified_q(n, s, k)),
            replication_rate=family.replication_rate_formula(),
            job_factory=_static_job(family),
            family=family,
            certification=_exact(_sample_graph_certified_q(n, s, k)),
        )

    feasible = [
        k for k in range(1, n + 1) if _sample_graph_certified_q(n, s, k) <= q
    ]
    for k in thin_parameter_sweep(feasible):
        yield default_schema_cache.get(
            ("sample-graph", n, sample.name, sample.edges, k),
            lambda k=k: build(k),
        )
    if profile is not None:
        yield from _balanced_sample_graph_candidates(problem, q, profile)


def _graph_degrees(profile: DatasetProfile) -> Optional[Dict[int, int]]:
    """Per-node endpoint counts from an exact single-relation graph profile."""
    if len(profile.relations) != 1:
        return None
    relation = next(iter(profile.relations.values()))
    if set(relation.attributes) != {"u", "v"} or not relation.exact:
        return None
    degrees: Dict[int, int] = {}
    for attribute in ("u", "v"):
        for node, count in relation.attribute(attribute).histogram.items():
            degrees[node] = degrees.get(node, 0) + count
    return degrees


def _build_balanced_sample_graph_candidate(
    problem: SampleGraphProblem,
    k: int,
    boundaries: Tuple[int, ...],
    profile: DatasetProfile,
) -> PlanCandidate:
    family = PartitionSampleGraphSchema(
        problem.n, problem.sample, k, boundaries=boundaries
    )
    certification = certify_sample_graph_load(family, profile)
    return PlanCandidate(
        name=family.name,
        q=max(certification.bound, 1.0),
        replication_rate=family.replication_rate_formula(),
        job_factory=_static_job(family),
        family=family,
        certification=certification,
    )


def _balanced_sample_graph_candidates(
    problem: SampleGraphProblem, q: float, profile: DatasetProfile
) -> Iterator[PlanCandidate]:
    degrees = _graph_degrees(profile)
    if degrees is None:
        return
    n = problem.n
    fingerprint = profile.fingerprint()
    for k in thin_parameter_sweep(
        list(range(2, n + 1)), keep=_BALANCED_BUCKET_KEEP
    ):
        boundaries = degree_balanced_boundaries(degrees, n, k)
        candidate = default_schema_cache.get(
            (
                "sample-graph-balanced",
                n,
                problem.sample.name,
                problem.sample.edges,
                k,
                fingerprint,
            ),
            lambda k=k, boundaries=boundaries: _build_balanced_sample_graph_candidate(
                problem, k, boundaries, profile
            ),
        )
        if candidate.q <= q:
            yield candidate


# ----------------------------------------------------------------------
# Hamming distance (Section 3)
# ----------------------------------------------------------------------
@default_registry.register(HammingDistanceProblem)
def hamming_candidates(
    problem: HammingDistanceProblem, q: float
) -> Iterator[PlanCandidate]:
    if problem.distance == 1:
        yield from _hamming1_candidates(problem, q)
    else:
        yield from _hamming_d_candidates(problem, q)


def _build_splitting_candidate(b: int, c: int) -> PlanCandidate:
    family = SplittingSchema(b, c)
    return PlanCandidate(
        name=family.name,
        q=float(2 ** (b // c)),
        replication_rate=family.replication_rate_formula(),
        job_factory=_static_job(family),
        family=family,
        certification=_exact(2 ** (b // c)),
    )


def _build_pair_reducers_candidate(b: int) -> PlanCandidate:
    family = PairReducersSchema(b)
    return PlanCandidate(
        name=family.name,
        q=2.0,
        replication_rate=family.replication_rate_formula(),
        job_factory=_static_job(family),
        family=family,
        certification=_exact(2.0),
    )


def _build_single_reducer_candidate(b: int) -> PlanCandidate:
    family = SingleReducerSchema(b)
    return PlanCandidate(
        name=family.name,
        q=float(1 << b),
        replication_rate=family.replication_rate_formula(),
        job_factory=_static_job(family),
        family=family,
        certification=_exact(1 << b),
    )


def _build_weight_grid_candidate(
    b: int, num_pieces: int, cell_width: int
) -> PlanCandidate:
    # The expensive Hamming build: exact binomial cell populations for the
    # certified size and the exact average replication.  Cached, this runs
    # once per (b, pieces, width) across every budget of a sweep.
    family = HypercubeWeightSchema(b, num_pieces, cell_width)
    return PlanCandidate(
        name=family.name,
        q=float(family.exact_max_reducer_size()),
        replication_rate=family.exact_replication_rate(),
        job_factory=_static_job(family),
        family=family,
        certification=_exact(family.exact_max_reducer_size()),
    )


def _hamming1_candidates(
    problem: HammingDistanceProblem, q: float
) -> Iterator[PlanCandidate]:
    b = problem.b
    # Splitting family: one dot per divisor c of b, reducer size exactly
    # 2^(b/c).  c=1 is the single-reducer extreme, c=b the pair-reducers
    # extreme; the named extreme schemas are also offered for discoverability.
    for c in _divisors(b):
        if 2 ** (b // c) <= q:
            yield default_schema_cache.get(
                ("splitting", b, c),
                lambda b=b, c=c: _build_splitting_candidate(b, c),
            )
    if 2 <= q:
        yield default_schema_cache.get(
            ("hamming-pair-reducers", b),
            lambda b=b: _build_pair_reducers_candidate(b),
        )
    if (1 << b) <= q:
        yield default_schema_cache.get(
            ("hamming-single-reducer", b),
            lambda b=b: _build_single_reducer_candidate(b),
        )
    # Weight-grid family (Sections 3.4/3.5): replication below 2 with large
    # reducers.  Certified with the exact binomial cell populations, so the
    # candidate is built (through the cache) before the budget filter.
    for num_pieces in (2, 3, 4):
        if b % num_pieces != 0:
            continue
        piece = b // num_pieces
        for cell_width in _divisors(piece):
            if cell_width == piece and num_pieces > 2:
                continue  # degenerate single-cell grid; d=2 already covers it
            candidate = default_schema_cache.get(
                ("hamming-weight-grid", b, num_pieces, cell_width),
                lambda b=b, p=num_pieces, w=cell_width: _build_weight_grid_candidate(
                    b, p, w
                ),
            )
            if candidate.q <= q:
                yield candidate


def _build_segment_deletion_candidate(b: int, k: int, d: int) -> PlanCandidate:
    family = SegmentDeletionSchema(b, k, d)
    return PlanCandidate(
        name=family.name,
        q=float(2 ** ((b // k) * d)),
        replication_rate=family.replication_rate_formula(),
        job_factory=_segment_deletion_job(family, d),
        family=family,
        certification=_exact(2 ** ((b // k) * d)),
    )


def _build_ball_two_candidate(b: int) -> PlanCandidate:
    family = BallTwoSchema(b)
    return PlanCandidate(
        name=family.name,
        q=float(b + 1),
        replication_rate=family.replication_rate_formula(),
        # The stock Ball-2 job also emits distance-1 pairs (it covers
        # both); the planner serves the exact-distance problem.
        job_factory=_ball_two_job(family, emit_distance=2),
        family=family,
        certification=_exact(b + 1),
    )


def _hamming_d_candidates(
    problem: HammingDistanceProblem, q: float
) -> Iterator[PlanCandidate]:
    b, d = problem.b, problem.distance
    for k in _divisors(b):
        if not d < k:
            continue
        if 2 ** ((b // k) * d) > q:
            continue
        yield default_schema_cache.get(
            ("segment-deletion", b, k, d),
            lambda b=b, k=k, d=d: _build_segment_deletion_candidate(b, k, d),
        )
    if d == 2 and b + 1 <= q:
        yield default_schema_cache.get(
            ("hamming-ball-2", b),
            lambda b=b: _build_ball_two_candidate(b),
        )


def _segment_deletion_job(family: SegmentDeletionSchema, distance: int) -> Any:
    def factory(_inputs: Sequence[Any]) -> MapReduceJob:
        return family.job(emit_distance=distance)

    return factory


def _ball_two_job(family: BallTwoSchema, emit_distance: int) -> Any:
    def factory(_inputs: Sequence[Any]) -> MapReduceJob:
        return family.job(emit_distance=emit_distance)

    return factory


# ----------------------------------------------------------------------
# Matrix multiplication (Section 6)
# ----------------------------------------------------------------------
def _build_one_phase_candidate(n: int, s: int) -> PlanCandidate:
    family = OnePhaseTilingSchema(n, s)
    return PlanCandidate(
        name=family.name,
        q=float(2 * s * n),
        replication_rate=family.replication_rate_formula(),
        job_factory=_static_job(family),
        family=family,
        certification=_exact(2 * s * n),
    )


@default_registry.register(MatrixMultiplicationProblem)
def matmul_candidates(
    problem: MatrixMultiplicationProblem, q: float
) -> Iterator[PlanCandidate]:
    n = problem.n
    for s in _divisors(n):
        if 2 * s * n <= q:
            yield default_schema_cache.get(
                ("matmul-one-phase", n, s),
                lambda n=n, s=s: _build_one_phase_candidate(n, s),
            )
    best = _best_two_phase(n, q)
    if best is not None:
        yield default_schema_cache.get(
            ("matmul-two-phase-candidate", n, best.s, best.t),
            lambda best=best, n=n: _build_two_phase_candidate(best, n),
        )


def _build_two_phase_candidate(
    algorithm: TwoPhaseMatMulAlgorithm, n: int
) -> PlanCandidate:
    # Replication rate of a multi-round algorithm: total shuffled pairs
    # over the 2n² inputs, the same normalization Section 6.3 uses when
    # comparing against the one-phase method.
    effective_rate = algorithm.total_communication() / (2.0 * n * n)
    return PlanCandidate(
        name=algorithm.name,
        q=float(_two_phase_certified_q(algorithm)),
        replication_rate=effective_rate,
        job_factory=_chain_job(algorithm),
        rounds=2,
        family=algorithm,
        certification=_exact(_two_phase_certified_q(algorithm)),
    )


def _two_phase_certified_q(algorithm: TwoPhaseMatMulAlgorithm) -> int:
    """Largest reducer of either round: 2st in phase 1, n/t sums in phase 2."""
    return max(
        algorithm.first_phase_reducer_size,
        algorithm.n // algorithm.t,
    )


def _two_phase_cube(n: int, s: int, t: int) -> Tuple[TwoPhaseMatMulAlgorithm, int, int]:
    """One cached (algorithm, certified q, total communication) triple."""
    algorithm = TwoPhaseMatMulAlgorithm(n, s, t)
    return (
        algorithm,
        _two_phase_certified_q(algorithm),
        algorithm.total_communication(),
    )


def _best_two_phase(n: int, q: float) -> TwoPhaseMatMulAlgorithm | None:
    """Min-communication two-phase cubes whose reducers all fit in ``q``."""
    best: TwoPhaseMatMulAlgorithm | None = None
    best_communication: int | None = None
    for s in _divisors(n):
        for t in _divisors(n):
            algorithm, certified, communication = default_schema_cache.get(
                ("matmul-two-phase-cube", n, s, t),
                lambda n=n, s=s, t=t: _two_phase_cube(n, s, t),
            )
            if certified > q:
                continue
            if best_communication is None or communication < best_communication:
                best = algorithm
                best_communication = communication
    return best


def _chain_job(algorithm: TwoPhaseMatMulAlgorithm) -> Any:
    def factory(_inputs: Sequence[Any]) -> JobChain:
        return algorithm.chain()

    return factory


# ----------------------------------------------------------------------
# Multiway joins: the Shares algorithm (Section 5.5)
# ----------------------------------------------------------------------
def _query_cache_key(query: JoinQuery) -> Tuple[Any, ...]:
    """Structural identity of a join query: name plus relation schemas."""
    return (
        query.name,
        tuple(
            (relation.name, tuple(relation.attributes))
            for relation in query.relations
        ),
    )


def _build_shares_candidate(
    query: JoinQuery, shares: Dict[str, int], domain_size: int
) -> PlanCandidate:
    schema = SharesSchema(query, shares, domain_size)
    expected = schema.max_reducer_size_formula()
    return PlanCandidate(
        name=schema.name,
        q=expected,
        replication_rate=schema.replication_rate_formula(),
        job_factory=_shares_job(schema, query),
        family=schema,
        needs_inputs=True,
        certification=expected_certification(
            expected, detail="hash-balanced expectation (Section 5.5)"
        ),
    )


def _recertify_candidate(
    candidate: PlanCandidate, profile: DatasetProfile
) -> PlanCandidate:
    """Replace a Shares candidate's expected q with a profiled tail bound."""
    certification = certify_max_reducer_load(candidate.family, profile)
    return dataclasses.replace(
        candidate,
        q=max(certification.bound, 1.0),
        certification=certification,
    )


def _usable_profile(
    query: JoinQuery, profile: Optional[DatasetProfile]
) -> Optional[DatasetProfile]:
    """The profile, when it covers every relation of the query."""
    if profile is None:
        return None
    if not profile.covers([relation.name for relation in query.relations]):
        return None
    return profile


@default_registry.register(MultiwayJoinProblem)
def join_candidates(
    problem: MultiwayJoinProblem, q: float, profile: Optional[DatasetProfile] = None
) -> Iterator[PlanCandidate]:
    """Shares candidates, tail-certified and skew-hardened when profiled.

    Without a profile this is the paper's enumeration: every share vector
    whose *expected* hash-balanced reducer size fits the budget.  With a
    :class:`~repro.stats.profile.DatasetProfile` covering the query's
    relations, each vanilla candidate is re-certified with a per-bucket
    tail bound on the actual instance — candidates whose bound blows the
    budget are rejected even though their expectation fit — and two kinds
    of profile-only candidates join the enumeration, certified through the
    same path: *optimized* share vectors chosen per reducer budget by the
    Lagrangean optimizer in :mod:`repro.planner.share_opt` (never worse
    than the best fixed-grid vector under the certified bound), and
    skew-resistant variants (profiled heavy hitters isolated onto
    dedicated sub-grids).
    """
    query = problem.query
    query_key = _query_cache_key(query)
    usable = _usable_profile(query, profile)
    fingerprint = usable.fingerprint() if usable is not None else None
    for shares in _share_vectors(query):
        shares_key = tuple(sorted(shares.items()))
        candidate = default_schema_cache.get(
            ("shares", query_key, problem.domain_size, shares_key),
            lambda shares=shares: _build_shares_candidate(
                query, shares, problem.domain_size
            ),
        )
        if usable is not None:
            candidate = default_schema_cache.get(
                ("shares-cert", query_key, problem.domain_size, shares_key, fingerprint),
                lambda candidate=candidate: _recertify_candidate(candidate, usable),
            )
        if candidate.q <= q:
            yield candidate
    if usable is not None:
        yield from _optimized_share_candidates(
            problem, q, usable, query_key, fingerprint
        )
        yield from _skew_candidates(problem, q, usable, query_key, fingerprint)
        yield from _optimized_skew_candidates(
            problem, q, usable, query_key, fingerprint
        )


# -- profile-optimized share vectors ------------------------------------
def _build_optimized_shares_candidate(
    problem: MultiwayJoinProblem,
    budget: int,
    profile: DatasetProfile,
    bucket_cache: Dict[Any, Any],
) -> PlanCandidate:
    """Optimize a share vector for ``budget`` reducers, certified.

    The optimizer scores by the certified bound and hands back the
    winner's certification, so no second certification pass runs here;
    the candidate is named ``opt-shares[...]`` to stay distinguishable
    from the grid enumeration even when the optimizer lands on a grid
    point.
    """
    query = problem.query
    optimization = optimize_shares(
        query,
        budget,
        profile=profile,
        domain_size=problem.domain_size,
        bucket_cache=bucket_cache,
    )
    schema = SharesSchema(query, optimization.shares, problem.domain_size)
    schema.name = f"opt-{schema.name}"
    certification = optimization.certification
    # The caller guarantees a covering profile, so the optimizer's metric
    # was the certified bound and the winner arrives certified.
    assert certification is not None
    return PlanCandidate(
        name=schema.name,
        q=max(certification.bound, 1.0),
        replication_rate=schema.replication_rate_formula(),
        job_factory=_shares_job(schema, query),
        family=schema,
        needs_inputs=True,
        certification=certification,
    )


def _optimized_share_candidates(
    problem: MultiwayJoinProblem,
    q: float,
    profile: DatasetProfile,
    query_key: Tuple[Any, ...],
    fingerprint: int,
) -> Iterator[PlanCandidate]:
    """One optimized vector per reducer budget of the grid sweep.

    Cached under the profile fingerprint: the same (query, domain, budget)
    under a different profile is a different optimization problem and must
    never reuse a stale vector or certificate.
    """
    # The bucket-weight table is budget-independent, so the budgets of one
    # enumeration share it (it only lives for this call — cache-hit budgets
    # never rebuild anything, so there is nothing to carry across calls).
    bucket_cache: Dict[Any, Any] = {}
    for budget in _SHARES_REDUCER_SWEEP:
        candidate = default_schema_cache.get(
            ("opt-shares", query_key, problem.domain_size, budget, fingerprint),
            lambda budget=budget: _build_optimized_shares_candidate(
                problem, budget, profile, bucket_cache
            ),
        )
        if candidate.q <= q:
            yield candidate


# -- profiled heavy-hitter isolation -----------------------------------
def _profiled_skew(
    query: JoinQuery, profile: DatasetProfile
) -> Optional[Tuple[str, Tuple[int, ...]]]:
    """Pick the most skewed shared attribute and its heavy values.

    A value counts as heavy when its guaranteed lower-bound frequency in
    some relation is at least three times that column's average frequency
    (and at least 4), i.e. when hash balancing provably cannot spread it.
    Returns ``None`` when the profile shows no such value — uniform inputs
    then plan exactly as before, with no skew candidates enumerated.
    """
    membership: Dict[str, int] = {}
    for relation in query.relations:
        for attribute in relation.attributes:
            membership[attribute] = membership.get(attribute, 0) + 1
    best: Optional[Tuple[str, Tuple[int, ...]]] = None
    best_score = 0.0
    for attribute in query.attributes:
        if membership[attribute] < 2:
            continue
        found: Dict[int, float] = {}
        for relation in query.relations:
            if attribute not in relation.attributes:
                continue
            stats = profile.relation(relation.name).attribute(attribute)
            if stats.total_count == 0:
                continue
            average = stats.total_count / max(stats.distinct_estimate, 1.0)
            threshold = max(4.0, 3.0 * average)
            for value, count in stats.top_values(_MAX_HEAVY_VALUES):
                if count >= threshold:
                    found[value] = max(found.get(value, 0.0), float(count))
        if not found:
            continue
        score = max(found.values())
        if score > best_score:
            ranked = sorted(found.items(), key=lambda item: (-item[1], repr(item[0])))
            values = tuple(value for value, _ in ranked[:_MAX_HEAVY_VALUES])
            best = (attribute, values)
            best_score = score
    return best


def _build_skew_candidate(
    query: JoinQuery,
    shares: Dict[str, int],
    domain_size: int,
    skew_attribute: str,
    heavy_values: Tuple[int, ...],
    heavy_shares: Dict[str, int],
    profile: DatasetProfile,
) -> PlanCandidate:
    schema = SkewAwareSharesSchema(
        query,
        shares,
        domain_size,
        skew_attribute=skew_attribute,
        heavy_values=heavy_values,
        heavy_shares=heavy_shares,
    )
    certification = certify_max_reducer_load(schema, profile)
    return PlanCandidate(
        name=schema.name,
        q=max(certification.bound, 1.0),
        replication_rate=schema.replication_rate_formula(),
        job_factory=_shares_job(schema, query),
        family=schema,
        needs_inputs=True,
        certification=certification,
    )


def _skew_candidates(
    problem: MultiwayJoinProblem,
    q: float,
    profile: DatasetProfile,
    query_key: Tuple[Any, ...],
    fingerprint: int,
) -> Iterator[PlanCandidate]:
    query = problem.query
    selection = _profiled_skew(query, profile)
    if selection is None:
        return
    skew_attribute, heavy_values = selection
    co_occurring = tuple(
        dict.fromkeys(
            attribute
            for relation in query.relations
            if skew_attribute in relation.attributes
            for attribute in relation.attributes
            if attribute != skew_attribute
        )
    )
    if not co_occurring:
        return
    heavy_key = tuple(sorted(heavy_values, key=repr))
    for shares in _share_vectors(query):
        shares_key = tuple(sorted(shares.items()))
        for sub_share in _SKEW_SUBSHARE_SWEEP:
            heavy_shares = {attribute: sub_share for attribute in co_occurring}
            candidate = default_schema_cache.get(
                (
                    "skew-shares",
                    query_key,
                    problem.domain_size,
                    shares_key,
                    skew_attribute,
                    heavy_key,
                    sub_share,
                    fingerprint,
                ),
                lambda shares=shares, heavy_shares=heavy_shares: _build_skew_candidate(
                    query,
                    shares,
                    problem.domain_size,
                    skew_attribute,
                    heavy_values,
                    heavy_shares,
                    profile,
                ),
            )
            if candidate.q <= q:
                yield candidate


def _build_optimized_skew_candidate(
    problem: MultiwayJoinProblem,
    budget: int,
    skew_attribute: str,
    heavy_values: Tuple[int, ...],
    profile: DatasetProfile,
    bucket_cache: Dict[Any, Any],
) -> PlanCandidate:
    """Optimize a non-uniform heavy-hitter sub-grid for ``budget``.

    The optimizer's seed pool contains the uniform sub-grid sweep, so this
    candidate's certified bound is never worse than the best fixed
    ``skew-shares`` candidate built on the same main-grid vector; the
    winner's certification is reused directly.
    """
    query = problem.query
    optimization = optimize_skew_shares(
        query,
        budget,
        profile=profile,
        domain_size=problem.domain_size,
        skew_attribute=skew_attribute,
        heavy_values=heavy_values,
        bucket_cache=bucket_cache,
    )
    schema = SkewAwareSharesSchema(
        query,
        optimization.shares,
        problem.domain_size,
        skew_attribute=skew_attribute,
        heavy_values=heavy_values,
        heavy_shares=optimization.heavy_shares,
    )
    schema.name = f"opt-{schema.name}"
    certification = optimization.certification
    assert certification is not None
    return PlanCandidate(
        name=schema.name,
        q=max(certification.bound, 1.0),
        replication_rate=schema.replication_rate_formula(),
        job_factory=_shares_job(schema, query),
        family=schema,
        needs_inputs=True,
        certification=certification,
    )


def _optimized_skew_candidates(
    problem: MultiwayJoinProblem,
    q: float,
    profile: DatasetProfile,
    query_key: Tuple[Any, ...],
    fingerprint: int,
) -> Iterator[PlanCandidate]:
    """One optimized skew sub-grid per reducer budget of the grid sweep."""
    selection = _profiled_skew(problem.query, profile)
    if selection is None:
        return
    skew_attribute, heavy_values = selection
    co_occurring = any(
        attribute != skew_attribute
        for relation in problem.query.relations
        if skew_attribute in relation.attributes
        for attribute in relation.attributes
    )
    if not co_occurring:
        return
    heavy_key = tuple(sorted(heavy_values, key=repr))
    bucket_cache: Dict[Any, Any] = {}
    for budget in _SHARES_REDUCER_SWEEP:
        candidate = default_schema_cache.get(
            (
                "opt-skew-shares",
                query_key,
                problem.domain_size,
                budget,
                skew_attribute,
                heavy_key,
                fingerprint,
            ),
            lambda budget=budget: _build_optimized_skew_candidate(
                problem, budget, skew_attribute, heavy_values, profile, bucket_cache
            ),
        )
        if candidate.q <= q:
            yield candidate


def _share_vectors(query: JoinQuery) -> List[Dict[str, int]]:
    """Candidate share vectors: trivial, shape-specific, uniform-on-shared.

    Two-relation queries additionally enumerate the binary hash-join /
    skew-splitting shapes of :func:`binary_join_shares` — the shapes the
    multi-round pipeline planner's cascade rounds run on.
    """
    vectors: List[Dict[str, int]] = [{a: 1 for a in query.attributes}]
    if query.name.startswith("chain-join"):
        for reducers in _SHARES_REDUCER_SWEEP:
            vectors.append(chain_join_shares(query.num_relations, reducers))
    elif query.name.startswith("star-join"):
        num_dimensions = query.num_relations - 1
        for reducers in _SHARES_REDUCER_SWEEP:
            vectors.append(star_join_shares(num_dimensions, reducers))
    vectors.extend(binary_join_share_grid(query, _SHARES_REDUCER_SWEEP))
    membership: Dict[str, int] = {}
    for relation in query.relations:
        for attribute in relation.attributes:
            membership[attribute] = membership.get(attribute, 0) + 1
    shared = {a for a, count in membership.items() if count >= 2}
    for share in _SHARES_UNIFORM_SWEEP:
        vectors.append(
            {a: share if a in shared else 1 for a in query.attributes}
        )
    unique: Dict[Tuple[Tuple[str, int], ...], Dict[str, int]] = {}
    for vector in vectors:
        key = tuple(sorted(vector.items()))
        unique.setdefault(key, vector)
    return list(unique.values())


def _shares_job(schema: SharesSchema, query: JoinQuery) -> Any:
    def factory(records: Sequence[Any]) -> MapReduceJob:
        return schema.job(_relations_from_records(query, records))

    return factory


def _relations_from_records(
    query: JoinQuery, records: Sequence[Tuple[str, Tuple[int, ...]]]
) -> List[RelationInstance]:
    """Reassemble relation instances from ``(relation name, tuple)`` records."""
    fragments: Dict[str, set] = {relation.name: set() for relation in query.relations}
    for name, row in records:
        if name not in fragments:
            raise ConfigurationError(
                f"input record names relation {name!r}, which is not part of "
                f"join query {query.name!r}"
            )
        fragments[name].add(tuple(row))
    return [
        RelationInstance(
            name=relation.name,
            attributes=relation.attributes,
            tuples=tuple(sorted(fragments[relation.name])),
        )
        for relation in query.relations
    ]


# ----------------------------------------------------------------------
# Word count and grouping (Examples 2.4 / 2.5): trivially parallel
# ----------------------------------------------------------------------
# These candidates are *data-dependent* (word count's certified reducer size
# is the corpus's peak word multiplicity), so they are built per problem
# instance rather than through the parameter-keyed schema cache — the build
# is one linear scan, cheap next to the combinatorial families above.  They
# exist so the sweep API covers the embarrassingly parallel corner of the
# model end to end: replication is identically 1 at every feasible budget,
# the flat tradeoff "curve" the paper contrasts with Figure 1's hyperbola.
@default_registry.register(WordCountProblem)
def wordcount_candidates(
    problem: WordCountProblem, q: float
) -> Iterator[PlanCandidate]:
    peak = problem.peak_multiplicity
    if peak <= q:
        yield PlanCandidate(
            name=f"word-count-direct(peak={peak})",
            q=float(peak),
            replication_rate=1.0,
            job_factory=lambda _inputs, problem=problem: problem.job(),
            certification=exact_certification(
                float(peak), detail="corpus peak word multiplicity"
            ),
        )


@default_registry.register(GroupByAggregationProblem)
def grouping_candidates(
    problem: GroupByAggregationProblem, q: float
) -> Iterator[PlanCandidate]:
    # A group's reducer receives every domain tuple sharing its A-value:
    # exactly |B| inputs.  With a combiner the pairs crossing the shuffle
    # shrink (one partial sum per map task per group), but |B| stays the
    # certified worst case, so both variants share the same q.
    group_size = problem.b_domain_size
    if group_size <= q:
        for use_combiner in (True, False):
            suffix = "combiner" if use_combiner else "no-combiner"
            yield PlanCandidate(
                name=f"group-by-direct({suffix})",
                q=float(group_size),
                replication_rate=1.0,
                job_factory=lambda _inputs, problem=problem, u=use_combiner: (
                    problem.job(use_combiner=u)
                ),
                certification=exact_certification(
                    float(group_size), detail="one group per reducer, |B| inputs"
                ),
            )
