"""The schema registry: which constructive algorithms serve which problems.

The planner needs, for a given :class:`~repro.core.problem.Problem`, the set
of schema families that could execute it within a reducer-size budget ``q``.
That knowledge is decentralized — each family in :mod:`repro.schemas` knows
its own feasibility and closed forms — so the registry collects it behind a
single lookup keyed by problem type.

A *candidate builder* is a function ``(problem, q) -> iterable of
PlanCandidate`` registered for a problem class.  Lookup walks the problem's
MRO, so a builder registered for :class:`MultiwayJoinProblem` also serves
:class:`NaturalJoinProblem`.  The default registry is populated by
:mod:`repro.planner.builtins` with every family shipped in
:mod:`repro.schemas`; downstream code can register additional builders (new
problem families, custom schemas) without touching the planner.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.core.problem import Problem
from repro.exceptions import ConfigurationError, PlanningError
from repro.mapreduce.job import JobChain, MapReduceJob
from repro.planner.certify import Certification
from repro.stats.profile import DatasetProfile

#: A factory producing the executable work for a candidate.  It receives the
#: (possibly materialized) input records so that data-dependent jobs — the
#: Shares join, which must know the relation instances — can be built; most
#: families ignore the argument entirely.
JobFactory = Callable[[Sequence[Any]], Union[MapReduceJob, JobChain]]


@dataclass(frozen=True)
class PlanCandidate:
    """One enumerated (algorithm, parameters) point on the tradeoff plane.

    Attributes
    ----------
    name:
        Human-readable algorithm name (e.g. ``splitting(b=24, c=3)``).
    q:
        Certified maximum reducer input size over the problem's full input
        domain.  Builders must guarantee ``q <= budget`` for every candidate
        they yield; for most families this is an exact closed form, for the
        Shares join it is the expected (hash-balanced) size — unless a
        dataset profile was supplied, in which case it is the certified
        tail bound on the actual instance and ``certification.load``
        carries the per-reducer load summary behind it.
    replication_rate:
        Replication rate of the construction (closed form, exact).
    job_factory:
        Builds the executable job or job chain; see :data:`JobFactory`.
    rounds:
        Number of map-reduce rounds the candidate needs (1 for mapping
        schemas, 2 for the two-phase matrix multiplication).
    family:
        The underlying schema-family object, when one exists, so callers can
        reach ``build()`` / ``validate()`` and family-specific knobs.
    needs_inputs:
        True when ``job_factory`` must receive the fully materialized input
        records (data-dependent jobs); False when inputs may stay streamed.
    certification:
        What kind of promise ``q`` makes — an exact worst-case bound, the
        expected hash-balanced load (the paper's Section 5.5 accounting), or
        a high-probability tail bound from sampled statistics.  ``None`` is
        treated as exact by reports (the combinatorial families' closed
        forms are worst-case bounds by construction).
    """

    name: str
    q: float
    replication_rate: float
    job_factory: JobFactory
    rounds: int = 1
    family: Optional[Any] = None
    needs_inputs: bool = False
    certification: Optional[Certification] = None

    def __post_init__(self) -> None:
        if self.q <= 0:
            raise ConfigurationError(f"candidate {self.name!r} has non-positive q")
        if self.replication_rate < 0:
            raise ConfigurationError(
                f"candidate {self.name!r} has negative replication rate"
            )
        if self.rounds <= 0:
            raise ConfigurationError(f"candidate {self.name!r} has non-positive rounds")


CandidateBuilder = Callable[..., Iterable[PlanCandidate]]


def _accepts_profile(builder: CandidateBuilder) -> bool:
    """Whether a builder's signature declares a ``profile`` parameter.

    Builders come in two shapes: the original ``(problem, q)`` and the
    statistics-aware ``(problem, q, profile=None)``.  Detecting the shape at
    registration keeps both working without touching existing builders.
    """
    try:
        parameters = inspect.signature(builder).parameters
    except (TypeError, ValueError):  # builtins / C callables: assume legacy
        return False
    return "profile" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


class SchemaRegistry:
    """Mapping from problem types to candidate builders."""

    def __init__(self) -> None:
        self._builders: Dict[Type[Problem], List[Tuple[CandidateBuilder, bool]]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        problem_type: Type[Problem],
        builder: Optional[CandidateBuilder] = None,
    ) -> Callable[[CandidateBuilder], CandidateBuilder]:
        """Register a candidate builder for a problem class.

        Usable directly (``registry.register(TriangleProblem, build_fn)``)
        or as a decorator (``@registry.register(TriangleProblem)``).
        """
        if not (isinstance(problem_type, type) and issubclass(problem_type, Problem)):
            raise ConfigurationError(
                f"can only register builders for Problem subclasses, "
                f"got {problem_type!r}"
            )

        def decorator(fn: CandidateBuilder) -> CandidateBuilder:
            self._builders.setdefault(problem_type, []).append(
                (fn, _accepts_profile(fn))
            )
            return fn

        if builder is not None:
            return decorator(builder)
        return decorator

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def builders_for(self, problem: Problem) -> List[CandidateBuilder]:
        """All builders applicable to ``problem``, most-specific type first."""
        return [builder for builder, _ in self._entries_for(problem)]

    def _entries_for(
        self, problem: Problem
    ) -> List[Tuple[CandidateBuilder, bool]]:
        found: List[Tuple[CandidateBuilder, bool]] = []
        for klass in type(problem).__mro__:
            if klass in self._builders:
                found.extend(self._builders[klass])
        return found

    def supports(self, problem: Problem) -> bool:
        return bool(self.builders_for(problem))

    def problem_types(self) -> Tuple[Type[Problem], ...]:
        """Registered problem classes (for diagnostics and docs)."""
        return tuple(self._builders.keys())

    def candidates(
        self,
        problem: Problem,
        q: float,
        profile: Optional[DatasetProfile] = None,
    ) -> List[PlanCandidate]:
        """Enumerate every registered candidate within the budget ``q``.

        Candidates whose certified reducer size exceeds the budget are
        dropped here even if a builder mistakenly yields them, so the
        planner's feasibility invariant does not depend on builder
        discipline.  Duplicate names (e.g. the same family reachable through
        two builders) are collapsed, keeping the first occurrence.

        When a :class:`~repro.stats.profile.DatasetProfile` is supplied it
        is forwarded to every builder that declares a ``profile`` parameter;
        such builders re-certify their data-dependent candidates with tail
        bounds (and may enumerate profile-specific candidates like the
        skew-aware Shares grids).  Legacy two-argument builders are called
        unchanged.
        """
        if q <= 0:
            raise ConfigurationError(f"reducer-size budget q must be positive, got {q}")
        entries = self._entries_for(problem)
        if not entries:
            raise PlanningError(
                f"no schema families registered for problem type "
                f"{type(problem).__name__}; register a candidate builder for it"
            )
        seen: Dict[str, PlanCandidate] = {}
        for builder, takes_profile in entries:
            if takes_profile:
                produced = builder(problem, q, profile=profile)
            else:
                produced = builder(problem, q)
            for candidate in produced:
                if candidate.q > q + 1e-9:
                    continue
                if candidate.name not in seen:
                    seen[candidate.name] = candidate
        return list(seen.values())


#: The registry the default planner uses; populated by
#: :mod:`repro.planner.builtins` on package import.
default_registry = SchemaRegistry()


def thin_parameter_sweep(values: Sequence[int], keep: int = 32) -> List[int]:
    """Reduce a long sorted parameter sweep to a representative subset.

    Always keeps the two endpoints (the extremes of the tradeoff) and
    subsamples the interior geometrically, so enumeration stays cheap even
    for problems whose natural parameter ranges over thousands of values.
    """
    ordered = sorted(set(values))
    if len(ordered) <= keep or keep < 2:
        return ordered
    kept = {ordered[0], ordered[-1]}
    # Geometric interior subsample between the endpoints.
    low, high = ordered[0], ordered[-1]
    ratio = (high / max(low, 1)) ** (1.0 / (keep - 1))
    target = float(max(low, 1))
    for _ in range(keep):
        target *= ratio
        # Snap to the nearest actually-available value.
        nearest = min(ordered, key=lambda value: abs(value - target))
        kept.add(nearest)
    return sorted(kept)
