"""Optimal fractional edge covers of query hypergraphs (Section 5.5).

The multiway-join coverage bound ``g(q) = q^ρ`` uses the optimal fractional
edge cover value ρ of the query hypergraph (Atserias–Grohe–Marx; refs. [6]
and [10] in the paper).  The linear program is

    minimize   Σ_e x_e
    subject to Σ_{e ∋ v} x_e >= 1   for every attribute v
               x_e >= 0

(one constraint per attribute/node; one variable per relation/hyperedge).

The paper also presents a relaxed program (one aggregate constraint
``Σ_e a_e·x_e >= S``); we implement the standard per-node AGM program, which
yields the ρ values the paper actually uses for its examples (e.g. chain
joins: ρ = ⌈N/2⌉; triangles: ρ = 3/2; star joins: ρ = N).

The primary solver is :func:`scipy.optimize.linprog`; a small pure-Python
vertex-enumeration fallback is included so the result does not silently
depend on scipy being importable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import BoundDerivationError
from repro.problems.joins import JoinQuery


@dataclass(frozen=True)
class FractionalEdgeCover:
    """An optimal fractional edge cover: ρ plus the per-relation weights."""

    value: float
    weights: Dict[str, float]

    def as_row(self) -> Dict[str, float]:
        row = {"rho": self.value}
        row.update({f"x[{name}]": weight for name, weight in self.weights.items()})
        return row


def fractional_edge_cover(query: JoinQuery, solver: str = "auto") -> FractionalEdgeCover:
    """Compute the optimal fractional edge cover of a join query.

    Parameters
    ----------
    query:
        The join query whose hypergraph is covered.
    solver:
        ``"scipy"`` to require scipy, ``"exact"`` to force the pure-Python
        fallback (exact on small queries), or ``"auto"`` (default) to try
        scipy first and fall back.
    """
    if solver not in ("auto", "scipy", "exact"):
        raise BoundDerivationError(f"unknown solver {solver!r}")
    if solver in ("auto", "scipy"):
        try:
            return _solve_with_scipy(query)
        except ImportError:
            if solver == "scipy":
                raise BoundDerivationError("scipy is required but not importable")
    return _solve_exact(query)


def _solve_with_scipy(query: JoinQuery) -> FractionalEdgeCover:
    """Solve the covering LP with scipy.optimize.linprog (HiGHS)."""
    from scipy.optimize import linprog

    relations = list(query.relations)
    attributes = list(query.attributes)
    num_edges = len(relations)
    # linprog minimizes c @ x subject to A_ub @ x <= b_ub; our constraints are
    # "sum over covering edges >= 1", i.e. -A @ x <= -1.
    costs = [1.0] * num_edges
    constraint_matrix: List[List[float]] = []
    for attribute in attributes:
        row = [
            -1.0 if attribute in relation.attributes else 0.0 for relation in relations
        ]
        constraint_matrix.append(row)
    bounds_vector = [-1.0] * len(attributes)
    result = linprog(
        c=costs,
        A_ub=constraint_matrix,
        b_ub=bounds_vector,
        bounds=[(0.0, None)] * num_edges,
        method="highs",
    )
    if not result.success:
        raise BoundDerivationError(
            f"fractional edge cover LP failed for query {query.name!r}: {result.message}"
        )
    weights = {
        relation.name: float(weight) for relation, weight in zip(relations, result.x)
    }
    return FractionalEdgeCover(value=float(result.fun), weights=weights)


def _solve_exact(query: JoinQuery, grid: int = 4) -> FractionalEdgeCover:
    """Pure-Python fallback solver.

    The optimal fractional edge cover of a hypergraph with ``E`` edges always
    has an optimal solution with entries that are multiples of ``1/2`` when
    every edge has at most two attributes shared with the rest, and in
    general rational entries with small denominators.  For the small query
    shapes used in this library we search the grid of multiples of
    ``1/grid`` in [0, 1] per edge (weights above 1 are never needed, since
    capping a weight at 1 already covers all of its attributes).
    """
    relations = list(query.relations)
    attributes = list(query.attributes)
    steps = [value / grid for value in range(grid + 1)]
    best_value: Optional[float] = None
    best_weights: Optional[Tuple[float, ...]] = None
    for combination in itertools.product(steps, repeat=len(relations)):
        if best_value is not None and sum(combination) >= best_value:
            continue
        feasible = True
        for attribute in attributes:
            coverage = sum(
                weight
                for weight, relation in zip(combination, relations)
                if attribute in relation.attributes
            )
            if coverage < 1.0 - 1e-9:
                feasible = False
                break
        if feasible:
            best_value = sum(combination)
            best_weights = combination
    if best_value is None or best_weights is None:
        raise BoundDerivationError(
            f"no feasible fractional edge cover found for query {query.name!r}"
        )
    weights = {
        relation.name: weight for relation, weight in zip(relations, best_weights)
    }
    return FractionalEdgeCover(value=best_value, weights=weights)


def agm_output_bound(query: JoinQuery, relation_sizes: Dict[str, float]) -> float:
    """The AGM bound ``|O| <= Π_e |R_e|^{x_e}`` for given relation sizes.

    Uses the optimal fractional edge cover weights; this is the "size of
    output of multiway join in the general case" formula at the end of
    Section 5.5.2.
    """
    cover = fractional_edge_cover(query)
    bound = 1.0
    for relation in query.relations:
        size = relation_sizes.get(relation.name)
        if size is None:
            raise BoundDerivationError(
                f"no size supplied for relation {relation.name!r}"
            )
        bound *= float(size) ** cover.weights[relation.name]
    return bound


def edge_cover_integral(query: JoinQuery) -> int:
    """The smallest *integral* edge cover (number of relations covering all attributes).

    The paper notes that when ``ρ1`` edges suffice to cover all nodes and
    this is minimal, ρ equals ρ1; this helper computes that integral value
    for comparison and for tests of that special case.
    """
    relations = list(query.relations)
    attributes = set(query.attributes)
    for size in range(1, len(relations) + 1):
        for subset in itertools.combinations(relations, size):
            covered = set()
            for relation in subset:
                covered.update(relation.attributes)
            if covered >= attributes:
                return size
    raise BoundDerivationError(
        f"query {query.name!r} has attributes not covered by any relation"
    )
