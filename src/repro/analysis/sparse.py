"""Sparse-data adjustments (Sections 2.3, 4.2 and 5.3).

The model's bounds are stated over the *complete* input domain.  When only a
random fraction of the potential inputs is actually present, a reducer
assigned ``q_t`` potential inputs receives about ``q_t · x`` actual inputs,
where ``x`` is the presence probability.  The paper exploits this to restate
the graph bounds in terms of the number of present edges ``m``: choosing the
target ``q_t = q·n(n-1)/(2m)`` makes the expected actual load ``q``.

This module packages those conversions plus a concentration check that the
paper waves at ("a vanishingly small chance of significant deviation for
large q"): a Chernoff-style tail bound on the probability that a reducer
exceeds its intended actual load.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def presence_probability(num_present: int, num_potential: int) -> float:
    """Fraction ``x`` of potential inputs that are actually present."""
    if num_potential <= 0:
        raise ConfigurationError("the potential-input count must be positive")
    if not 0 <= num_present <= num_potential:
        raise ConfigurationError(
            f"present count {num_present} outside [0, {num_potential}]"
        )
    return num_present / num_potential


def target_reducer_size(q_actual: float, presence: float) -> float:
    """``q_t = q / x``: potential inputs to assign so the expected load is q.

    Section 2.3: "if we know the probability of an input being present is x,
    and we can tolerate q1 real inputs at a reducer, then we can use
    q = q1/x".
    """
    if q_actual <= 0:
        raise ConfigurationError("q must be positive")
    if not 0.0 < presence <= 1.0:
        raise ConfigurationError("presence probability must be in (0, 1]")
    return q_actual / presence


def edge_target_reducer_size(q_actual: float, n: int, m: int) -> float:
    """Section 4.2's ``q_t = q·n(n-1)/(2m)`` for m-edge graphs on n nodes."""
    possible = n * (n - 1) / 2.0
    if m <= 0 or m > possible:
        raise ConfigurationError(f"edge count m={m} outside (0, {possible}]")
    return target_reducer_size(q_actual, m / possible)


def sparse_replication_lower_bound(
    dense_bound_at, q_actual: float, presence: float
) -> float:
    """Re-evaluate a dense-domain bound at the scaled target reducer size.

    ``dense_bound_at`` is the bound as a function of the *potential* reducer
    size; the sparse bound is its value at ``q_t = q/x``.  For the triangle
    bound ``n/√(2·q_t)`` this reproduces the ``Ω(√(m/q))`` form.
    """
    return float(dense_bound_at(target_reducer_size(q_actual, presence)))


def overload_probability(q_target_actual: float, tolerance_factor: float) -> float:
    """Chernoff upper bound on P[actual load > tolerance_factor · expected].

    For a reducer whose expected actual load is ``μ = q_target_actual`` and a
    tolerance ``(1+δ) = tolerance_factor``, the multiplicative Chernoff bound
    gives ``P <= exp(-δ²μ / (2+δ))``.  The paper's "lower the target by a
    factor of 2" remark corresponds to ``tolerance_factor = 2``.
    """
    if q_target_actual <= 0:
        raise ConfigurationError("the expected load must be positive")
    if tolerance_factor <= 1.0:
        return 1.0
    delta = tolerance_factor - 1.0
    exponent = -(delta * delta) * q_target_actual / (2.0 + delta)
    return math.exp(exponent)


def safety_margin_for_confidence(q_actual: float, failure_probability: float) -> float:
    """Factor by which to lower the target so overload is unlikely.

    Solves the Chernoff bound for δ given the desired failure probability,
    returning ``1/(1+δ)`` — multiply the target ``q_t`` by this factor so
    that the chance any single reducer exceeds ``q_actual`` is at most the
    requested probability.
    """
    if q_actual <= 0:
        raise ConfigurationError("q must be positive")
    if not 0.0 < failure_probability < 1.0:
        raise ConfigurationError("failure probability must be in (0, 1)")
    # Solve delta^2 * mu / (2 + delta) = ln(1/p) for delta, where the mean
    # after scaling is mu = q_actual / (1 + delta).  A few fixed-point
    # iterations on the closed-form quadratic solution converge quickly.
    log_term = math.log(1.0 / failure_probability)
    mu = float(q_actual)
    delta = 0.0
    for _ in range(8):
        # Quadratic in delta: mu*delta^2 - log_term*delta - 2*log_term = 0.
        discriminant = log_term * log_term + 8.0 * mu * log_term
        delta = (log_term + math.sqrt(discriminant)) / (2.0 * mu)
        mu = q_actual / (1.0 + delta)
    return 1.0 / (1.0 + delta)
