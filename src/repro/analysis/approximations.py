"""Numerical approximations the paper leans on (Stirling, binomials).

Section 3.4 uses Stirling's approximation of the central binomial
coefficient to estimate how many strings fall in the most populous weight
cell; Section 3.6 uses Stirling's factorial approximation to simplify the
``C(k, d)`` replication rate.  These helpers expose both the exact and the
approximate forms so tests can verify the approximation quality the paper
implicitly assumes.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def stirling_factorial(n: float) -> float:
    """Stirling's approximation ``n! ≈ √(2πn) · (n/e)^n``."""
    if n < 0:
        raise ConfigurationError("factorial approximation needs n >= 0")
    if n == 0:
        return 1.0
    return math.sqrt(2.0 * math.pi * n) * (n / math.e) ** n


def central_binomial_approx(n: int) -> float:
    """Stirling form of ``C(n, n/2) ≈ 2^n / √(πn/2)`` (the paper's 2^n/√(2πn)·... form).

    The paper states the count of weight-``n/2`` strings among ``2^n`` as
    ``2^n / √(2π·n)·√2``; algebraically ``C(n, n/2) ≈ 2^n·√(2/(πn))``.
    """
    if n <= 0:
        raise ConfigurationError("central binomial approximation needs n > 0")
    return 2.0 ** n * math.sqrt(2.0 / (math.pi * n))


def central_binomial_exact(n: int) -> int:
    """Exact central binomial coefficient ``C(n, floor(n/2))``."""
    if n < 0:
        raise ConfigurationError("binomial coefficient needs n >= 0")
    return math.comb(n, n // 2)


def binomial_tail(n: int, low: int, high: int) -> int:
    """Sum of binomial coefficients ``C(n, w)`` for ``low <= w <= high``."""
    if n < 0:
        raise ConfigurationError("binomial sums need n >= 0")
    low = max(low, 0)
    high = min(high, n)
    if high < low:
        return 0
    return sum(math.comb(n, w) for w in range(low, high + 1))


def log2_binomial(n: int, k: int) -> float:
    """``log2 C(n, k)`` computed stably via lgamma."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2.0)


def falling_factorial(n: int, k: int) -> int:
    """``n · (n-1) · ... · (n-k+1)`` — the number of injective k-tuples."""
    if k < 0:
        raise ConfigurationError("falling factorial needs k >= 0")
    result = 1
    for offset in range(k):
        result *= n - offset
    return result


def approx_equal(actual: float, expected: float, relative_tolerance: float = 0.1) -> bool:
    """Whether two positive quantities agree within a relative tolerance.

    Used by tests that check "same to within a constant factor"-style claims
    with an explicit tolerance rather than an asymptotic argument.
    """
    if expected == 0:
        return abs(actual) <= relative_tolerance
    return abs(actual - expected) <= relative_tolerance * abs(expected)
