"""Closed-form lower bounds on replication rate: every row of Table 1.

Each function returns the lower bound on ``r`` as a function of the reducer
size ``q`` and the problem parameters, exactly as printed in Table 1 of the
paper.  Where useful a companion function builds the corresponding
:class:`~repro.core.recipe.LowerBoundRecipe` so the bound can also be derived
generically from |I|, |O| and g(q) — tests check the two paths agree.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.recipe import LowerBoundRecipe
from repro.exceptions import ConfigurationError
from repro.problems.hamming import hamming_g
from repro.problems.joins import JoinQuery
from repro.problems.matmul import matmul_g
from repro.problems.triangles import triangle_g


# ----------------------------------------------------------------------
# Hamming distance 1 (Section 3.2, Table 1 row 1)
# ----------------------------------------------------------------------
def hamming1_lower_bound(b: int, q: float) -> float:
    """``r >= b / log2 q`` for the Hamming-distance-1 problem."""
    if b <= 0:
        raise ConfigurationError("b must be positive")
    if q < 2:
        return float("inf")
    return max(1.0, b / math.log2(q))


def hamming1_recipe(b: int) -> LowerBoundRecipe:
    """Recipe with |I| = 2^b, |O| = (b/2)·2^b, g(q) = (q/2)·log2 q."""
    return LowerBoundRecipe(
        problem_name=f"hamming-distance-1(b={b})",
        num_inputs=2.0 ** b,
        num_outputs=(b / 2.0) * 2.0 ** b,
        g=hamming_g,
    )


# ----------------------------------------------------------------------
# Triangles (Section 4.1, Table 1 row 2)
# ----------------------------------------------------------------------
def triangle_lower_bound(n: int, q: float) -> float:
    """``r >= n / √(2q)`` for triangle finding over n nodes."""
    if n < 3:
        raise ConfigurationError("triangle finding needs n >= 3")
    if q <= 0:
        return float("inf")
    return max(1.0, n / math.sqrt(2.0 * q))


def triangle_recipe(n: int) -> LowerBoundRecipe:
    """Recipe with |I| = n²/2, |O| = n³/6, g(q) = (√2/3)·q^{3/2}."""
    return LowerBoundRecipe(
        problem_name=f"triangles(n={n})",
        num_inputs=n * n / 2.0,
        num_outputs=n ** 3 / 6.0,
        g=triangle_g,
    )


def triangle_lower_bound_sparse(m: int, q: float) -> float:
    """Section 4.2's sparse form ``r = Ω(√(m/q))`` for m-edge data graphs."""
    if q <= 0:
        return float("inf")
    return max(1.0, math.sqrt(m / q))


# ----------------------------------------------------------------------
# Alon-class sample graphs (Section 5.2, Table 1 row 3)
# ----------------------------------------------------------------------
def alon_lower_bound(n: int, s: int, q: float) -> float:
    """``r = Ω((n/√q)^{s-2})`` for an s-node Alon-class sample graph."""
    if s < 2:
        raise ConfigurationError("sample graphs need at least 2 nodes")
    if q <= 0:
        return float("inf")
    return max(1.0, (n / math.sqrt(q)) ** (s - 2))


def alon_lower_bound_edges(m: int, s: int, q: float) -> float:
    """Section 5.3's edge form ``r = Ω((√(m/q))^{s-2})``."""
    if q <= 0:
        return float("inf")
    return max(1.0, math.sqrt(m / q) ** (s - 2))


def alon_recipe(n: int, s: int) -> LowerBoundRecipe:
    """Recipe with |I| = C(n,2), |O| = n^s (order), g(q) = q^{s/2}."""
    return LowerBoundRecipe(
        problem_name=f"alon-sample-graph(n={n}, s={s})",
        num_inputs=n * (n - 1) / 2.0,
        num_outputs=float(n) ** s,
        g=lambda q: float(q) ** (s / 2.0),
    )


# ----------------------------------------------------------------------
# 2-paths (Section 5.4.1, Table 1 row 4)
# ----------------------------------------------------------------------
def two_path_lower_bound(n: int, q: float) -> float:
    """``r >= 2n/q``, replaced by the trivial bound 1 when it dips below 1."""
    if n < 3:
        raise ConfigurationError("2-path finding needs n >= 3")
    if q <= 0:
        return float("inf")
    return max(1.0, 2.0 * n / q)


def two_path_recipe(n: int) -> LowerBoundRecipe:
    """Recipe with |I| = n²/2, |O| = n³/2, g(q) = q²/2."""
    return LowerBoundRecipe(
        problem_name=f"two-paths(n={n})",
        num_inputs=n * n / 2.0,
        num_outputs=n ** 3 / 2.0,
        g=lambda q: q * q / 2.0,
    )


# ----------------------------------------------------------------------
# Multiway joins (Section 5.5.1, Table 1 row 5)
# ----------------------------------------------------------------------
def multiway_join_lower_bound(
    n: int, num_attributes: int, rho: float, q: float
) -> float:
    """``r >= n^{m-2} / q^{ρ-1}`` for a join with m attributes over domain n."""
    if num_attributes < 2:
        raise ConfigurationError("a join needs at least 2 attributes")
    if rho < 1:
        raise ConfigurationError("the fractional edge cover value is at least 1")
    if q <= 0:
        return float("inf")
    return max(1.0, n ** (num_attributes - 2) / q ** (rho - 1.0))


def chain_join_lower_bound(n: int, num_relations: int, q: float) -> float:
    """Chain-join specialization ``r >= (n/√q)^{N-1}`` (Section 5.5.2)."""
    if num_relations < 2:
        raise ConfigurationError("a chain join needs at least two relations")
    if q <= 0:
        return float("inf")
    return max(1.0, (n / math.sqrt(q)) ** (num_relations - 1))


def uniform_arity_join_lower_bound(
    n: int, num_attributes: int, num_atoms: int, arity: int, q: float
) -> float:
    """``r >= n^{m-α} / q^{s/α - 1}`` for joins of s relations of equal arity α."""
    if arity < 2:
        raise ConfigurationError("relations must have arity at least 2")
    if q <= 0:
        return float("inf")
    rho = num_atoms / arity
    return max(1.0, n ** (num_attributes - arity) / q ** (rho - 1.0))


def star_join_lower_bound(
    fact_size: float, dimension_size: float, num_dimensions: int, q: float
) -> float:
    """Section 5.5.2's star-join bound ``N·d0·(N·d0/q)^{N-1} / (f + N·d0)``."""
    if num_dimensions < 1:
        raise ConfigurationError("a star join needs at least one dimension table")
    if q <= 0:
        return float("inf")
    N = num_dimensions
    d0 = dimension_size
    return N * d0 * (N * d0 / q) ** (N - 1) / (fact_size + N * d0)


def multiway_join_recipe(query: JoinQuery, domain_size: int, rho: Optional[float] = None) -> LowerBoundRecipe:
    """Recipe with |I| ≈ n², |O| = n^m, g(q) = q^ρ (constant factors dropped)."""
    if rho is None:
        from repro.analysis.fractional_cover import fractional_edge_cover

        rho = fractional_edge_cover(query).value
    m = query.num_attributes
    return LowerBoundRecipe(
        problem_name=f"{query.name}(n={domain_size})",
        num_inputs=float(domain_size) ** 2,
        num_outputs=float(domain_size) ** m,
        g=lambda q, rho=rho: float(q) ** rho,
    )


# ----------------------------------------------------------------------
# Matrix multiplication (Section 6.1, Table 1 row 6)
# ----------------------------------------------------------------------
def matmul_lower_bound(n: int, q: float) -> float:
    """``r >= 2n²/q`` for one-round n×n matrix multiplication."""
    if n <= 0:
        raise ConfigurationError("matrix dimension must be positive")
    if q <= 0:
        return float("inf")
    return max(1.0, 2.0 * n * n / q)


def matmul_recipe(n: int) -> LowerBoundRecipe:
    """Recipe with |I| = 2n², |O| = n², g(q) = q²/(4n²)."""
    return LowerBoundRecipe(
        problem_name=f"matrix-multiplication(n={n})",
        num_inputs=2.0 * n * n,
        num_outputs=float(n * n),
        g=lambda q: matmul_g(q, n),
    )
