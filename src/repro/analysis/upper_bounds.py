"""Closed-form upper bounds on replication rate: every row of Table 2.

These are the replication rates achieved by the constructive algorithms of
the paper (implemented in :mod:`repro.schemas`), expressed as functions of
the reducer size ``q`` and the problem parameters.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError
from repro.schemas.join_shares import (
    chain_join_replication_upper_bound,
    star_join_replication_upper_bound,
)


# ----------------------------------------------------------------------
# Hamming distance 1 (Section 3.3, Table 2 row 1)
# ----------------------------------------------------------------------
def hamming1_upper_bound(b: int, q: float) -> float:
    """``r = b / log2 q`` achieved by the Splitting algorithm when log2 q | b.

    For general ``q`` the achievable rate is ``ceil(b / floor(log2 q))``
    (round down the reducer exponent to a divisor); the paper's table quotes
    the idealized ``b / log2 q`` which we return here.
    """
    if b <= 0:
        raise ConfigurationError("b must be positive")
    if q < 2:
        return float("inf")
    return max(1.0, b / math.log2(q))


def hamming1_achievable_upper_bound(b: int, q: float) -> float:
    """The rate actually achievable for arbitrary q with the Splitting family.

    Choose the largest segment count ``c`` dividing ``b`` such that the
    reducer size ``2^{b/c}`` does not exceed ``q``; the replication rate is
    that ``c``.  Returns infinity when even ``c = b`` (reducer size 2) does
    not fit.
    """
    if q < 2:
        return float("inf")
    feasible = [
        c for c in range(1, b + 1) if b % c == 0 and 2 ** (b // c) <= q
    ]
    if not feasible:
        return float("inf")
    return float(min(feasible))


def weight_partition_upper_bound(b: int, cell_width: int, dimensions: int = 2) -> float:
    """``r = 1 + d/k`` for the Section 3.4/3.5 weight-partition algorithms."""
    if cell_width <= 0:
        raise ConfigurationError("cell width k must be positive")
    return 1.0 + dimensions / cell_width


def hamming_d_upper_bound(num_segments: int, distance: int) -> float:
    """``r = C(k, d) ≈ (ek/d)^d`` for the Section 3.6 distance-d algorithm."""
    if distance <= 0 or distance >= num_segments:
        raise ConfigurationError("need 0 < d < k for segment deletion")
    return float(math.comb(num_segments, distance))


# ----------------------------------------------------------------------
# Triangles and sample graphs (Sections 4.2 and 5.3, Table 2 rows 2-3)
# ----------------------------------------------------------------------
def triangle_upper_bound(n: int, q: float) -> float:
    """``r = O(n/√q)``; the partition schema achieves ``3/√2 · n/√(2q)``.

    We report the explicit constant of our construction (k buckets with
    ``q = C(3n/k, 2)`` per reducer gives ``r = k ≈ 3n/√(2q)``).
    """
    if q <= 0:
        return float("inf")
    return max(1.0, 3.0 * n / math.sqrt(2.0 * q))


def triangle_upper_bound_edges(m: int, q: float) -> float:
    """Edge form ``r = O(√(m/q))`` for sparse graphs (refs. [2, 21])."""
    if q <= 0:
        return float("inf")
    return max(1.0, 3.0 * math.sqrt(m / (2.0 * q)))


def alon_upper_bound_edges(m: int, s: int, q: float) -> float:
    """``r = O((√(m/q))^{s-2})`` for Alon-class sample graphs (from [2])."""
    if q <= 0:
        return float("inf")
    return max(1.0, math.sqrt(m / q) ** (s - 2))


# ----------------------------------------------------------------------
# 2-paths (Section 5.4.2, Table 2 row 4)
# ----------------------------------------------------------------------
def two_path_upper_bound(n: int, q: float) -> float:
    """``r ≈ 2k = 4n/q`` achieved by the [u, {i, j}] schema with q = 2n/k.

    The paper's Table 2 quotes ``O(2n/q)``; the construction's exact rate is
    ``2(k-1)`` with ``k = 2n/q``, i.e. about twice the lower bound.
    """
    if q <= 0:
        return float("inf")
    k = max(2.0, 2.0 * n / q)
    return 2.0 * (k - 1.0)


# ----------------------------------------------------------------------
# Multiway joins (Section 5.5.2, Table 2 row 5)
# ----------------------------------------------------------------------
def chain_join_upper_bound(n: int, num_relations: int, q: float) -> float:
    """``r = (n/√q)^{N-1}`` for chain joins (result from [1])."""
    return chain_join_replication_upper_bound(n, q, num_relations)


def star_join_upper_bound(
    fact_size: float, dimension_size: float, num_dimensions: int, q: float
) -> float:
    """Star-join upper bound from Section 5.5.2 (shares algorithm of [1])."""
    return star_join_replication_upper_bound(fact_size, dimension_size, q, num_dimensions)


# ----------------------------------------------------------------------
# Matrix multiplication (Section 6.2, Table 2 row 6)
# ----------------------------------------------------------------------
def matmul_upper_bound(n: int, q: float) -> float:
    """``r = 2n²/q`` for ``2n <= q <= 2n²``, achieved by square tiling."""
    if n <= 0:
        raise ConfigurationError("matrix dimension must be positive")
    if q < 2 * n:
        return float("inf")
    return max(1.0, 2.0 * n * n / q)
