"""Bound formulas, table regeneration, fractional edge covers, sparse scaling."""

from repro.analysis.approximations import (
    approx_equal,
    binomial_tail,
    central_binomial_approx,
    central_binomial_exact,
    falling_factorial,
    log2_binomial,
    stirling_factorial,
)
from repro.analysis.fractional_cover import (
    FractionalEdgeCover,
    agm_output_bound,
    edge_cover_integral,
    fractional_edge_cover,
)
from repro.analysis.sparse import (
    edge_target_reducer_size,
    overload_probability,
    presence_probability,
    safety_margin_for_confidence,
    sparse_replication_lower_bound,
    target_reducer_size,
)
from repro.analysis.tables import (
    Table1Row,
    Table2Row,
    format_table,
    table1_rows,
    table2_rows,
)

__all__ = [
    "FractionalEdgeCover",
    "Table1Row",
    "Table2Row",
    "agm_output_bound",
    "approx_equal",
    "binomial_tail",
    "central_binomial_approx",
    "central_binomial_exact",
    "edge_cover_integral",
    "edge_target_reducer_size",
    "falling_factorial",
    "format_table",
    "fractional_edge_cover",
    "log2_binomial",
    "overload_probability",
    "presence_probability",
    "safety_margin_for_confidence",
    "sparse_replication_lower_bound",
    "stirling_factorial",
    "table1_rows",
    "table2_rows",
    "target_reducer_size",
]
