"""Programmatic regeneration of Table 1 and Table 2 of the paper.

Each row couples the symbolic formulas printed in the paper with callables
that evaluate them for concrete parameters, so the benchmark harness can
print the same rows the paper reports and the tests can cross-check the
formulas against the generic recipe and the constructive schemas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import lower_bounds, upper_bounds


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: problem, |I|, |O|, g(q), and the lower bound."""

    problem: str
    num_inputs: str
    num_outputs: str
    g_formula: str
    lower_bound_formula: str
    evaluate: Callable[[float], float]

    def as_dict(self) -> Dict[str, str]:
        return {
            "Problem": self.problem,
            "|I|": self.num_inputs,
            "|O|": self.num_outputs,
            "g(q)": self.g_formula,
            "Lower bound on r": self.lower_bound_formula,
        }


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: problem and its representative upper bound."""

    problem: str
    upper_bound_formula: str
    evaluate: Callable[[float], float]

    def as_dict(self) -> Dict[str, str]:
        return {
            "Problem": self.problem,
            "Upper bound on r": self.upper_bound_formula,
        }


def table1_rows(
    b: int = 20,
    n_triangle: int = 1000,
    n_sample: int = 1000,
    sample_nodes: int = 4,
    n_two_path: int = 1000,
    n_join: int = 100,
    join_attributes: int = 4,
    join_rho: float = 2.0,
    n_matmul: int = 100,
) -> List[Table1Row]:
    """Build Table 1 with concrete parameters for numeric evaluation.

    The symbolic columns match the paper exactly; ``evaluate(q)`` plugs the
    chosen parameters into the lower-bound formula of each row.
    """
    return [
        Table1Row(
            problem=f"Hamming-Distance-1, b-bit strings (b={b})",
            num_inputs="2^b",
            num_outputs="(b/2)·2^b",
            g_formula="(q/2)·log2 q",
            lower_bound_formula="b / log2 q",
            evaluate=lambda q: lower_bounds.hamming1_lower_bound(b, q),
        ),
        Table1Row(
            problem=f"Triangle-Finding, n nodes (n={n_triangle})",
            num_inputs="n²/2",
            num_outputs="n³/6",
            g_formula="(√2/3)·q^(3/2)",
            lower_bound_formula="n / √(2q)",
            evaluate=lambda q: lower_bounds.triangle_lower_bound(n_triangle, q),
        ),
        Table1Row(
            problem=(
                f"Sample graph (s={sample_nodes} nodes) in Alon class "
                f"(n={n_sample})"
            ),
            num_inputs="C(n,2)",
            num_outputs="n^s",
            g_formula="q^(s/2)",
            lower_bound_formula="(n/√q)^(s-2)",
            evaluate=lambda q: lower_bounds.alon_lower_bound(n_sample, sample_nodes, q),
        ),
        Table1Row(
            problem=f"2-Paths in n-node graph (n={n_two_path})",
            num_inputs="C(n,2)",
            num_outputs="n³/2",
            g_formula="C(q,2)",
            lower_bound_formula="2n/q",
            evaluate=lambda q: lower_bounds.two_path_lower_bound(n_two_path, q),
        ),
        Table1Row(
            problem=(
                f"Multiway join ({join_attributes} vars, ρ={join_rho}, "
                f"n={n_join})"
            ),
            num_inputs="N·C(n,2)",
            num_outputs="C(n,m)",
            g_formula="q^ρ",
            lower_bound_formula="n^(m-2) / q^(ρ-1)",
            evaluate=lambda q: lower_bounds.multiway_join_lower_bound(
                n_join, join_attributes, join_rho, q
            ),
        ),
        Table1Row(
            problem=f"n×n Matrix Multiplication (n={n_matmul})",
            num_inputs="2n²",
            num_outputs="n²",
            g_formula="q²/(4n²)",
            lower_bound_formula="2n²/q",
            evaluate=lambda q: lower_bounds.matmul_lower_bound(n_matmul, q),
        ),
    ]


def table2_rows(
    b: int = 20,
    n_triangle: int = 1000,
    m_sample: int = 100_000,
    sample_nodes: int = 4,
    n_two_path: int = 1000,
    n_chain: int = 100,
    chain_relations: int = 3,
    star_fact_size: float = 1.0e6,
    star_dimension_size: float = 1.0e3,
    star_dimensions: int = 3,
    n_matmul: int = 100,
) -> List[Table2Row]:
    """Build Table 2 with concrete parameters for numeric evaluation."""
    return [
        Table2Row(
            problem=f"Hamming-Distance-1, b-bit strings (b={b})",
            upper_bound_formula="b / log2 q",
            evaluate=lambda q: upper_bounds.hamming1_upper_bound(b, q),
        ),
        Table2Row(
            problem=f"Triangle-Finding, n nodes (n={n_triangle})",
            upper_bound_formula="O(n/√(2q))",
            evaluate=lambda q: upper_bounds.triangle_upper_bound(n_triangle, q),
        ),
        Table2Row(
            problem=(
                f"Sample graph (s={sample_nodes} nodes) in Alon class "
                f"(m={m_sample} edges)"
            ),
            upper_bound_formula="O((√(m/q))^(s-2))",
            evaluate=lambda q: upper_bounds.alon_upper_bound_edges(m_sample, sample_nodes, q),
        ),
        Table2Row(
            problem=f"2-Paths in n-node graph (n={n_two_path})",
            upper_bound_formula="O(2n/q)",
            evaluate=lambda q: upper_bounds.two_path_upper_bound(n_two_path, q),
        ),
        Table2Row(
            problem=(
                f"Chain join, N={chain_relations} relations (n={n_chain}); "
                f"star join N={star_dimensions} dims (f={star_fact_size:g}, "
                f"d0={star_dimension_size:g})"
            ),
            upper_bound_formula="chain: (n/√q)^(N-1); star: Nd0(Nd0/q)^(N-1)/(f+Nd0)",
            evaluate=lambda q: upper_bounds.chain_join_upper_bound(n_chain, chain_relations, q),
        ),
        Table2Row(
            problem=f"n×n Matrix Multiplication (n={n_matmul})",
            upper_bound_formula="2n²/q for q >= 2n",
            evaluate=lambda q: upper_bounds.matmul_upper_bound(n_matmul, q),
        ),
    ]


def format_table(rows: Sequence[Table1Row | Table2Row], q_values: Sequence[float]) -> str:
    """Render a table (symbolic columns plus numeric evaluation per q) as text."""
    lines: List[str] = []
    for row in rows:
        lines.append(" | ".join(f"{key}: {value}" for key, value in row.as_dict().items()))
        numeric = ", ".join(
            f"r(q={q:g})={_fmt(row.evaluate(q))}" for q in q_values
        )
        lines.append(f"    {numeric}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if value >= 100 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.3f}"
