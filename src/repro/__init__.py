"""repro — reproduction of "Upper and Lower Bounds on the Cost of a Map-Reduce Computation".

Afrati, Das Sarma, Salihoglu, Ullman (VLDB 2013 / arXiv:1206.4377).

The package is organized as follows:

* :mod:`repro.core` — the input/output problem model, mapping schemas, the
  generic lower-bound recipe, tradeoff curves and the cluster cost model;
* :mod:`repro.mapreduce` — the simulated single/multi-round map-reduce
  engine on which schemas execute and are measured;
* :mod:`repro.problems` — concrete problems (Hamming distance, triangles,
  sample graphs, 2-paths, joins, matrix multiplication, word count,
  grouping);
* :mod:`repro.schemas` — the constructive algorithms (upper bounds);
* :mod:`repro.planner` — the cost-based planner that enumerates registered
  schema families, prices them with the cluster cost model, and returns
  ranked executable plans;
* :mod:`repro.pipeline` — the multi-round pipeline planner: cascade
  enumeration, intermediate-size bounds, and adaptive mid-flight
  re-planning on top of the single-round planner;
* :mod:`repro.analysis` — closed-form bounds, Table 1/2 regeneration,
  fractional edge covers, sparse-data scaling, approximations;
* :mod:`repro.datagen` — synthetic workload generators;
* :mod:`repro.obs` — span tracing, metrics and telemetry exporters
  (Chrome trace / Prometheus text / latency breakdowns).
"""

from repro.core import (
    AlgorithmPoint,
    ClusterCostModel,
    ExplicitProblem,
    LowerBoundRecipe,
    MappingSchema,
    Problem,
    SchemaFamily,
    TradeoffCurve,
)
from repro.exceptions import (
    BoundDerivationError,
    ConfigurationError,
    ExecutionError,
    PlanningError,
    ProblemDomainError,
    ReducerCapacityExceededError,
    ReproError,
    SchemaViolationError,
    UncoveredOutputError,
)
from repro.mapreduce import ClusterConfig, JobChain, MapReduceEngine, MapReduceJob
from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    chrome_trace,
    latency_breakdown,
    prometheus_text,
    write_chrome_trace,
)
from repro.pipeline import PipelinePlan, PipelinePlanner, PipelineRunResult
from repro.planner import CostBasedPlanner, ExecutionPlan, PlanningResult

__version__ = "1.0.0"

__all__ = [
    "AlgorithmPoint",
    "BoundDerivationError",
    "ClusterConfig",
    "ClusterCostModel",
    "ConfigurationError",
    "CostBasedPlanner",
    "ExecutionError",
    "ExecutionPlan",
    "ExplicitProblem",
    "JobChain",
    "LowerBoundRecipe",
    "MapReduceEngine",
    "MetricsRegistry",
    "Observability",
    "PipelinePlan",
    "PipelinePlanner",
    "PipelineRunResult",
    "MapReduceJob",
    "MappingSchema",
    "PlanningError",
    "PlanningResult",
    "Problem",
    "ProblemDomainError",
    "ReducerCapacityExceededError",
    "ReproError",
    "SchemaFamily",
    "SchemaViolationError",
    "TradeoffCurve",
    "Tracer",
    "UncoveredOutputError",
    "__version__",
    "chrome_trace",
    "latency_breakdown",
    "prometheus_text",
    "write_chrome_trace",
]
