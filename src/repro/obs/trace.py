"""Thread-safe span tracing for the engine, pipeline and service layers.

A :class:`Tracer` records *spans* — named, attributed intervals on the
monotonic clock (``time.perf_counter``) linked into a tree by parent ids.
Three entry points cover the three shapes instrumentation takes:

* :meth:`Tracer.span` — context-managed span for work done on the calling
  thread.  Nesting is automatic: each thread keeps a stack of active
  spans, and a new span parents under the top of its thread's stack
  unless an explicit ``parent`` is given.
* :meth:`Tracer.start_span` — an explicitly-finished span for work that
  crosses threads (a query's lifetime spans the submitter thread and many
  worker threads).  It never joins a thread stack; children reference it
  through an explicit ``parent``.
* :meth:`Tracer.record_span` — a *derived* span synthesized after the
  fact from a measured ``(start, duration)`` pair, e.g. the engine's
  per-phase timings or the service's queued-wait intervals, where the
  interval was measured without a live span object.

Spans are cheap but not free, so the default everywhere is the shared
:data:`NULL_TRACER` — a :class:`NullTracer` whose every operation is a
no-op on a single cached span object.  Code can branch on
``tracer.enabled`` to skip attribute assembly entirely; the regression
suite pins that runs under the null tracer are bit-identical to runs with
no tracer wired at all.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple


class Span:
    """One named interval in a trace tree.

    Spans are created by a :class:`Tracer`, never directly.  ``start`` and
    ``end`` are ``time.perf_counter()`` readings; :attr:`duration` is
    their difference once finished.  ``attributes`` is a free-form bag
    (query id, round index, plan name, ...) that exporters surface as
    Chrome-trace ``args``.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "thread_id",
        "_tracer",
        "_on_stack",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attributes = attributes
        self.thread_id = threading.get_ident()
        self._on_stack = False

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def finish(self) -> None:
        """Close the span and hand it to the tracer (idempotent)."""
        if self.end is not None:
            return
        self.end = time.perf_counter()
        self._tracer._record(self)

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "Span":
        if self.parent_id is None:
            current = self._tracer.current()
            if current is not None:
                self.parent_id = current.span_id
        self._tracer._push(self)
        self._on_stack = True
        # Restart the clock at entry so time between creation and entry
        # (argument assembly, mostly) is not charged to the span.
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, _tb: Any) -> None:
        if exc_type is not None and exc_type not in (StopIteration, GeneratorExit):
            # StopIteration/GeneratorExit are generator control flow, not
            # failures — spans legitimately wrap coroutine advancement.
            self.attributes.setdefault("error", exc_type.__name__)
        if self._on_stack:
            self._tracer._pop(self)
            self._on_stack = False
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class Tracer:
    """Collects finished spans from any number of threads.

    All mutation happens under one lock; the hot path (open/close one
    span) takes it twice for a counter bump and a list append.  ``epoch``
    is the tracer's creation time on the monotonic clock — exporters
    subtract it so traces start near zero — and ``wall_epoch`` anchors the
    same instant on the wall clock for human-readable reports.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished: List[Span] = []
        self._stacks = threading.local()
        self.epoch = time.perf_counter()
        self.wall_epoch = time.time()

    # -- span creation ---------------------------------------------------
    def span(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> Span:
        """A context-managed span nested under this thread's current span."""
        return Span(
            self,
            name,
            next(self._ids),
            parent.span_id if parent is not None else None,
            attributes,
        )

    def start_span(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> Span:
        """An explicitly-finished span, detached from every thread stack.

        Use for intervals that outlive the calling frame or cross threads;
        close with :meth:`Span.finish`.
        """
        return Span(
            self,
            name,
            next(self._ids),
            parent.span_id if parent is not None else None,
            attributes,
        )

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Record a span for an interval measured without a live span.

        ``start`` must be a ``time.perf_counter()`` reading (the tracer's
        timebase); ``duration`` is in seconds.
        """
        span = Span(
            self,
            name,
            next(self._ids),
            parent.span_id if parent is not None else None,
            attributes,
        )
        span.start = start
        span.end = start + max(0.0, duration)
        self._record(span)
        return span

    # -- thread-local nesting --------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost active span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; recover rather than corrupt
            stack.remove(span)

    # -- collection ------------------------------------------------------
    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def spans(self) -> List[Span]:
        """Snapshot of all finished spans, in (start, id) order."""
        with self._lock:
            finished = list(self._finished)
        finished.sort(key=lambda span: (span.start, span.span_id))
        return finished

    def clear(self) -> None:
        """Drop all finished spans (active spans are unaffected)."""
        with self._lock:
            self._finished.clear()


class _NullSpan:
    """The single span object every :class:`NullTracer` operation returns."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id: Optional[int] = None
    start = 0.0
    end: Optional[float] = 0.0
    thread_id = 0
    attributes: Dict[str, Any] = {}
    duration = 0.0

    def set(self, **_attributes: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        return None


class NullTracer:
    """Zero-overhead tracer: every call is a no-op on one cached span.

    The default wired into :class:`~repro.mapreduce.cluster.ClusterConfig`
    and :class:`~repro.service.service.QueryService`; instrumented code
    may consult :attr:`enabled` to skip even argument assembly.
    """

    enabled = False
    epoch = 0.0
    wall_epoch = 0.0

    _span = _NullSpan()

    def span(self, name: str, parent: Any = None, **attributes: Any) -> _NullSpan:
        return self._span

    def start_span(
        self, name: str, parent: Any = None, **attributes: Any
    ) -> _NullSpan:
        return self._span

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        parent: Any = None,
        **attributes: Any,
    ) -> _NullSpan:
        return self._span

    def current(self) -> None:
        return None

    def spans(self) -> List[Span]:
        return []

    def clear(self) -> None:
        return None


#: Shared default: tracing disabled, nothing allocated per call.
NULL_TRACER = NullTracer()


def walk(
    spans: List[Span],
) -> Iterator[Tuple[Span, Tuple[Span, ...]]]:
    """Yield ``(span, children)`` for every span, children in time order.

    A convenience for exporters and tests; spans whose parent was never
    finished appear as roots.
    """
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for span in spans:
        yield span, tuple(children.get(span.span_id, ()))
