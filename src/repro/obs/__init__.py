"""Unified observability: span tracing, metrics, and exporters.

The layer has three parts — :mod:`~repro.obs.trace` (span trees on the
monotonic clock), :mod:`~repro.obs.metrics` (labeled counters / gauges /
histograms with an atomic snapshot) and :mod:`~repro.obs.export`
(Chrome-trace JSON for Perfetto, Prometheus text exposition, per-query
latency breakdowns).  Everything defaults to the shared null objects, so
instrumented code paths cost one attribute load and a no-op call unless a
caller opts in::

    from repro.obs import Observability
    from repro.obs.export import latency_breakdown, write_chrome_trace

    obs = Observability.collecting()
    service = QueryService(capacity=96, executor="parallel", observer=obs)
    ...
    service.close()
    write_chrome_trace(obs.tracer, "service_trace.json")
    print(latency_breakdown(obs.tracer))

Engine-level runs without a service are traced through the cluster::

    config = ClusterConfig(tracer=obs.tracer, metrics=obs.metrics)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.export import (
    PHASES,
    SPAN_PHASE,
    chrome_trace,
    latency_breakdown,
    prometheus_text,
    query_phase_rows,
    write_chrome_trace,
)
from repro.obs.history import NoiseBand, TelemetryStore, metric_samples
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    POWER_OF_TWO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.record import (
    PredictionRecord,
    RunRecord,
    capture_env,
    current_git_rev,
    make_run_record,
    run_fingerprint,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, walk

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBSERVABILITY",
    "NULL_TRACER",
    "NoiseBand",
    "NullMetricsRegistry",
    "NullTracer",
    "Observability",
    "PHASES",
    "POWER_OF_TWO_BUCKETS",
    "PredictionRecord",
    "RunRecord",
    "SPAN_PHASE",
    "Span",
    "TelemetryStore",
    "Tracer",
    "capture_env",
    "chrome_trace",
    "current_git_rev",
    "latency_breakdown",
    "make_run_record",
    "metric_samples",
    "prometheus_text",
    "query_phase_rows",
    "run_fingerprint",
    "walk",
    "write_chrome_trace",
]


@dataclass(frozen=True)
class Observability:
    """One tracer plus one registry, handed around as a unit.

    The default instance is the null pair (collect nothing); build a
    collecting pair with :meth:`collecting`.  Frozen so a bundle can be
    shared across threads and stored on services without defensive
    copying.
    """

    tracer: Any = field(default=NULL_TRACER)
    metrics: Any = field(default=NULL_METRICS)

    @classmethod
    def collecting(cls) -> "Observability":
        """A bundle that actually records: fresh tracer, fresh registry."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())

    @property
    def enabled(self) -> bool:
        return bool(self.tracer.enabled or self.metrics.enabled)


#: Shared default bundle: no tracing, no metrics.
NULL_OBSERVABILITY = Observability()
