"""Canonical run records: predictions paired with observations, on disk.

The planner, the certifier and the admission controller all *predict* —
estimated intermediate sizes, certified max-reducer loads, admission
prices, replan decisions.  The engine then *observes* — actual rows,
actual max loads, wall-clock.  A :class:`PredictionRecord` pairs one
prediction with its observation; a :class:`RunRecord` bundles a whole
run's worth (plus headline metrics, environment and a workload
fingerprint) into a canonical JSON document that round-trips losslessly
through :meth:`RunRecord.to_dict` / :meth:`RunRecord.from_dict`.

Records are what :mod:`repro.obs.history` appends to the trajectory
store, :mod:`repro.obs.calibrate` aggregates into accuracy reports, and
:mod:`repro.obs.sentinel` compares against baselines.  This module is
deliberately leaf-level: it imports nothing from the pipeline, service
or bounds layers, so any of them can emit records without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Bump when the serialized shape changes incompatibly; readers skip
#: records with a newer schema than they understand.
RECORD_SCHEMA = 1

#: Certification kinds whose bound is an *expectation*, not a sound
#: bound — excluded from certificate-violation accounting.  Mirrors
#: ``CertificationKind.EXPECTED.value`` without importing the planner.
EXPECTED_KIND = "expected"


@dataclass(frozen=True)
class PredictionRecord:
    """One prediction paired with what actually happened.

    ``estimated_rows`` is the planning-time size bound for the round's
    output (``method`` names the bound estimator that won); ``certified_
    load`` / ``observed_max_load`` pair the admission certificate with
    the realized max reducer load; ``admission_price`` is what the
    service's ledger charged.  Optional fields are ``None`` when the
    producing layer had nothing to say (e.g. calibration probes record
    per-method size bounds with no admission price).
    """

    query: str
    round_index: int
    op: str
    plan: str
    method: str = ""
    kind: str = ""
    estimated_rows: Optional[float] = None
    observed_rows: Optional[float] = None
    certified_load: Optional[float] = None
    observed_max_load: Optional[float] = None
    admission_price: Optional[float] = None
    replanned: bool = False
    reused: bool = False
    seconds: float = 0.0

    @property
    def q_error(self) -> Optional[float]:
        """max(bound/observed, observed/bound), or ``None`` if undefined.

        Empty observations (0 rows) against a positive bound are treated
        as the bound itself being the q-error denominator-free ratio —
        conventionally reported as the bound vs. 1 row to stay finite.
        """
        if self.estimated_rows is None or self.observed_rows is None:
            return None
        if self.estimated_rows <= 0 and self.observed_rows <= 0:
            return 1.0
        bound = max(self.estimated_rows, 1.0)
        observed = max(self.observed_rows, 1.0)
        return max(bound / observed, observed / bound)

    @property
    def violated(self) -> bool:
        """True when a non-expected certificate was exceeded at run time."""
        if self.certified_load is None or self.observed_max_load is None:
            return False
        if self.kind == EXPECTED_KIND:
            return False
        return self.observed_max_load > self.certified_load

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "round_index": self.round_index,
            "op": self.op,
            "plan": self.plan,
            "method": self.method,
            "kind": self.kind,
            "estimated_rows": self.estimated_rows,
            "observed_rows": self.observed_rows,
            "certified_load": self.certified_load,
            "observed_max_load": self.observed_max_load,
            "admission_price": self.admission_price,
            "replanned": self.replanned,
            "reused": self.reused,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PredictionRecord":
        return cls(
            query=str(payload.get("query", "")),
            round_index=int(payload.get("round_index", 0)),
            op=str(payload.get("op", "")),
            plan=str(payload.get("plan", "")),
            method=str(payload.get("method", "")),
            kind=str(payload.get("kind", "")),
            estimated_rows=_opt_float(payload.get("estimated_rows")),
            observed_rows=_opt_float(payload.get("observed_rows")),
            certified_load=_opt_float(payload.get("certified_load")),
            observed_max_load=_opt_float(payload.get("observed_max_load")),
            admission_price=_opt_float(payload.get("admission_price")),
            replanned=bool(payload.get("replanned", False)),
            reused=bool(payload.get("reused", False)),
            seconds=float(payload.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class RunRecord:
    """One run of one benchmark/workload, canonically serialized.

    ``fingerprint`` identifies the *workload shape* (bench name, quick
    flag, query mix...) so the history layer can line up comparable runs;
    ``metrics`` holds scalar headlines (throughput, overhead %, deferral
    rate); ``predictions`` the per-round prediction/observation pairs;
    ``meta`` free-form context (verdicts, notes) that comparisons ignore.
    """

    bench: str
    fingerprint: str
    created_unix: float
    git_rev: str = "unknown"
    quick: bool = False
    env: Mapping[str, Any] = field(default_factory=dict)
    metrics: Mapping[str, float] = field(default_factory=dict)
    meta: Mapping[str, Any] = field(default_factory=dict)
    predictions: Tuple[PredictionRecord, ...] = ()
    schema: int = RECORD_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "bench": self.bench,
            "fingerprint": self.fingerprint,
            "created_unix": self.created_unix,
            "git_rev": self.git_rev,
            "quick": self.quick,
            "env": dict(self.env),
            "metrics": {key: float(value) for key, value in self.metrics.items()},
            "meta": dict(self.meta),
            "predictions": [record.to_dict() for record in self.predictions],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        return cls(
            bench=str(payload.get("bench", "")),
            fingerprint=str(payload.get("fingerprint", "")),
            created_unix=float(payload.get("created_unix", 0.0)),
            git_rev=str(payload.get("git_rev", "unknown")),
            quick=bool(payload.get("quick", False)),
            env=dict(payload.get("env", {})),
            metrics={
                key: float(value)
                for key, value in dict(payload.get("metrics", {})).items()
            },
            meta=dict(payload.get("meta", {})),
            predictions=tuple(
                PredictionRecord.from_dict(item)
                for item in payload.get("predictions", [])
            ),
            schema=int(payload.get("schema", RECORD_SCHEMA)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))


def run_fingerprint(bench: str, *, quick: bool = False, **identity: Any) -> str:
    """A stable hex id for a workload shape.

    Everything that makes two runs *comparable* goes into ``identity``
    (query counts, sizes, seeds); everything that merely varies between
    runs (timings, host) stays out.
    """
    canonical = json.dumps(
        {"bench": bench, "quick": quick, **identity},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def capture_env() -> Dict[str, Any]:
    """The environment facts worth attaching to a run record."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
    }


_GIT_REV_CACHE: Optional[str] = None


def current_git_rev() -> str:
    """The short git revision of the working tree, cached per process.

    Falls back to ``GITHUB_SHA`` (CI) and then ``"unknown"`` — records
    must be writable from environments without git.
    """
    global _GIT_REV_CACHE
    if _GIT_REV_CACHE is not None:
        return _GIT_REV_CACHE
    rev = ""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        rev = ""
    if not rev:
        rev = os.environ.get("GITHUB_SHA", "")[:12] or "unknown"
    _GIT_REV_CACHE = rev
    return rev


def make_run_record(
    bench: str,
    *,
    fingerprint: Optional[str] = None,
    quick: bool = False,
    metrics: Optional[Mapping[str, float]] = None,
    meta: Optional[Mapping[str, Any]] = None,
    predictions: Sequence[PredictionRecord] = (),
    fingerprint_extra: Optional[Mapping[str, Any]] = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` with env/git/time filled in."""
    if fingerprint is None:
        fingerprint = run_fingerprint(bench, quick=quick, **(fingerprint_extra or {}))
    return RunRecord(
        bench=bench,
        fingerprint=fingerprint,
        created_unix=time.time(),
        git_rev=current_git_rev(),
        quick=quick,
        env=capture_env(),
        metrics=dict(metrics or {}),
        meta=dict(meta or {}),
        predictions=tuple(predictions),
    )


def _opt_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)
