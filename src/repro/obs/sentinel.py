"""The regression sentinel: fresh run vs. trajectory baseline, pass/fail.

``python -m repro.obs.sentinel`` loads a fresh
:class:`~repro.obs.record.RunRecord` (by default the newest record in
the store), selects its baseline — the last *N* records sharing its
workload fingerprint — and checks every tracked headline metric against
the baseline's :class:`~repro.obs.history.NoiseBand`.  A metric outside
the band in its *bad* direction (throughput down, overhead/deferrals/
q-error up) is a regression; any regression exits nonzero unless
``--report-only`` is set (the CI bootstrap mode, so trajectories can
fill before they gate).

Derived accuracy metrics (mean q-error, certificate-violation rate) are
computed from each record's prediction pairs when the producer didn't
flatten them into ``metrics`` — so the sentinel watches bound-tightness
drift even for records that only carried raw predictions.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.calibrate import calibration_metrics
from repro.obs.history import NoiseBand, TelemetryStore
from repro.obs.record import RunRecord
from repro.reports import render_table

#: Direction labels: which way a metric regresses.
LOWER_IS_BETTER = "lower"
HIGHER_IS_BETTER = "higher"


@dataclass(frozen=True)
class TrackedMetric:
    """One headline metric the sentinel gates on."""

    key: str
    direction: str  # LOWER_IS_BETTER | HIGHER_IS_BETTER
    band: NoiseBand


#: The default watchlist.  Bands are deliberately loose on wall-clock
#: metrics (shared CI runners) and tight on correctness-adjacent ones —
#: a certificate violation over a clean baseline always flags.
DEFAULT_TRACKED: Tuple[TrackedMetric, ...] = (
    TrackedMetric("queries_per_second", HIGHER_IS_BETTER, NoiseBand(relative=0.25)),
    TrackedMetric("wall_seconds", LOWER_IS_BETTER, NoiseBand(relative=0.30)),
    TrackedMetric("speedup", HIGHER_IS_BETTER, NoiseBand(relative=0.30)),
    TrackedMetric(
        "tracing_overhead_pct", LOWER_IS_BETTER, NoiseBand(relative=0.50, absolute=5.0)
    ),
    TrackedMetric(
        "recording_overhead_pct",
        LOWER_IS_BETTER,
        NoiseBand(relative=0.50, absolute=2.0),
    ),
    TrackedMetric(
        "deferral_rate", LOWER_IS_BETTER, NoiseBand(relative=0.50, absolute=0.05)
    ),
    TrackedMetric("mean_q_error", LOWER_IS_BETTER, NoiseBand(relative=0.50)),
    TrackedMetric(
        "certificate_violation_rate",
        LOWER_IS_BETTER,
        NoiseBand(relative=0.0, absolute=1e-9, sigmas=0.0),
    ),
)

#: Check outcomes.
OK = "ok"
REGRESSION = "regression"
IMPROVED = "improved"
NO_BASELINE = "no-baseline"


@dataclass(frozen=True)
class SentinelCheck:
    """One metric's verdict against the baseline band."""

    key: str
    status: str
    observed: float
    baseline_mean: Optional[float] = None
    low: Optional[float] = None
    high: Optional[float] = None
    samples: int = 0

    @property
    def is_regression(self) -> bool:
        return self.status == REGRESSION


def effective_metrics(record: RunRecord) -> Dict[str, float]:
    """The record's metrics plus accuracy metrics derived from predictions."""
    metrics = dict(record.metrics)
    if record.predictions:
        for key, value in calibration_metrics(record.predictions).items():
            metrics.setdefault(key, value)
    return metrics


def compare(
    record: RunRecord,
    baselines: Sequence[RunRecord],
    tracked: Sequence[TrackedMetric] = DEFAULT_TRACKED,
) -> List[SentinelCheck]:
    """Check every tracked metric the record carries against baseline."""
    observed_metrics = effective_metrics(record)
    baseline_metrics = [effective_metrics(baseline) for baseline in baselines]
    checks: List[SentinelCheck] = []
    for spec in tracked:
        if spec.key not in observed_metrics:
            continue
        observed = observed_metrics[spec.key]
        samples = [
            metrics[spec.key]
            for metrics in baseline_metrics
            if spec.key in metrics
        ]
        if not samples:
            checks.append(
                SentinelCheck(key=spec.key, status=NO_BASELINE, observed=observed)
            )
            continue
        low, high = spec.band.interval(samples)
        mean = sum(samples) / len(samples)
        if spec.direction == LOWER_IS_BETTER:
            status = REGRESSION if observed > high else (
                IMPROVED if observed < low else OK
            )
        else:
            status = REGRESSION if observed < low else (
                IMPROVED if observed > high else OK
            )
        checks.append(
            SentinelCheck(
                key=spec.key,
                status=status,
                observed=observed,
                baseline_mean=mean,
                low=low,
                high=high,
                samples=len(samples),
            )
        )
    return checks


def render_checks(record: RunRecord, checks: Sequence[SentinelCheck]) -> str:
    rows = [
        [
            check.key,
            check.status,
            check.observed,
            check.baseline_mean if check.baseline_mean is not None else "-",
            check.low if check.low is not None else "-",
            check.high if check.high is not None else "-",
            check.samples,
        ]
        for check in checks
    ]
    return render_table(
        f"Sentinel: {record.bench} @ {record.git_rev} "
        f"(fingerprint {record.fingerprint})",
        ["metric", "status", "observed", "baseline", "low", "high", "n"],
        rows,
    )


def _load_baseline_records(path: str) -> List[RunRecord]:
    """Records from one ``.jsonl``/``.json`` file or every one in a dir."""
    records: List[RunRecord] = []
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            if name.endswith((".jsonl", ".json")):
                records.extend(_load_baseline_records(os.path.join(path, name)))
        return records
    if path.endswith(".json") and not path.endswith(".jsonl"):
        with open(path, "r", encoding="utf-8") as handle:
            records.append(RunRecord.from_json(handle.read()))
        return records
    records.extend(TelemetryStore(path).records())
    return records


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.sentinel",
        description=(
            "Compare a fresh run record against its trajectory baseline; "
            "exit nonzero on regressions beyond the noise band."
        ),
    )
    parser.add_argument(
        "--store",
        default="BENCH_trajectory.jsonl",
        help="trajectory store holding the fresh record(s)",
    )
    parser.add_argument(
        "--record",
        default=None,
        help="a single-record .json file to check instead of the store's newest",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline source: a .jsonl store, a directory of them, or a "
            ".json record file (default: the --store itself)"
        ),
    )
    parser.add_argument(
        "--bench",
        default=None,
        help="check only this bench's records (default: every bench in the store)",
    )
    parser.add_argument(
        "--last", type=int, default=3, help="baseline depth (same-fingerprint runs)"
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0 (CI bootstrap)",
    )
    args = parser.parse_args(argv)

    store = TelemetryStore(args.store)
    if args.record is not None:
        with open(args.record, "r", encoding="utf-8") as handle:
            candidates = [RunRecord.from_json(handle.read())]
    else:
        records = store.records(bench=args.bench)
        if not records:
            print(f"sentinel: no records in {args.store}; nothing to check")
            return 0
        # Newest record per bench: one CI run appends several benches'
        # records and each should be judged against its own baseline.
        newest: Dict[str, RunRecord] = {}
        for record in records:
            newest[record.bench] = record
        candidates = [newest[bench] for bench in sorted(newest)]

    baseline_pool = (
        _load_baseline_records(args.baseline)
        if args.baseline is not None
        else store.records()
    )

    failed = False
    for record in candidates:
        matches = [
            baseline
            for baseline in baseline_pool
            if baseline.fingerprint == record.fingerprint
            and not (
                baseline.created_unix == record.created_unix
                and baseline.bench == record.bench
            )
        ]
        baselines = matches[-args.last:]
        checks = compare(record, baselines)
        if not baselines:
            print(
                f"sentinel: no baseline for {record.bench} "
                f"(fingerprint {record.fingerprint}); bootstrap pass"
            )
            continue
        print(render_checks(record, checks))
        regressions = [check for check in checks if check.is_regression]
        if regressions:
            failed = True
            for check in regressions:
                print(
                    f"REGRESSION {record.bench}.{check.key}: "
                    f"{check.observed:.4g} outside "
                    f"[{check.low:.4g}, {check.high:.4g}] "
                    f"(baseline {check.baseline_mean:.4g}, n={check.samples})"
                )
    if failed and not args.report_only:
        return 1
    if failed:
        print("sentinel: regressions found (report-only mode; exit 0)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
