"""The append-only telemetry trajectory: a JSONL store of run records.

One :class:`TelemetryStore` wraps one ``*.jsonl`` file, one
:class:`~repro.obs.record.RunRecord` per line.  Appends are atomic at
the line level (single ``write`` of one newline-terminated JSON
document), so concurrent benchmark processes can share a store; corrupt
or newer-schema lines are skipped on read rather than poisoning the
trajectory.

Baseline selection is fingerprint-keyed: :meth:`TelemetryStore.baseline`
returns the last *N* records whose workload fingerprint matches a fresh
record's, which is what the sentinel compares against.  :class:`NoiseBand`
turns those baseline samples into an acceptance interval — the wider of
a relative band around the mean, an absolute floor, and a k-sigma band —
so noisy metrics (wall-clock) get room while exact ones (violation
counts) stay tight.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.obs.record import RECORD_SCHEMA, RunRecord


class TelemetryStore:
    """An append-only JSONL file of :class:`RunRecord`\\ s."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def append(self, record: RunRecord) -> None:
        """Append one record; creates the file (and parents) on demand."""
        parent = os.path.dirname(os.path.abspath(self.path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")

    def records(
        self,
        *,
        bench: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> List[RunRecord]:
        """All readable records, oldest first, optionally filtered."""
        if not os.path.exists(self.path):
            return []
        out: List[RunRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn or hand-edited line; keep reading
                if not isinstance(payload, dict):
                    continue
                if int(payload.get("schema", RECORD_SCHEMA)) > RECORD_SCHEMA:
                    continue  # written by a newer layout than we read
                record = RunRecord.from_dict(payload)
                if bench is not None and record.bench != bench:
                    continue
                if fingerprint is not None and record.fingerprint != fingerprint:
                    continue
                out.append(record)
        out.sort(key=lambda record: record.created_unix)
        return out

    def latest(self, *, bench: Optional[str] = None) -> Optional[RunRecord]:
        """The most recent record, optionally restricted to one bench."""
        records = self.records(bench=bench)
        return records[-1] if records else None

    def baseline(
        self,
        record: RunRecord,
        *,
        last: int = 3,
        same_quick: bool = True,
    ) -> List[RunRecord]:
        """The last ``last`` same-fingerprint records preceding ``record``.

        The candidate itself (matched by creation time + fingerprint) is
        excluded, so comparing a just-appended record against its own
        store is safe.
        """
        matches = [
            candidate
            for candidate in self.records(fingerprint=record.fingerprint)
            if not (
                candidate.created_unix == record.created_unix
                and candidate.bench == record.bench
            )
            and (not same_quick or candidate.quick == record.quick)
        ]
        return matches[-last:] if last > 0 else matches


@dataclass(frozen=True)
class NoiseBand:
    """How far a metric may drift from baseline before it's a regression.

    The acceptance half-width is the *widest* of ``relative * |mean|``,
    ``absolute``, and ``sigmas * stdev(samples)`` — relative bands absorb
    proportional noise, the absolute floor keeps near-zero baselines from
    collapsing the band to a point, and the sigma term adapts to however
    noisy the baseline actually ran.
    """

    relative: float = 0.25
    absolute: float = 0.0
    sigmas: float = 3.0

    def interval(self, samples: Sequence[float]) -> Tuple[float, float]:
        """The ``(low, high)`` acceptance interval around the baseline."""
        if not samples:
            raise ValueError("a noise band needs at least one baseline sample")
        mean = sum(samples) / len(samples)
        spread = max(self.relative * abs(mean), self.absolute)
        if len(samples) > 1 and self.sigmas > 0:
            variance = sum((value - mean) ** 2 for value in samples) / (
                len(samples) - 1
            )
            spread = max(spread, self.sigmas * math.sqrt(variance))
        return mean - spread, mean + spread


def metric_samples(records: Iterable[RunRecord], key: str) -> List[float]:
    """The values of one metric across records (absent entries skipped)."""
    out: List[float] = []
    for record in records:
        value = record.metrics.get(key)
        if value is not None:
            out.append(float(value))
    return out
