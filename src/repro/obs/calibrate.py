"""Prediction-accuracy reports over the telemetry trajectory.

Every :class:`~repro.obs.record.PredictionRecord` pairs a planning-time
claim with a run-time observation; this module aggregates them into the
accountability numbers the paper's tradeoff story needs:

* **q-error** per bound method — ``max(bound/observed, observed/bound)``
  for size bounds; sound bounds never sit below 1, and the gap above 1
  is exactly how much replication the planner over-bought;
* **certificate-violation rate** — how often a non-expected certified
  max-reducer-load was exceeded (must be ~0; sampled-profile EXPECTED
  certificates are excluded by construction);
* **pricing error** — admission price vs. realized max load (what the
  service's ledger over-reserved);
* **replan win rate** and **admission deferral rate** from run metrics.

Tables render via :func:`repro.reports.render_table`.  The module also
ships a *calibration probe* — seeded FK-chain and Zipf chain workloads
planned with a recording registry that captures **every** registered
bound method's candidate per join node (not just the winner), executed,
and paired with the observed intermediate sizes — and a CLI::

    PYTHONPATH=src python -m repro.obs.calibrate --quick \
        --store BENCH_trajectory.jsonl

which appends the probe's :class:`~repro.obs.record.RunRecord` to the
store and prints the accuracy report over everything recorded so far.
"""

from __future__ import annotations

import argparse
import statistics
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.history import TelemetryStore
from repro.obs.record import (
    PredictionRecord,
    RunRecord,
    make_run_record,
)
from repro.reports import render_table

#: Fingerprint identity for the probe workloads (bump on workload edits).
PROBE_VERSION = 1


class RecordingBoundRegistry:
    """A delegating registry that remembers every decision it made.

    Wraps a real :class:`~repro.bounds.base.BoundRegistry` and stores
    each join-context :class:`~repro.bounds.base.BoundDecision` keyed by
    the induced sub-query's base-relation set — enough to line a
    planning-time decision (with *all* candidates, not just the winner)
    back up with the executed round that realized it.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.decisions: Dict[Tuple[str, ...], Any] = {}

    def names(self):
        return self.inner.names()

    @property
    def estimators(self):
        return self.inner.estimators

    def evaluate(self, context):
        decision = self.inner.evaluate(context)
        if context.is_join:
            key = tuple(sorted(relation.name for relation in context.query.relations))
            # First write wins: repeated evaluations of the same node see
            # the same context and produce the same decision.
            self.decisions.setdefault(key, decision)
        return decision


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def summarize_q_errors(
    predictions: Iterable[PredictionRecord],
) -> Dict[str, Dict[str, float]]:
    """Per-method q-error statistics over size predictions."""
    by_method: Dict[str, List[float]] = defaultdict(list)
    for record in predictions:
        q = record.q_error
        if q is not None and record.method:
            by_method[record.method].append(q)
    out: Dict[str, Dict[str, float]] = {}
    for method, values in by_method.items():
        out[method] = {
            "count": float(len(values)),
            "mean": sum(values) / len(values),
            "median": statistics.median(values),
            "max": max(values),
        }
    return out


def certificate_violation_rate(
    predictions: Iterable[PredictionRecord],
) -> Tuple[float, int]:
    """(violation rate, #checked) over non-expected certificates."""
    checked = violated = 0
    for record in predictions:
        if record.certified_load is None or record.observed_max_load is None:
            continue
        if record.kind == "expected":
            continue
        checked += 1
        if record.violated:
            violated += 1
    return (violated / checked if checked else 0.0), checked


def pricing_error(predictions: Iterable[PredictionRecord]) -> Optional[float]:
    """Mean admission-price q-error vs. the realized max reducer load."""
    ratios: List[float] = []
    for record in predictions:
        if record.admission_price is None or record.observed_max_load is None:
            continue
        price = max(record.admission_price, 1.0)
        observed = max(record.observed_max_load, 1.0)
        ratios.append(max(price / observed, observed / price))
    return sum(ratios) / len(ratios) if ratios else None


def calibration_metrics(
    predictions: Sequence[PredictionRecord],
) -> Dict[str, float]:
    """Flat headline metrics for a :class:`RunRecord` (sentinel-trackable)."""
    metrics: Dict[str, float] = {}
    stats = summarize_q_errors(predictions)
    all_means = [entry["mean"] for entry in stats.values()]
    if all_means:
        metrics["mean_q_error"] = sum(all_means) / len(all_means)
        metrics["max_q_error"] = max(entry["max"] for entry in stats.values())
    for method, entry in stats.items():
        metrics[f"q_error_mean.{method}"] = entry["mean"]
    rate, checked = certificate_violation_rate(predictions)
    metrics["certificate_violation_rate"] = rate
    metrics["certificates_checked"] = float(checked)
    price_err = pricing_error(predictions)
    if price_err is not None:
        metrics["pricing_error"] = price_err
    return metrics


def calibration_report(records: Sequence[RunRecord]) -> str:
    """Accuracy tables over run records, à la :mod:`repro.reports`."""
    q_rows: List[List[object]] = []
    run_rows: List[List[object]] = []
    for record in records:
        stats = summarize_q_errors(record.predictions)
        for method in sorted(stats):
            entry = stats[method]
            q_rows.append(
                [
                    record.bench,
                    method,
                    int(entry["count"]),
                    entry["mean"],
                    entry["median"],
                    entry["max"],
                ]
            )
        rate, checked = certificate_violation_rate(record.predictions)
        metrics = record.metrics
        run_rows.append(
            [
                record.bench,
                record.git_rev,
                len(record.predictions),
                checked,
                rate,
                metrics.get("pricing_error", float("nan")),
                metrics.get("replan_win_rate", float("nan")),
                metrics.get("deferral_rate", float("nan")),
            ]
        )
    sections = []
    if q_rows:
        sections.append(
            render_table(
                "Size-bound q-error by method (bound/observed; 1.0 = exact)",
                ["run", "method", "n", "mean", "median", "max"],
                q_rows,
            )
        )
    sections.append(
        render_table(
            "Certificates, pricing, adaptation",
            [
                "run",
                "rev",
                "predictions",
                "certs checked",
                "violation rate",
                "pricing err",
                "replan wins",
                "deferral rate",
            ],
            run_rows,
        )
    )
    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# The calibration probe: seeded workloads, every method recorded
# ---------------------------------------------------------------------------

def run_calibration_probe(quick: bool = False) -> RunRecord:
    """Plan + execute the FK-chain and Zipf probe workloads.

    Each cascade is planned through a :class:`RecordingBoundRegistry`
    so the decision at every join node retains all four registered
    methods' candidates; after execution, each candidate is paired with
    the node's observed output size as a :class:`PredictionRecord`
    (method = the candidate's estimator, not just the winner's).
    """
    # Heavyweight planner/engine imports stay local so the record/history/
    # sentinel path never drags the pipeline stack in.
    from repro.bounds import default_bound_registry
    from repro.datagen.relations import (
        fk_chain_join_instance,
        skewed_chain_join_instance,
    )
    from repro.mapreduce import MapReduceEngine
    from repro.pipeline import PipelinePlanner
    from repro.planner import CostBasedPlanner
    from repro.problems import JoinQuery, MultiwayJoinProblem
    from repro.schemas import SharesSchema
    from repro.stats import profile_relations

    size = 60 if quick else 220
    domain = 120 if quick else 400
    budget = 2000.0
    workloads = [
        (
            "fk-chain",
            fk_chain_join_instance(
                3, size, domain, degree_cap=2, fk_skew=0.6, seed=5
            ),
        ),
        (
            "zipf-chain",
            skewed_chain_join_instance(3, size, domain, skew=1.2, seed=7),
        ),
    ]

    engine = MapReduceEngine()
    predictions: List[PredictionRecord] = []
    for name, relations in workloads:
        recorder = RecordingBoundRegistry(default_bound_registry)
        problem = MultiwayJoinProblem(JoinQuery.chain(3), domain_size=domain)
        profile = profile_relations(relations)
        planner = PipelinePlanner(
            CostBasedPlanner.min_replication(), bound_registry=recorder
        )
        result = planner.plan(problem, q=budget, profile=profile)
        cascades = result.cascades()
        if not cascades:  # pragma: no cover - probe workloads always cascade
            continue
        cascade = cascades[0]
        run = cascade.execute(SharesSchema.input_records(relations), engine=engine)
        predictions.extend(_pair_cascade(name, cascade, run, recorder))

    return make_run_record(
        "calibration",
        quick=quick,
        metrics=calibration_metrics(predictions),
        meta={"workloads": [name for name, _ in workloads]},
        predictions=predictions,
        fingerprint_extra={
            "probe": PROBE_VERSION,
            "size": size,
            "domain": domain,
        },
    )


def _pair_cascade(workload, cascade, run, recorder) -> List[PredictionRecord]:
    from repro.pipeline.logical import BinaryJoinOp

    paired: List[PredictionRecord] = []
    for index, executed in enumerate(run.executed):
        if index >= len(cascade.rounds):
            break
        op = cascade.rounds[index].op
        if not isinstance(op, BinaryJoinOp):
            continue
        key = tuple(sorted(set(op.base_relations)))
        decision = recorder.decisions.get(key)
        if decision is None:
            continue
        kind = (
            executed.certification.kind.value
            if executed.certification is not None
            else ""
        )
        for candidate in decision.candidates:
            winner = candidate.method == decision.method
            paired.append(
                PredictionRecord(
                    query=workload,
                    round_index=index,
                    op=executed.op_label,
                    plan=executed.plan_name,
                    method=candidate.method,
                    kind=kind if winner else "",
                    estimated_rows=candidate.value,
                    observed_rows=float(executed.observed_output),
                    # Certificate pairing only on the winning method's row
                    # so violation rates count each round once.
                    certified_load=executed.certified_load if winner else None,
                    observed_max_load=(
                        float(executed.observed_max_load) if winner else None
                    ),
                    replanned=executed.replanned,
                    reused=executed.reused,
                    seconds=executed.seconds,
                )
            )
    return paired


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.calibrate",
        description=(
            "Run the bound-calibration probe workloads, append the run "
            "record to the telemetry store, and print accuracy reports."
        ),
    )
    parser.add_argument(
        "--store",
        default="BENCH_trajectory.jsonl",
        help="telemetry store to append to and report over",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small probe instances (CI smoke)"
    )
    parser.add_argument(
        "--no-probe",
        action="store_true",
        help="skip running the probe; only report over the existing store",
    )
    parser.add_argument(
        "--bench",
        default="calibration",
        help="which bench's records to report over (default: calibration)",
    )
    args = parser.parse_args(argv)

    store = TelemetryStore(args.store)
    if not args.no_probe:
        record = run_calibration_probe(quick=args.quick)
        store.append(record)
    records = store.records(bench=args.bench)
    if not records:
        print(f"no {args.bench!r} records in {args.store}")
        return 1
    print(calibration_report(records[-5:]))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
