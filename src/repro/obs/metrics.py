"""Labeled counters, gauges and histograms with an atomic snapshot.

A :class:`MetricsRegistry` is the process-wide (or service-wide) home for
operational metrics: the paper's replication rate and max reducer load
``q_i`` surfaced continuously, plus the serving layer's queue depths,
admission waits and reuse counters.  The model follows Prometheus:

* an *instrument* is a named metric of one kind (counter / gauge /
  histogram) with a help string;
* each instrument holds one time series per distinct label set
  (``counter.inc(phase="map")`` and ``counter.inc(phase="reduce")`` are
  two series of the same instrument);
* :meth:`MetricsRegistry.snapshot` returns every series at one instant,
  taken under the registry lock so concurrent updates never produce a
  torn view.

As with tracing, the default everywhere is the shared
:data:`NULL_METRICS` registry whose instruments are a single cached
no-op object, so uninstrumented runs pay one attribute load and a call
per site.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError

#: Latency-shaped default histogram buckets (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Power-of-two buckets for record counts and reducer loads.
POWER_OF_TWO_BUCKETS: Tuple[float, ...] = tuple(
    float(2 ** exponent) for exponent in range(0, 21)
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class _Instrument:
    """Shared identity of one named metric."""

    kind = "untyped"

    def __init__(self, lock: threading.Lock, name: str, description: str) -> None:
        self._lock = lock
        self.name = name
        self.description = description


class Counter(_Instrument):
    """Monotonically increasing count, one series per label set."""

    kind = "counter"

    def __init__(self, lock: threading.Lock, name: str, description: str) -> None:
        super().__init__(lock, name, description)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _snapshot_locked(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, in-flight load)."""

    kind = "gauge"

    def __init__(self, lock: threading.Lock, name: str, description: str) -> None:
        super().__init__(lock, name, description)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _snapshot_locked(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Histogram(_Instrument):
    """Cumulative-bucket histogram of observations, Prometheus-style."""

    kind = "histogram"

    def __init__(
        self,
        lock: threading.Lock,
        name: str,
        description: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(lock, name, description)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        self.buckets = bounds
        #: per label set: ([count per bucket], sum, count)
        self._series: Dict[_LabelKey, Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = ([0] * len(self.buckets), 0.0, 0)
            counts, total, count = series
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            self._series[key] = (counts, total + value, count + 1)

    def series(self, **labels: Any) -> Optional[Dict[str, Any]]:
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return None
            return self._series_dict(series)

    def _series_dict(self, series: Tuple[List[int], float, int]) -> Dict[str, Any]:
        counts, total, count = series
        cumulative: Dict[float, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative[bound] = running
        return {"buckets": cumulative, "sum": total, "count": count}

    def _snapshot_locked(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), **self._series_dict(series)}
            for key, series in sorted(self._series.items())
        ]


class MetricsRegistry:
    """Create-or-get instrument factory plus atomic snapshot.

    Factories are idempotent — asking twice for the same name returns the
    same instrument — but re-registering a name as a different kind is a
    configuration error (two call sites disagreeing about what a metric
    *is* should fail loudly, not silently fork the data).

    One lock covers the registry and every instrument it created: metric
    updates are tiny critical sections, and a single lock makes
    :meth:`snapshot` a true point-in-time cut across all instruments.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, *args: Any) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, cannot re-register as "
                        f"{cls.kind}"  # type: ignore[attr-defined]
                    )
                return existing
            instrument = cls(self._lock, name, *args)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, description, buckets)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All series of all instruments at one instant, by metric name."""
        with self._lock:
            return {
                name: {
                    "kind": instrument.kind,
                    "description": instrument.description,
                    "series": instrument._snapshot_locked(),
                }
                for name, instrument in sorted(self._instruments.items())
            }


class _NullInstrument:
    """One object answering for every instrument of a null registry."""

    __slots__ = ()
    name = ""
    description = ""
    kind = "untyped"
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        return None

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        return None

    def set(self, value: float, **labels: Any) -> None:
        return None

    def observe(self, value: float, **labels: Any) -> None:
        return None

    def value(self, **labels: Any) -> float:
        return 0.0

    def series(self, **labels: Any) -> None:
        return None


class NullMetricsRegistry:
    """Zero-overhead registry: factories hand back one cached no-op."""

    enabled = False

    _instrument = _NullInstrument()

    def counter(self, name: str, description: str = "") -> _NullInstrument:
        return self._instrument

    def gauge(self, name: str, description: str = "") -> _NullInstrument:
        return self._instrument

    def histogram(
        self, name: str, description: str = "", buckets: Any = None
    ) -> _NullInstrument:
        return self._instrument

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}


#: Shared default: metrics disabled, nothing recorded.
NULL_METRICS = NullMetricsRegistry()
