"""The one way benchmarks write artifacts: envelope + trajectory append.

Every ``bench_*.py`` used to hand-roll its own ``json.dump`` with
drifting keys (``bench``/``quick``/``executor`` inconsistently present).
:func:`write_bench_artifact` normalizes that: one canonical envelope —

.. code-block:: python

    {"schema": 1, "bench": ..., "quick": ..., "executor": ..., **payload}

— written to the bench's ``BENCH_*.json`` path (still overridable per
bench via its environment variable), *and* a
:class:`~repro.obs.record.RunRecord` appended to the telemetry
trajectory store, so every benchmark run — CI smoke or local full run —
extends the history the sentinel and calibration reports read.

The trajectory path comes from ``BENCH_TRAJECTORY`` (default
``BENCH_trajectory.jsonl`` in the working directory); set it to the
empty string to skip the append (unit tests of the benches themselves).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.obs.history import TelemetryStore
from repro.obs.record import PredictionRecord, RunRecord, make_run_record

#: Envelope layout version, asserted by the schema test.
ENVELOPE_SCHEMA = 1

#: Keys every normalized ``BENCH_*.json`` starts with, in order.
ENVELOPE_KEYS = ("schema", "bench", "quick", "executor")

TRAJECTORY_ENV = "BENCH_TRAJECTORY"
DEFAULT_TRAJECTORY = "BENCH_trajectory.jsonl"


def trajectory_path() -> Optional[str]:
    """The configured trajectory store path, or ``None`` when disabled."""
    path = os.environ.get(TRAJECTORY_ENV, DEFAULT_TRAJECTORY)
    return path or None


def build_envelope(
    bench: str,
    payload: Mapping[str, Any],
    *,
    quick: bool,
    executor: Optional[str] = None,
) -> Dict[str, Any]:
    """The canonical artifact document (envelope keys first, then payload)."""
    for key in ENVELOPE_KEYS:
        if key in payload:
            raise ValueError(
                f"payload must not shadow envelope key {key!r}; "
                "pass it through the harness arguments instead"
            )
    envelope: Dict[str, Any] = {
        "schema": ENVELOPE_SCHEMA,
        "bench": bench,
        "quick": bool(quick),
        "executor": executor,
    }
    envelope.update(payload)
    return envelope


def validate_envelope(document: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a normalized envelope."""
    for key in ENVELOPE_KEYS:
        if key not in document:
            raise ValueError(f"artifact is missing envelope key {key!r}")
    if document["schema"] != ENVELOPE_SCHEMA:
        raise ValueError(f"unknown artifact schema {document['schema']!r}")
    if not isinstance(document["bench"], str) or not document["bench"]:
        raise ValueError("artifact 'bench' must be a non-empty string")
    if not isinstance(document["quick"], bool):
        raise ValueError("artifact 'quick' must be a boolean")
    if document["executor"] is not None and not isinstance(
        document["executor"], str
    ):
        raise ValueError("artifact 'executor' must be a string or null")


def write_bench_artifact(
    bench: str,
    payload: Mapping[str, Any],
    *,
    quick: bool,
    executor: Optional[str] = None,
    artifact: Optional[str] = None,
    metrics: Optional[Mapping[str, float]] = None,
    predictions: Sequence[PredictionRecord] = (),
    meta: Optional[Mapping[str, Any]] = None,
    fingerprint_extra: Optional[Mapping[str, Any]] = None,
    trajectory: Optional[str] = None,
    run_record: Optional[RunRecord] = None,
) -> Dict[str, Any]:
    """Write the normalized ``BENCH_*.json`` and extend the trajectory.

    ``metrics`` are the scalar headlines worth tracking across runs
    (throughput, overhead %, rates); ``payload`` is the full document
    archived in the JSON artifact.  When the caller already assembled a
    :class:`RunRecord` (e.g. :meth:`QueryService.run_record`), pass it
    as ``run_record`` and only the artifact envelope is added on top.
    Returns the envelope written.
    """
    envelope = build_envelope(bench, payload, quick=quick, executor=executor)
    if artifact is None:
        artifact = f"BENCH_{bench}.json"
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=2)

    if run_record is None:
        run_record = make_run_record(
            bench,
            quick=quick,
            metrics=metrics,
            meta=meta,
            predictions=predictions,
            fingerprint_extra={
                "executor": executor,
                **(fingerprint_extra or {}),
            },
        )
    store_path = trajectory if trajectory is not None else trajectory_path()
    if store_path:
        TelemetryStore(store_path).append(run_record)
    return envelope
