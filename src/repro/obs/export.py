"""Exporters: Chrome trace JSON, Prometheus text, latency breakdowns.

Three views over the same instrumentation:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome trace
  event format (``{"traceEvents": [...]}`` of complete ``"ph": "X"``
  events), loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  One row per thread; span attributes appear as
  event ``args``.
* :func:`prometheus_text` — the Prometheus text exposition format for a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot, suitable for a
  ``/metrics`` endpoint or a textfile collector.
* :func:`query_phase_rows` / :func:`latency_breakdown` — a per-query
  decomposition of end-to-end latency into the service's phases
  (admission wait, planning, map, shuffle, reduce, parked), as
  machine-readable rows or an aligned plain-text table.

All output is deterministic given the spans/series (stable sorting
everywhere), which is what the golden-file tests pin.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: Phase order of the latency breakdown report.
PHASES: Tuple[str, ...] = (
    "admission_wait", "planning", "map", "shuffle", "reduce", "parked",
)

#: Span name → breakdown phase.  A span mapped here accounts for its whole
#: subtree (``re-certify`` under ``planning`` is not counted twice).
SPAN_PHASE: Dict[str, str] = {
    "admission-wait": "admission_wait",
    "planning": "planning",
    "pipeline-plan": "planning",
    "re-certify": "planning",
    "replan": "planning",
    "profile-intermediate": "planning",
    "map": "map",
    "shuffle": "shuffle",
    "reduce": "reduce",
    "parked": "parked",
}


# ----------------------------------------------------------------------
# Chrome trace events (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def chrome_trace(tracer: Any, process_name: str = "repro") -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace event document.

    Timestamps are microseconds since the tracer's epoch; thread ids are
    remapped to small integers in order of first appearance so documents
    are stable across runs of the same span layout.
    """
    spans = tracer.spans()
    epoch = getattr(tracer, "epoch", 0.0)
    tids: Dict[int, int] = {}
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        tid = tids.setdefault(span.thread_id, len(tids))
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.attributes.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        events.append(
            {
                "name": span.name,
                "cat": SPAN_PHASE.get(span.name, "repro"),
                "ph": "X",
                "ts": round((span.start - epoch) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Any, path: str, process_name: str = "repro") -> str:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer, process_name=process_name), handle)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _format_number(value: float) -> str:
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _merged_labels(labels: Dict[str, str], **extra: str) -> str:
    merged = dict(labels)
    merged.update(extra)
    return _format_labels(merged)


def prometheus_text(registry: Any) -> str:
    """One registry snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, metric in registry.snapshot().items():
        if metric["description"]:
            lines.append(f"# HELP {name} {metric['description']}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        for series in metric["series"]:
            labels = series["labels"]
            if metric["kind"] == "histogram":
                for bound, cumulative in series["buckets"].items():
                    lines.append(
                        f"{name}_bucket"
                        f"{_merged_labels(labels, le=_format_number(bound))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_merged_labels(labels, le='+Inf')}"
                    f" {series['count']}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)}"
                    f" {_format_number(series['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {series['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)}"
                    f" {_format_number(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Per-query latency breakdown
# ----------------------------------------------------------------------
def query_phase_rows(tracer: Any) -> List[Dict[str, Any]]:
    """Decompose each ``query`` root span's latency into phases.

    Returns one row per query: the query id/label, total seconds, seconds
    per phase (see :data:`PHASES`) and the unattributed remainder
    (``other``, clamped at zero).  A span whose name maps to a phase
    accounts for its entire subtree, so nested detail spans (``re-certify``
    inside ``planning``, derived ``map``/``shuffle``/``reduce`` inside a
    ``job``) are never double-counted.
    """
    spans = tracer.spans()
    children: Dict[Optional[int], List[Any]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def accumulate(span: Any, phases: Dict[str, float]) -> None:
        for child in children.get(span.span_id, ()):
            phase = SPAN_PHASE.get(child.name)
            if phase is not None:
                phases[phase] += child.duration
            else:
                accumulate(child, phases)

    rows: List[Dict[str, Any]] = []
    for span in spans:
        if span.name != "query":
            continue
        phases = {phase: 0.0 for phase in PHASES}
        accumulate(span, phases)
        accounted = sum(phases.values())
        row: Dict[str, Any] = {
            "query": span.attributes.get("query", span.span_id),
            "label": span.attributes.get("label", ""),
            "status": span.attributes.get("status", ""),
            "total_s": span.duration,
            "other_s": max(0.0, span.duration - accounted),
        }
        for phase in PHASES:
            row[f"{phase}_s"] = phases[phase]
        rows.append(row)
    return rows


def latency_breakdown(tracer: Any) -> str:
    """Aligned plain-text table of :func:`query_phase_rows`, with totals."""
    rows = query_phase_rows(tracer)
    if not rows:
        return "latency breakdown: no query spans recorded\n"
    headers = ["query", "label", "status", "total"]
    headers.extend(phase.replace("_", "-") for phase in PHASES)
    headers.append("other")
    table: List[List[str]] = [headers]
    totals = {key: 0.0 for key in PHASES}
    total_all = 0.0
    other_all = 0.0
    for row in rows:
        cells = [
            str(row["query"]),
            str(row["label"]),
            str(row["status"]),
            f"{row['total_s'] * 1e3:.2f}ms",
        ]
        for phase in PHASES:
            cells.append(f"{row[f'{phase}_s'] * 1e3:.2f}ms")
            totals[phase] += row[f"{phase}_s"]
        cells.append(f"{row['other_s'] * 1e3:.2f}ms")
        total_all += row["total_s"]
        other_all += row["other_s"]
        table.append(cells)
    footer = ["all", f"({len(rows)} queries)", "", f"{total_all * 1e3:.2f}ms"]
    footer.extend(f"{totals[phase] * 1e3:.2f}ms" for phase in PHASES)
    footer.append(f"{other_all * 1e3:.2f}ms")
    table.append(footer)
    widths = [
        max(len(row[column]) for row in table) for column in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines) + "\n"
