"""AGM bounds with a canonical-query fractional-edge-cover cache.

Cascade enumeration asks for the AGM bound of the same induced sub-query
once per tree containing that subtree — dozens of times for a single
planning call — and each uncached call re-solves the cover LP.  The cover
depends only on the query *hypergraph* (relation names and their attribute
sets), so covers are memoized here in a process-wide
:class:`~repro.planner.cache.SchemaCache` keyed by
:func:`canonical_query_key`.  Hits and misses surface both through
:func:`cover_cache_stats` and, when a metrics registry is supplied, the
``bounds_cover_cache_{hits,misses}_total`` counters.
"""

from __future__ import annotations

from typing import Any, Mapping, Tuple

from repro.analysis.fractional_cover import FractionalEdgeCover, fractional_edge_cover
from repro.obs.metrics import NULL_METRICS
from repro.planner.cache import CacheStats, SchemaCache
from repro.problems.joins import JoinQuery

_COVER_CACHE = SchemaCache(maxsize=4096)


def canonical_query_key(query: JoinQuery) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """A hashable identity for a query's hypergraph, order-independent."""
    return tuple(
        sorted(
            (relation.name, tuple(relation.attributes))
            for relation in query.relations
        )
    )


def cached_fractional_edge_cover(
    query: JoinQuery, metrics: Any = NULL_METRICS
) -> FractionalEdgeCover:
    """The optimal fractional edge cover, memoized per canonical query."""
    built = []

    def build() -> FractionalEdgeCover:
        built.append(True)
        return fractional_edge_cover(query)

    cover = _COVER_CACHE.get(canonical_query_key(query), build)
    if metrics is not None and metrics.enabled:
        if built:
            metrics.counter(
                "bounds_cover_cache_misses_total",
                "Fractional-edge-cover LP solves (cover-cache misses).",
            ).inc()
        else:
            metrics.counter(
                "bounds_cover_cache_hits_total",
                "Fractional-edge-cover cache hits.",
            ).inc()
    return cover


def cover_cache_stats() -> CacheStats:
    """Hit/miss/eviction snapshot of the process-wide cover cache."""
    return _COVER_CACHE.stats()


def clear_cover_cache() -> None:
    """Drop the memoized covers (tests; profiles never invalidate covers)."""
    _COVER_CACHE.clear()


def agm_bound(
    query: JoinQuery, row_counts: Mapping[str, float], metrics: Any = NULL_METRICS
) -> float:
    """The AGM output-size bound ``Π_e |R_e|^{x_e}`` for a join query.

    ``x`` is the optimal fractional edge cover of the query hypergraph —
    the same LP :mod:`repro.analysis.fractional_cover` solves for the
    ``g(q) = q^ρ`` coverage bounds, reused here with per-relation weights
    and memoized per canonical hypergraph.
    """
    cover = cached_fractional_edge_cover(query, metrics)
    bound = 1.0
    for relation in query.relations:
        weight = cover.weights.get(relation.name, 0.0)
        if weight <= 0.0:
            continue
        rows = float(row_counts[relation.name])
        if rows <= 0.0:
            return 0.0
        bound *= rows**weight
    return bound
