"""Pluggable size/load bound estimation (the planner's bound registry).

Public surface:

* :class:`BoundRegistry` / :data:`default_bound_registry` — the strategy
  registry every planning and certification path routes through.
* The built-in estimators — :class:`PerValueHistogramBound`,
  :class:`AGMBound`, :class:`DegreeConstraintBound`,
  :class:`TopKFrequencyBound` — plus :func:`legacy_bound_registry` for
  bit-identical pre-refactor behaviour.
* :func:`agm_bound` and the canonical-query cover cache.
"""

from repro.bounds.base import (
    METHOD_AGM,
    METHOD_DEGREE,
    METHOD_DOMAIN,
    METHOD_HISTOGRAM,
    METHOD_TOPK,
    BoundCandidate,
    BoundContext,
    BoundDecision,
    BoundEstimator,
    BoundRegistry,
    ChildView,
    default_bound_registry,
)
from repro.bounds.cover import (
    agm_bound,
    cached_fractional_edge_cover,
    canonical_query_key,
    clear_cover_cache,
    cover_cache_stats,
)
from repro.bounds.estimators import (
    AGMBound,
    DegreeConstraintBound,
    PerValueHistogramBound,
    TopKFrequencyBound,
    legacy_bound_registry,
    per_value_sum,
)

__all__ = [
    "METHOD_AGM",
    "METHOD_DEGREE",
    "METHOD_DOMAIN",
    "METHOD_HISTOGRAM",
    "METHOD_TOPK",
    "AGMBound",
    "BoundCandidate",
    "BoundContext",
    "BoundDecision",
    "BoundEstimator",
    "BoundRegistry",
    "ChildView",
    "DegreeConstraintBound",
    "PerValueHistogramBound",
    "TopKFrequencyBound",
    "agm_bound",
    "cached_fractional_edge_cover",
    "canonical_query_key",
    "clear_cover_cache",
    "cover_cache_stats",
    "default_bound_registry",
    "legacy_bound_registry",
    "per_value_sum",
]
