"""The pluggable bound-estimation layer: contexts, estimators, registry.

Every place the planner needs an upper bound on a join's output size —
cascade node pricing in :mod:`repro.pipeline.estimate`, one-round output
bounds in :mod:`repro.pipeline.planner` — routes through one
:class:`BoundRegistry`.  Estimators are strategies in the planner-registry
convention: adding a new bound is a registration, not a call-site edit.

An estimator receives a :class:`BoundContext` describing either

* a **binary join** — two :class:`ChildView`\\ s (already-bounded inputs,
  their sound histograms, degree caps and leaf attribute profiles) plus the
  shared attributes; or
* a **whole query** — no children, just the induced query and base-relation
  row counts (the one-round Shares output bound).

and returns a :class:`BoundCandidate` or ``None`` when it does not apply.
Every candidate ``value`` must be a *deterministically sound* upper bound
on the true output size in both profile fidelities — sampled profiles only
feed estimators deterministic sketch bounds (Misra–Gries uppers, exact
``max_degree`` scalars), never reservoir or KMV estimates.  Estimate-grade
refinements (KMV tail counts) travel separately in ``estimate`` and may
only tighten the planner's *calibrated estimate*, never the bound.

:meth:`BoundRegistry.evaluate` takes the minimum over applicable
candidates; ties go to the earliest registration, which is how the default
registry reproduces the legacy estimator's method labels bit-for-bit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.obs.metrics import NULL_METRICS
from repro.problems.joins import JoinQuery
from repro.stats.profile import AttributeProfile, DatasetProfile

#: Size-bound methods, in decreasing fidelity.
METHOD_HISTOGRAM = "per-value-histogram"
METHOD_AGM = "agm"
METHOD_DOMAIN = "model-domain"
METHOD_DEGREE = "degree-constraint"
METHOD_TOPK = "top-k-frequency"


@dataclass(frozen=True)
class ChildView:
    """What a bound estimator may know about one join input.

    ``rows`` is a sound upper bound on the input's cardinality (exact for
    base relations, the child's own certified size bound for
    intermediates).  ``sound_histograms`` carries per-attribute value →
    upper-bound maps, ``degree_caps`` per-attribute caps on any single
    value's multiplicity, and ``attribute_profiles`` the *collected* (not
    synthetic) per-attribute statistics — present only for base-relation
    leaves, which is what keeps sketch-driven estimators sound.
    """

    name: str
    rows: float
    sound_histograms: Optional[Mapping[str, Mapping[Hashable, float]]] = None
    degree_caps: Optional[Mapping[str, float]] = None
    attribute_profiles: Optional[Mapping[str, AttributeProfile]] = None


@dataclass(frozen=True)
class BoundContext:
    """One bound-estimation request.

    ``query`` is the induced sub-query of the relations below this node
    (the whole query for one-round bounds); ``row_counts`` its base
    relations' row counts.  ``left``/``right`` are present for binary-join
    contexts and ``None`` for whole-query contexts.
    """

    query: JoinQuery
    row_counts: Mapping[str, float]
    profile: Optional[DatasetProfile] = None
    left: Optional[ChildView] = None
    right: Optional[ChildView] = None
    shared_attributes: Tuple[str, ...] = ()
    metrics: Any = NULL_METRICS

    @property
    def is_join(self) -> bool:
        return self.left is not None and self.right is not None


@dataclass(frozen=True)
class BoundCandidate:
    """One estimator's answer: a sound bound, optionally a tighter estimate.

    ``value`` is deterministically sound.  ``estimate``, when present, is
    an estimate-grade refinement (e.g. KMV-paired tail counts) that the
    planner may use to calibrate expectations but never as a bound.
    """

    method: str
    value: float
    estimate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError(f"bound values are non-negative, got {self.value}")


@dataclass(frozen=True)
class BoundDecision:
    """The registry's verdict: the winning bound plus every candidate."""

    value: float
    method: str
    candidates: Tuple[BoundCandidate, ...]

    @property
    def estimate(self) -> float:
        """The tightest estimate-grade value across candidates (≤ value)."""
        best = self.value
        for candidate in self.candidates:
            if candidate.estimate is not None and candidate.estimate < best:
                best = candidate.estimate
        return best

    def candidate(self, method: str) -> Optional[BoundCandidate]:
        for candidate in self.candidates:
            if candidate.method == method:
                return candidate
        return None


class BoundEstimator(abc.ABC):
    """One bound strategy. Subclass, set ``name``, implement ``estimate``."""

    #: Registry identity; also the default method label.
    name: str = ""

    @abc.abstractmethod
    def estimate(self, context: BoundContext) -> Optional[BoundCandidate]:
        """The estimator's bound for ``context``, or ``None`` if N/A."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class BoundRegistry:
    """An ordered collection of bound estimators.

    Mirrors the planner's :class:`~repro.planner.registry.SchemaRegistry`
    convention: ``register`` works as a plain call or a class decorator,
    and consumers evaluate against whatever is registered.  Order matters —
    ties on the minimum go to the earliest registration.
    """

    def __init__(self) -> None:
        self._estimators: List[BoundEstimator] = []

    def register(self, estimator):
        """Register an estimator instance (or class, decorator-style)."""
        instance = estimator() if isinstance(estimator, type) else estimator
        if not isinstance(instance, BoundEstimator):
            raise ConfigurationError(
                f"bound estimators subclass BoundEstimator, got {instance!r}"
            )
        if not instance.name:
            raise ConfigurationError("bound estimators need a non-empty name")
        if instance.name in self.names():
            raise ConfigurationError(
                f"bound estimator {instance.name!r} is already registered"
            )
        self._estimators.append(instance)
        return estimator

    @property
    def estimators(self) -> Tuple[BoundEstimator, ...]:
        return tuple(self._estimators)

    def names(self) -> Tuple[str, ...]:
        return tuple(estimator.name for estimator in self._estimators)

    def evaluate(self, context: BoundContext) -> BoundDecision:
        """The minimum over applicable bounds; ties to earliest registered."""
        candidates: List[BoundCandidate] = []
        winner: Optional[BoundCandidate] = None
        for estimator in self._estimators:
            candidate = estimator.estimate(context)
            if candidate is None:
                continue
            candidates.append(candidate)
            if winner is None or candidate.value < winner.value:
                winner = candidate
        if winner is None:
            raise ConfigurationError(
                f"no registered bound applies to {context.query.name!r} "
                f"(registered: {list(self.names())})"
            )
        metrics = context.metrics
        if metrics is not None and metrics.enabled:
            metrics.counter(
                "bounds_evaluations_total", "Bound-registry evaluations."
            ).inc()
            metrics.counter(
                "bounds_method_wins_total", "Winning size-bound method."
            ).inc(method=winner.method)
        return BoundDecision(
            value=winner.value, method=winner.method, candidates=tuple(candidates)
        )


#: The registry every planner consumer uses unless told otherwise.
#: Populated by :mod:`repro.bounds.estimators` at import time.
default_bound_registry = BoundRegistry()
