"""The built-in bound estimators, registered on the default registry.

Registration order is load-bearing: ties on the minimum go to the earliest
registration, and the legacy estimator resolved histogram-vs-AGM ties in
the histogram's favour — so ``PerValueHistogramBound`` registers first,
then ``AGMBound``, then the two estimators new in this layer.

* :class:`PerValueHistogramBound` — ``min_s Σ_v cnt_L(s=v)·cnt_R(s=v)``
  over the children's *sound* histograms.
* :class:`AGMBound` — ``Π_e |R_e|^{x_e}`` from the cover cache, clamped by
  the cross product in join contexts.
* :class:`DegreeConstraintBound` — the Abo Khamis–Ngo–Suciu style chain
  bound from per-attribute degree caps (``max_degree`` / functional
  dependencies), clamped by AGM so it is ≤ AGM whenever it applies.
* :class:`TopKFrequencyBound` — the UES-style bound (PostBOUND): sorted
  top-k frequency-upper-bound vectors paired positionally (sound by the
  rearrangement inequality), deterministic tail caps, KMV distinct counts
  feeding only the estimate-grade refinement.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.bounds.base import (
    METHOD_AGM,
    METHOD_DEGREE,
    METHOD_DOMAIN,
    METHOD_HISTOGRAM,
    METHOD_TOPK,
    BoundCandidate,
    BoundContext,
    BoundEstimator,
    ChildView,
    default_bound_registry,
)
from repro.bounds.cover import agm_bound
from repro.stats.profile import AttributeProfile

#: Head length for top-k frequency vectors built from full histograms
#: (Misra–Gries summaries are already capped at their capacity).
TOP_K_HEAD = 32


def per_value_sum(
    left: Mapping[Hashable, float], right: Mapping[Hashable, float]
) -> float:
    """``Σ_v left(v)·right(v)`` over the histograms' common support."""
    small, large = left, right
    if len(large) < len(small):
        small, large = large, small
    total = 0.0
    for value, count in small.items():
        other = large.get(value)
        if other:
            total += count * other
    return total


def _cross_product(context: BoundContext) -> float:
    return context.left.rows * context.right.rows


class PerValueHistogramBound(BoundEstimator):
    """Per-value sums over sound histograms — the exact-profile workhorse."""

    name = METHOD_HISTOGRAM

    def estimate(self, context: BoundContext) -> Optional[BoundCandidate]:
        if not context.is_join:
            return None
        left, right = context.left, context.right
        if left.sound_histograms is None or right.sound_histograms is None:
            return None
        sound_shared = [
            attribute
            for attribute in context.shared_attributes
            if attribute in left.sound_histograms
            and attribute in right.sound_histograms
        ]
        if not sound_shared:
            return None
        value = min(
            per_value_sum(
                left.sound_histograms[attribute], right.sound_histograms[attribute]
            )
            for attribute in sound_shared
        )
        return BoundCandidate(method=METHOD_HISTOGRAM, value=value)


class AGMBound(BoundEstimator):
    """The AGM bound from base row counts; always applicable, always sound.

    In join contexts the candidate is clamped by the children's cross
    product, and labels itself ``model-domain`` when no profile backs the
    row counts — both legacy behaviours the bit-identity tests pin.
    """

    name = METHOD_AGM

    def estimate(self, context: BoundContext) -> Optional[BoundCandidate]:
        value = agm_bound(context.query, context.row_counts, context.metrics)
        method = METHOD_AGM
        if context.is_join:
            value = min(value, _cross_product(context))
            if context.profile is None:
                method = METHOD_DOMAIN
        return BoundCandidate(method=method, value=value)


class DegreeConstraintBound(BoundEstimator):
    """Chain bounds from per-attribute degree caps (polymatroid style).

    A degree cap ``cap_R(a)`` bounds how many ``R``-rows any single value
    of ``a`` can match, so ``|L ⋈ R| ≤ |L| · min_{a shared} cap_R(a)`` (and
    symmetrically).  For whole queries the same step composes along an
    ordering of the relations — the chain instantiation of the Abo
    Khamis–Ngo–Suciu polymatroid bound.  The candidate is clamped by AGM,
    so it is ≤ AGM whenever it applies and degenerates to exactly AGM when
    every cap is trivial.  Caps are deterministic in both profile modes
    (``max_degree`` is collected exactly even for sampled profiles).
    """

    name = METHOD_DEGREE

    def estimate(self, context: BoundContext) -> Optional[BoundCandidate]:
        if context.is_join:
            chain = self._join_chain(context)
        else:
            chain = self._query_chain(context)
        if chain is None:
            return None
        agm = agm_bound(context.query, context.row_counts, context.metrics)
        if context.is_join:
            agm = min(agm, _cross_product(context))
        return BoundCandidate(method=METHOD_DEGREE, value=min(chain, agm))

    @staticmethod
    def _join_chain(context: BoundContext) -> Optional[float]:
        left, right = context.left, context.right
        terms: List[float] = []
        for attribute in context.shared_attributes:
            left_cap = (left.degree_caps or {}).get(attribute)
            right_cap = (right.degree_caps or {}).get(attribute)
            if right_cap is not None:
                terms.append(left.rows * right_cap)
            if left_cap is not None:
                terms.append(right.rows * left_cap)
        if not terms:
            return None
        return min(terms)

    def _query_chain(self, context: BoundContext) -> Optional[float]:
        if context.profile is None:
            return None
        relations = list(context.query.relations)
        if len(relations) < 2:
            return None
        caps: Dict[str, Dict[str, float]] = {}
        for relation in relations:
            profiled = context.profile.relation(relation.name)
            caps[relation.name] = {
                attribute: float(stats.degree_cap)
                for attribute, stats in profiled.attributes.items()
            }
        best: Optional[float] = None
        for ordering in self._orderings(relations, context.row_counts, caps):
            bound = self._chain_value(ordering, context.row_counts, caps)
            if best is None or bound < best:
                best = bound
        return best

    @staticmethod
    def _chain_value(
        ordering: Sequence,
        row_counts: Mapping[str, float],
        caps: Mapping[str, Mapping[str, float]],
    ) -> float:
        covered: set = set()
        bound = 1.0
        for index, relation in enumerate(ordering):
            rows = float(row_counts[relation.name])
            if index == 0:
                factor = rows
            else:
                connecting = [
                    caps[relation.name][attribute]
                    for attribute in relation.attributes
                    if attribute in covered and attribute in caps[relation.name]
                ]
                factor = min(connecting + [rows])
            bound *= factor
            covered.update(relation.attributes)
        return bound

    def _orderings(self, relations, row_counts, caps):
        if len(relations) <= 6:
            yield from itertools.permutations(relations)
            return
        # Too many relations to enumerate: greedy chain from each start,
        # always extending with the cheapest next factor.
        for start in range(len(relations)):
            ordering = [relations[start]]
            remaining = relations[:start] + relations[start + 1 :]
            covered = set(relations[start].attributes)
            while remaining:
                def factor(relation):
                    connecting = [
                        caps[relation.name][attribute]
                        for attribute in relation.attributes
                        if attribute in covered and attribute in caps[relation.name]
                    ]
                    return min(connecting + [float(row_counts[relation.name])])

                next_relation = min(remaining, key=factor)
                ordering.append(next_relation)
                covered.update(next_relation.attributes)
                remaining.remove(next_relation)
            yield ordering


class _FrequencyView:
    """One column's sorted frequency-upper-bound vector plus tail caps."""

    __slots__ = ("uppers", "lowers", "total", "tail_cap", "tail_count", "tail_count_estimate")

    def __init__(
        self,
        uppers: Sequence[float],
        lowers: Sequence[float],
        total: float,
        tail_cap: float,
        tail_count: Optional[float],
        tail_count_estimate: Optional[float],
    ) -> None:
        self.uppers = list(uppers)
        self.lowers = list(lowers)
        self.total = total
        self.tail_cap = tail_cap
        self.tail_count = tail_count
        self.tail_count_estimate = tail_count_estimate


class TopKFrequencyBound(BoundEstimator):
    """UES-style top-k frequency pairing over leaf attribute statistics.

    Per shared attribute, both sides' top frequencies (exact histogram
    heads, or Misra–Gries deterministic uppers clamped by ``max_degree``)
    are sorted descending and paired positionally; the rearrangement
    inequality makes the aligned product sum dominate the true common-value
    matching.  Tail mass is capped by the first frequency *not* in the head
    (exact) or the Misra–Gries error bound (sampled), with the exact
    distinct count tightening the tail deterministically and the KMV
    distinct estimate feeding only the estimate-grade ``estimate`` field.
    """

    name = METHOD_TOPK

    def estimate(self, context: BoundContext) -> Optional[BoundCandidate]:
        if not context.is_join:
            return None
        best: Optional[float] = None
        best_estimate: Optional[float] = None
        for attribute in context.shared_attributes:
            left_view = self._view(context.left, attribute)
            right_view = self._view(context.right, attribute)
            if left_view is None or right_view is None:
                continue
            value, estimate = self._paired_bound(left_view, right_view)
            if best is None or value < best:
                best = value
            if best_estimate is None or estimate < best_estimate:
                best_estimate = estimate
        if best is None:
            return None
        return BoundCandidate(
            method=METHOD_TOPK, value=best, estimate=min(best_estimate, best)
        )

    @staticmethod
    def _view(child: ChildView, attribute: str) -> Optional[_FrequencyView]:
        if child.attribute_profiles is None:
            return None
        stats: Optional[AttributeProfile] = child.attribute_profiles.get(attribute)
        if stats is None:
            return None
        if stats.exact:
            counts = sorted(stats.histogram.values(), reverse=True)
            head = [float(count) for count in counts[:TOP_K_HEAD]]
            tail_cap = float(counts[TOP_K_HEAD]) if len(counts) > TOP_K_HEAD else 0.0
            tail_count = float(max(0, len(counts) - TOP_K_HEAD))
            return _FrequencyView(
                uppers=head,
                lowers=head,
                total=float(stats.total_count),
                tail_cap=tail_cap,
                tail_count=tail_count,
                tail_count_estimate=tail_count,
            )
        if not stats.heavy_hitters:
            return None
        cap = float(stats.degree_cap)
        error = float(stats.heavy_hitter_error)
        pairs = sorted(stats.heavy_hitters.values(), reverse=True)
        uppers = [min(float(low) + error, cap) for low in pairs]
        lowers = [float(low) for low in pairs]
        return _FrequencyView(
            uppers=uppers,
            lowers=lowers,
            total=float(stats.total_count),
            tail_cap=min(error, cap),
            tail_count=None,
            tail_count_estimate=max(0.0, stats.distinct_estimate - len(uppers)),
        )

    @staticmethod
    def _paired_bound(
        left: _FrequencyView, right: _FrequencyView
    ) -> Tuple[float, float]:
        head = min(len(left.uppers), len(right.uppers))
        head_sum = sum(
            left.uppers[i] * right.uppers[i] for i in range(head)
        )
        left_rem = max(0.0, left.total - sum(left.lowers[:head]))
        right_rem = max(0.0, right.total - sum(right.lowers[:head]))
        left_cap = left.uppers[head] if head < len(left.uppers) else left.tail_cap
        right_cap = right.uppers[head] if head < len(right.uppers) else right.tail_cap
        tail_terms = [left_rem * right_cap, right_rem * left_cap]
        if left.tail_count is not None and right.tail_count is not None:
            left_beyond = left.tail_count + max(0, len(left.uppers) - head)
            right_beyond = right.tail_count + max(0, len(right.uppers) - head)
            tail_terms.append(
                left_cap * right_cap * min(left_beyond, right_beyond)
            )
        tail = max(0.0, min(tail_terms))
        value = head_sum + tail
        estimate = value
        if (
            left.tail_count_estimate is not None
            and right.tail_count_estimate is not None
        ):
            estimated_tail = (
                left_cap
                * right_cap
                * min(left.tail_count_estimate, right.tail_count_estimate)
            )
            estimate = head_sum + max(0.0, min(tail + 0.0, estimated_tail, *tail_terms))
        return value, estimate


def legacy_bound_registry():
    """A registry with only the pre-refactor estimators (histogram + AGM).

    The bit-identity tests plan through this to pin that the refactor
    changed the plumbing, not the numbers.
    """
    from repro.bounds.base import BoundRegistry

    registry = BoundRegistry()
    registry.register(PerValueHistogramBound())
    registry.register(AGMBound())
    return registry


default_bound_registry.register(PerValueHistogramBound())
default_bound_registry.register(AGMBound())
default_bound_registry.register(DegreeConstraintBound())
default_bound_registry.register(TopKFrequencyBound())
