"""Fingerprint-keyed store of shared intermediates across queued pipelines.

When two pipelines join the same base relations through the same sub-tree
with the same physical plan, their intermediate results are bit-identical
— the engine is deterministic given input order and plan.  The cascade
coroutine stamps every round with exactly that identity
(:func:`repro.pipeline.execute.pipeline_rounds` with ``reuse_keys=True``:
sub-tree structure + base-record content fingerprints + chosen plan name
and shares vector), the same fingerprint-keyed discipline
:class:`repro.planner.cache.SchemaCache` applies to plan builds.

:class:`IntermediateStore` keeps one entry per key with a small lifecycle:

``claim`` (first caller)   → ``build``: the caller becomes the *producer*
``claim`` (while pending)  → ``wait``: the caller parks until fulfilment
``claim`` (after fulfill)  → ``hit``: the stored outcome, immediately

The store never blocks and holds no locks of its own beyond a counter
lock — the query service calls it under its scheduler lock, parking
waiters without occupying a worker thread or an admission reservation
(so a queued producer can never be deadlocked by its own consumers).
A producer that fails hands its waiters back to the scheduler, which
promotes one of them to producer and re-dispatches the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

ReuseKey = Tuple[Hashable, ...]


@dataclass
class StoreEntry:
    """One shared intermediate: its producer claim, waiters, and value."""

    key: ReuseKey
    #: Opaque waiter tokens (the service parks its round tasks here).
    waiters: List[Any] = field(default_factory=list)
    fulfilled: bool = False
    #: The producer's :class:`~repro.pipeline.execute.RoundOutcome` once
    #: fulfilled — rows, profile and the engine job, shared verbatim.
    outcome: Optional[Any] = None


@dataclass(frozen=True)
class IntermediateStoreStats:
    """Counters of one :class:`IntermediateStore`."""

    #: Intermediates actually materialized (one engine execution each).
    materialized: int
    #: Rounds served from an already-materialized intermediate.
    reused: int
    #: Rounds that parked waiting on a pending producer (later reuses).
    waited: int
    #: Producer failures that re-queued their waiters.
    failures: int
    entries: int

    @property
    def rounds_saved(self) -> int:
        """Engine executions avoided: every reuse skipped one round."""
        return self.reused


class IntermediateStore:
    """Claim/fulfill registry for shareable intermediates.

    NOT internally locked for the claim/fulfill lifecycle — the query
    service serializes those under its scheduler lock, which it must hold
    anyway to park and wake round tasks atomically with the claim
    decision.  (Counters are plain ints mutated under that same lock, so
    :meth:`stats` snapshots are consistent.)
    """

    def __init__(self) -> None:
        self._entries: Dict[ReuseKey, StoreEntry] = {}
        self._materialized = 0
        self._reused = 0
        self._waited = 0
        self._failures = 0

    def claim(self, key: ReuseKey, waiter: Any) -> Tuple[str, StoreEntry]:
        """Resolve ``key`` for one round; returns ``(state, entry)``.

        ``state`` is ``"build"`` (caller is now the producer), ``"wait"``
        (``waiter`` was parked on the pending entry) or ``"hit"``
        (``entry.outcome`` is ready to adopt).
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = StoreEntry(key=key)
            self._entries[key] = entry
            return "build", entry
        if entry.fulfilled:
            self._reused += 1
            return "hit", entry
        entry.waiters.append(waiter)
        self._waited += 1
        return "wait", entry

    def fulfill(self, key: ReuseKey, outcome: Any) -> List[Any]:
        """Record the producer's outcome; returns the waiters to wake.

        Each returned waiter counts as a reuse — it adopts ``outcome``
        without an engine execution of its own.
        """
        entry = self._entries[key]
        entry.fulfilled = True
        entry.outcome = outcome
        self._materialized += 1
        waiters, entry.waiters = entry.waiters, []
        self._reused += len(waiters)
        return waiters

    def fail(self, key: ReuseKey) -> List[Any]:
        """Producer died before fulfilling; returns waiters to re-dispatch.

        The entry is removed so the first re-dispatched waiter claims the
        key afresh and becomes the new producer.
        """
        entry = self._entries.pop(key, None)
        if entry is None:
            return []
        self._failures += 1
        return entry.waiters

    def stats(self) -> IntermediateStoreStats:
        return IntermediateStoreStats(
            materialized=self._materialized,
            reused=self._reused,
            waited=self._waited,
            failures=self._failures,
            entries=len(self._entries),
        )

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._materialized = 0
        self._reused = 0
        self._waited = 0
        self._failures = 0
