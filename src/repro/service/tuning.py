"""Cost-based adaptive tuning of the mid-flight ``replan_factor``.

The adaptive executor re-plans a downstream round when its observed
certificate drops below ``replan_factor`` times the planning-time estimate
(see :mod:`repro.pipeline.execute`).  The factor trades re-planning cost
against the chance of a better plan: at 0.95 nearly every improvement
triggers a re-plan, at 0.05 almost none does.  One-shot execution has no
way to learn the right setting — but a long-lived service observing
re-plan outcomes *across queries* does.

Every :class:`~repro.pipeline.execute.ReplanEvent` now carries the
replacement plan's certificate (``new_bound``), so each re-plan is
scorable the moment it happens:

* **win** — the new plan's certified bound beats the old plan's observed
  bound: re-planning bought a provably lighter round.  Re-planning is
  paying off, so the tuner raises the factor (re-plan more eagerly).
* **loss** — the re-plan reproduced the same plan, certified no better,
  or found no feasible replacement at all (recorded with the old plan's
  name and bound): the planning work was wasted.  The tuner lowers the
  factor (demand a bigger observed improvement before re-planning again).

Adjustment is multiplicative with clamping — the standard no-regret shape
for a one-dimensional threshold under bandit feedback: step size is
proportional to the current value, extremes (never / always re-plan) stay
reachable but are approached geometrically slowly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TunerStats:
    """Snapshot of one :class:`ReplanTuner`."""

    factor: float
    wins: int
    losses: int
    #: Events carrying no ``new_bound`` (legacy producers): not scorable.
    unscored: int

    @property
    def observations(self) -> int:
        return self.wins + self.losses


class ReplanTuner:
    """Moves ``replan_factor`` by observed re-plan wins and losses.

    Thread-safe: the service registers :meth:`observe` as every query's
    ``replan_observer``, so events arrive concurrently from many worker
    threads.  :meth:`factor` is what the service passes to each *new*
    submission — in-flight queries keep the factor they started with, so
    a query's behaviour never changes mid-run.

    Parameters
    ----------
    initial:
        Starting threshold; the library default of 0.5 unless overridden.
    step:
        Multiplicative step per observation: a win multiplies the factor
        by ``1 + step``, a loss by ``1 / (1 + step)``.
    minimum / maximum:
        Clamp range; both must leave the trigger meaningful
        (``0 < minimum <= maximum < 1``).
    """

    def __init__(
        self,
        initial: float = 0.5,
        step: float = 0.15,
        minimum: float = 0.05,
        maximum: float = 0.95,
    ) -> None:
        if not 0 < minimum <= maximum < 1:
            raise ConfigurationError(
                f"need 0 < minimum <= maximum < 1, got [{minimum}, {maximum}]"
            )
        if not minimum <= initial <= maximum:
            raise ConfigurationError(
                f"initial {initial} outside clamp range [{minimum}, {maximum}]"
            )
        if step <= 0:
            raise ConfigurationError(f"step must be positive, got {step}")
        self.minimum = minimum
        self.maximum = maximum
        self.step = step
        self._lock = threading.Lock()
        self._factor = initial
        self._wins = 0
        self._losses = 0
        self._unscored = 0

    @property
    def factor(self) -> float:
        """The threshold the next submission should run with."""
        with self._lock:
            return self._factor

    def observe(self, event) -> None:
        """Score one :class:`~repro.pipeline.execute.ReplanEvent`.

        Matches the ``replan_observer`` callback signature of
        :func:`repro.pipeline.execute.execute_pipeline`.
        """
        with self._lock:
            if event.new_bound is None:
                self._unscored += 1
                return
            if event.won:
                self._wins += 1
                self._factor = min(self.maximum, self._factor * (1 + self.step))
            else:
                self._losses += 1
                self._factor = max(self.minimum, self._factor / (1 + self.step))

    def stats(self) -> TunerStats:
        with self._lock:
            return TunerStats(
                factor=self._factor,
                wins=self._wins,
                losses=self._losses,
                unscored=self._unscored,
            )
