"""Certified-load admission control: the paper's ``q`` as a serving budget.

The planner proves, per round, a *certified* upper bound on the largest
reducer's input size (:func:`repro.planner.certify.certify_max_reducer_load`).
One-shot execution uses that certificate to pick a plan; a serving layer
can use it for more — as the **price** of running the round on a shared
cluster.  If the cluster's reducers can hold ``capacity`` inputs in
aggregate, then any set of concurrently running rounds whose certified
loads sum to at most ``capacity`` is guaranteed never to oversubscribe a
reducer, no matter how their keys interleave: each round's bound holds
individually, and the rounds run on disjoint reducer key-spaces (one
engine job each).

:class:`AdmissionLedger` is that accounting, factored out of the scheduler
so it can be tested exhaustively on its own.  It is a plain reserve /
release ledger — deliberately *not* blocking: the query service calls it
under its own scheduler lock and parks rounds that do not fit, so the
ledger only needs to answer "does this round fit right now?" and keep the
counters (peak in-flight load, deferral count) that let tests and the
throughput benchmark assert the capacity invariant *during* a run rather
than after it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class AdmissionStats:
    """Point-in-time snapshot of one :class:`AdmissionLedger`."""

    capacity: float
    in_flight: float
    #: Largest value ``in_flight`` ever reached — the run-long witness that
    #: the capacity invariant held (``peak_in_flight <= capacity``).
    peak_in_flight: float
    #: Reservations currently held (rounds running on the cluster).
    holders: int
    #: Rounds admitted over the ledger's lifetime.
    admitted: int
    #: Times a round did not fit and had to wait for releases.
    deferrals: int

    @property
    def headroom(self) -> float:
        return self.capacity - self.in_flight


class AdmissionLedger:
    """Reserve/release accounting of in-flight certified reducer load.

    Thread-safe on its own lock; every operation is a short critical
    section.  ``try_reserve`` never blocks — callers that receive ``False``
    are expected to queue the round and retry when ``release`` frees load
    (the query service wakes its scheduler on every release).

    Parameters
    ----------
    capacity:
        The cluster capacity ``q``: the maximum sum of certified
        max-reducer-loads allowed in flight at once.
    """

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self._lock = threading.Lock()
        self._in_flight = 0.0
        self._peak = 0.0
        self._holders = 0
        self._admitted = 0
        self._deferrals = 0

    def fits(self, load: float) -> bool:
        """Whether ``load`` could be reserved right now (no side effects)."""
        with self._lock:
            return self._in_flight + load <= self.capacity

    def try_reserve(self, load: float) -> bool:
        """Reserve ``load`` if it fits; record a deferral if it does not.

        ``load`` must be positive and at most ``capacity`` — the service
        rejects over-capacity rounds at submission time, so seeing one here
        is a caller bug, not back-pressure.
        """
        if load <= 0:
            raise ConfigurationError(f"load must be positive, got {load}")
        if load > self.capacity:
            raise ConfigurationError(
                f"round load {load:g} exceeds cluster capacity "
                f"{self.capacity:g}; reject at submission instead"
            )
        with self._lock:
            if self._in_flight + load > self.capacity:
                self._deferrals += 1
                return False
            self._in_flight += load
            self._holders += 1
            self._admitted += 1
            if self._in_flight > self._peak:
                self._peak = self._in_flight
            return True

    def release(self, load: float) -> None:
        """Return a reservation made by a successful ``try_reserve``."""
        with self._lock:
            self._in_flight -= load
            self._holders -= 1
            # Guard against float drift across many reserve/release pairs:
            # an empty ledger is exactly empty.
            if self._holders == 0:
                self._in_flight = 0.0

    def stats(self) -> AdmissionStats:
        """Internally consistent snapshot of the ledger's counters."""
        with self._lock:
            return AdmissionStats(
                capacity=self.capacity,
                in_flight=self._in_flight,
                peak_in_flight=self._peak,
                holders=self._holders,
                admitted=self._admitted,
                deferrals=self._deferrals,
            )
