"""A long-lived query service scheduling pipeline *rounds* on one cluster.

Everything below this module is one-shot: plan a pipeline, execute it,
return.  :class:`QueryService` turns those pieces into a serving layer —
the ROADMAP's north-star step — by exploiting three properties the
library already guarantees:

* **Rounds are the schedulable unit.**  :func:`repro.pipeline.execute.
  pipeline_rounds` exposes each pipeline as a coroutine that yields one
  :class:`~repro.pipeline.execute.RoundWork` at a time, so the service can
  interleave rounds of many queries instead of running queries whole.
  Between rounds a query holds no cluster resources at all.
* **Certificates price admission.**  Every round carries a certified
  max-reducer-load; the :class:`~repro.service.admission.AdmissionLedger`
  guarantees the in-flight certified loads never sum past the configured
  capacity ``q`` — the paper's feasibility constraint, enforced at serving
  time instead of planning time.
* **Determinism makes intermediates shareable.**  Two queries joining the
  same base records through the same sub-tree and physical plan produce
  bit-identical intermediates, so the
  :class:`~repro.service.intermediates.IntermediateStore` materializes
  each fingerprint once and feeds every consumer.

Scheduling is event-driven: there is no scheduler thread.  Submissions,
round completions and intermediate fulfilments all funnel through one
lock, where the dispatch loop admits ready rounds in priority order
(higher ``priority`` first, cheaper certified load first within a
priority — cheap rounds backfill capacity that big rounds left idle).
Round bodies run on a small thread pool; the actual map/reduce work runs
through one shared executor (pass a warm
:class:`~repro.mapreduce.executor.ParallelExecutor` to overlap queries on
one process pool).

Example
-------
::

    service = QueryService(capacity=96, executor="parallel")
    handles = [service.submit(plan, records) for plan, records in queries]
    results = [h.result() for h in handles]
    print(service.describe())
    service.close()
"""

from __future__ import annotations

import dataclasses
import itertools
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import AdmissionError, ConfigurationError
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.executor import Executor, ExecutorSpec, resolve_executor
from repro.obs import NULL_METRICS, NULL_OBSERVABILITY, NULL_TRACER, Observability
from repro.obs.record import PredictionRecord, RunRecord, make_run_record
from repro.pipeline.execute import (
    PipelineRunResult,
    RoundOutcome,
    RoundWork,
    pipeline_rounds,
)
from repro.pipeline.planner import PipelinePlan
from repro.planner.cache import default_schema_cache
from repro.service.admission import AdmissionLedger
from repro.service.intermediates import IntermediateStore
from repro.service.tuning import ReplanTuner

logger = logging.getLogger(__name__)

#: Ceiling on retained per-round prediction records; beyond it new
#: records are counted as dropped instead of growing without bound in a
#: long-lived service.
TELEMETRY_PREDICTION_CAP = 20000


class QueryHandle:
    """Caller-side future for one submitted query."""

    def __init__(self, query_id: int, label: str) -> None:
        self.query_id = query_id
        self.label = label
        #: The ``replan_factor`` this query was admitted with (the tuner's
        #: value at submit time) — lets a caller replay the query one-shot
        #: with identical adaptive behaviour, e.g. for bit-identity checks.
        self.replan_factor: Optional[float] = None
        self._event = threading.Event()
        self._result: Optional[PipelineRunResult] = None
        self._exception: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> PipelineRunResult:
        """Block until the query finishes; re-raises its failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query {self.query_id} ({self.label}) not done after {timeout}s"
            )
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    # -- service side ---------------------------------------------------
    def _finish(self, result: PipelineRunResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, exception: BaseException) -> None:
        self._exception = exception
        self._event.set()


@dataclass
class _QueryState:
    """Service-side bookkeeping for one in-flight query."""

    query_id: int
    plan: PipelinePlan
    handle: QueryHandle
    gen: Any  # RoundGenerator
    priority: float
    replan_factor: float
    #: Monotonic submission sequence — FIFO tie-break in dispatch order.
    seq: int
    pending_work: Optional[RoundWork] = None
    #: Reuse key this query is currently the producer for, if any.
    producing_key: Optional[tuple] = None
    #: Certified load currently reserved on the ledger, if any.
    reserved_load: Optional[float] = None
    rounds_executed: int = 0
    rounds_reused: int = 0
    #: Root span of this query's trace tree (a null span when untraced).
    span: Any = None
    #: ``time.perf_counter()`` at submission, for end-to-end latency.
    submitted_at: float = 0.0
    #: When the current round entered the admission queue, if queued.
    queued_at: Optional[float] = None
    #: When the current round parked on another query's intermediate.
    parked_at: Optional[float] = None


class QueryService:
    """Concurrent pipeline serving under certified-load admission control.

    Parameters
    ----------
    capacity:
        Cluster capacity ``q``: the maximum *sum* of certified
        max-reducer-loads allowed in flight at once.  A submission
        containing a round whose certified load (or, uncertified, its
        plan's ``q_budget``) exceeds this is rejected with
        :class:`~repro.exceptions.AdmissionError` — it could never run.
    executor:
        The shared execution backend every query's engine runs on:
        an :class:`~repro.mapreduce.executor.Executor` instance, a name
        (``"serial"`` / ``"parallel"``), or ``None`` for serial.  A warm
        :class:`~repro.mapreduce.executor.ParallelExecutor` is shared
        safely — concurrent rounds overlap on its one process pool.
        ``close()`` releases the executor only if the service created it
        (i.e. a name or ``None`` was passed).
    max_workers:
        Round-body threads: the number of rounds that can be *executing*
        simultaneously (admission may admit more; excess waits for a
        thread).  Defaults to 8.
    replan:
        Whether queries adapt mid-flight (re-certify + re-plan); the
        tuner only learns when this is on.
    tuner:
        The adaptive ``replan_factor`` tuner; a default
        :class:`~repro.service.tuning.ReplanTuner` is created when
        omitted.  Each submission snapshots ``tuner.factor`` at submit
        time and every re-plan event feeds back into the tuner.
    spill_threshold:
        Passed through to every pipeline execution (see
        :func:`repro.pipeline.execute.execute_pipeline`).
    observer:
        An :class:`~repro.obs.Observability` bundle (tracer + metrics
        registry).  When given, every query grows a span tree — admission
        wait, planning, round execution (with the engine's per-job and
        per-phase spans nested inside), parked time — and the registry
        collects queue/admission gauges, deferral and reuse counters,
        queued-round starvation maxima by priority, and per-query latency
        histograms.  Submitted plans whose cluster carries no tracer or
        registry of its own inherit the observer's, so engine- and
        pipeline-level telemetry lands in the same trace.  Defaults to
        the shared no-op bundle; the regression suite pins that the
        default is bit-identical to an unobserved service.
    aging_seconds:
        Starvation bound for queued rounds.  Every ``aging_seconds`` a
        round waits for admission raises its *effective* priority by one
        whole class (whole classes only, so sub-threshold waits keep the
        cheapest-first dispatch order unchanged), and once a round has
        aged at least one class, failing to admit it stops backfill
        behind it that dispatch pass — in-flight load then drains until
        the starved round fits.  ``None`` disables aging (the pre-PR-10
        behaviour: strict priority, unbounded starvation).
    telemetry:
        Whether finished queries' per-round
        :class:`~repro.obs.record.PredictionRecord`\\ s are accumulated
        for :meth:`run_record` (bounded by a fixed cap).  On by default;
        the overhead benchmark's null leg turns it off.
    """

    def __init__(
        self,
        capacity: float,
        executor: ExecutorSpec = None,
        max_workers: int = 8,
        replan: bool = True,
        tuner: Optional[ReplanTuner] = None,
        spill_threshold: Optional[int] = None,
        observer: Optional[Observability] = None,
        aging_seconds: Optional[float] = 30.0,
        telemetry: bool = True,
    ) -> None:
        if max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive, got {max_workers}"
            )
        if aging_seconds is not None and aging_seconds <= 0:
            raise ConfigurationError(
                f"aging_seconds must be positive or None, got {aging_seconds}"
            )
        self.aging_seconds = aging_seconds
        self.telemetry = telemetry
        self.observer = observer or NULL_OBSERVABILITY
        self._tracer = self.observer.tracer
        self._metrics = self.observer.metrics
        self._register_instruments()
        self.admission = AdmissionLedger(capacity)
        self.store = IntermediateStore()
        self.tuner = tuner or ReplanTuner()
        self.replan = replan
        self.spill_threshold = spill_threshold
        self._owns_executor = not isinstance(executor, Executor)
        self.executor: Executor = resolve_executor(executor)
        self._threads = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="query-service"
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        #: Rounds waiting for admission, dispatched in priority order.
        self._ready: List[_QueryState] = []
        self._running_rounds = 0
        self._parked_rounds = 0
        self._overcapacity_rounds = 0
        self._active_queries: Dict[int, _QueryState] = {}
        self._submitted = 0
        self._finished = 0
        self._failed = 0
        self._closed = False
        #: Set (under the lock) just before the round pool shuts down, so
        #: no worker ever submits into a closed pool — it fails the query
        #: instead, keeping every handle completable after
        #: ``close(wait=False)``.
        self._pool_closed = False
        #: Longest admission-queue wait observed so far, per priority
        #: class — the starvation witness surfaced by ``describe()``
        #: (merged there with the live ages of still-queued rounds).
        self._max_queued_wait: Dict[float, float] = {}
        #: Finished queries' prediction/observation pairs (capped), the
        #: raw material of :meth:`run_record`.
        self._predictions: List[PredictionRecord] = []
        self._predictions_dropped = 0
        #: First-submit / last-settle timestamps: the workload wall-clock
        #: window :meth:`run_record` derives throughput from.
        self._first_submit_at: Optional[float] = None
        self._last_settle_at: Optional[float] = None

    def _register_instruments(self) -> None:
        """Create the service's metric instruments once, up front.

        With a null registry every instrument is the same cached no-op
        object, so the per-event call sites stay allocation-free either
        way.
        """
        metrics = self._metrics
        self._m_queries = metrics.counter(
            "service_queries_total", "Queries completed, by final status"
        )
        self._m_rounds = metrics.counter(
            "service_rounds_total", "Rounds completed, by mode"
        )
        self._m_deferrals = metrics.counter(
            "service_deferrals_total",
            "Dispatch attempts deferred for lack of certified-load capacity",
        )
        self._m_reuse = metrics.counter(
            "service_intermediate_reuse_total",
            "Rounds satisfied from the shared-intermediate store",
        )
        self._m_admission_wait = metrics.histogram(
            "service_admission_wait_seconds",
            "Queued seconds between a round becoming ready and its admission",
        )
        self._m_park_wait = metrics.histogram(
            "service_park_wait_seconds",
            "Seconds a round waited parked on another query's intermediate",
        )
        self._m_query_latency = metrics.histogram(
            "service_query_seconds",
            "End-to-end query latency, by final status",
        )
        self._m_queue_depth = metrics.gauge(
            "service_queue_depth", "Rounds queued for admission"
        )
        self._m_in_flight = metrics.gauge(
            "service_in_flight_load", "Sum of admitted certified loads"
        )
        self._m_parked = metrics.gauge(
            "service_parked_rounds", "Rounds parked on a shared intermediate"
        )
        self._m_max_wait = metrics.gauge(
            "service_max_queued_wait_seconds",
            "Longest admission-queue wait observed so far, by priority",
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        plan: PipelinePlan,
        records: Sequence[Any],
        priority: float = 1.0,
    ) -> QueryHandle:
        """Accept one planned pipeline for execution; returns immediately.

        ``priority`` orders admission among queued rounds: higher runs
        first; within a priority, rounds with smaller certified loads are
        admitted first (they backfill capacity larger rounds cannot use).
        """
        for round_ in plan.rounds:
            load = round_.certified_load
            price = load if load is not None else plan.q_budget
            if price > self.admission.capacity:
                self._note_rejected(plan, priority)
                raise AdmissionError(
                    f"round {round_.index} of {plan.name!r} is priced at "
                    f"certified load {price:g}, above the service capacity "
                    f"q={self.admission.capacity:g}; it can never be admitted"
                )
        with self._lock:
            if self._closed:
                raise AdmissionError("service is closed")
            query_id = next(self._ids)
            state = _QueryState(
                query_id=query_id,
                plan=plan,
                handle=QueryHandle(query_id, plan.name),
                gen=None,
                priority=priority,
                replan_factor=self.tuner.factor,
                seq=next(self._seq),
            )
            self._active_queries[query_id] = state
            self._submitted += 1
            if self._first_submit_at is None:
                self._first_submit_at = time.perf_counter()
        state.handle.replan_factor = state.replan_factor
        state.submitted_at = time.perf_counter()
        state.span = self._tracer.start_span(
            "query", query=query_id, label=plan.name, priority=priority
        )
        logger.debug(
            "query %d (%s) submitted: %d rounds, priority %g",
            query_id, plan.name, len(plan.rounds), priority,
        )
        engine = MapReduceEngine(
            self._observed_cluster(plan.cluster), executor=self.executor
        )
        state.gen = pipeline_rounds(
            plan,
            records,
            engine=engine,
            replan=self.replan,
            replan_factor=state.replan_factor,
            spill_threshold=self.spill_threshold,
            reuse_keys=True,
            replan_observer=self.tuner.observe,
        )
        # Advancing to the first round fingerprints the base records —
        # off the caller's thread so submission stays cheap.
        try:
            self._threads.submit(self._start_query, state)
        except RuntimeError:  # close(wait=False) raced past the check above
            exc = AdmissionError("service is closed")
            self._fail_query(state, exc)
            raise exc
        return state.handle

    def _note_rejected(self, plan: PipelinePlan, priority: float) -> None:
        """Leave an observable footprint for a submit-time rejection.

        Rejected queries never get a :class:`_QueryState`, so without
        this they would be invisible to ``query_phase_rows`` — a
        zero-duration root span with ``status="rejected"`` keeps the
        breakdown's census complete.
        """
        self._m_queries.inc(status="rejected")
        if self.observer is not NULL_OBSERVABILITY:
            self._tracer.record_span(
                "query",
                time.perf_counter(),
                0.0,
                label=plan.name,
                priority=priority,
                status="rejected",
            )

    def _observed_cluster(self, cluster: Any) -> Any:
        """The submitted plan's cluster, inheriting the service's observer.

        A cluster that already carries its own tracer or registry keeps
        it; only the null defaults are replaced, so engine-level telemetry
        of every query lands in the service's trace unless the caller
        explicitly routed it elsewhere.
        """
        if self.observer is NULL_OBSERVABILITY:
            return cluster
        overrides: Dict[str, Any] = {}
        if cluster.tracer is NULL_TRACER and self._tracer is not NULL_TRACER:
            overrides["tracer"] = self._tracer
        if cluster.metrics is NULL_METRICS and self._metrics is not NULL_METRICS:
            overrides["metrics"] = self._metrics
        if not overrides:
            return cluster
        return dataclasses.replace(cluster, **overrides)

    # ------------------------------------------------------------------
    # Round lifecycle (worker threads)
    # ------------------------------------------------------------------
    def _start_query(self, state: _QueryState) -> None:
        try:
            # The first advance fingerprints the base records and builds
            # the first round — planning-side work, traced as such.
            with self._tracer.span(
                "planning", parent=state.span, query=state.query_id
            ):
                work = next(state.gen)
        except StopIteration as stop:  # zero-round plan (defensive)
            self._finish_query(state, stop.value)
            return
        except BaseException as exc:
            self._fail_query(state, exc)
            return
        with self._lock:
            self._offer_locked(state, work)

    def _offer_locked(self, state: _QueryState, work: RoundWork) -> None:
        """Route one ready round: reuse hit, park on producer, or queue.

        Caller holds ``self._lock``.  Every branch ends with a dispatch
        pass: the caller may have just freed capacity (a finished round's
        reservation in ``_advance``, a failed query's queue slot), and a
        reuse hit or park must still hand that capacity to queued rounds.
        """
        state.pending_work = work
        if work.reuse_key is not None:
            verdict, entry = self.store.claim(work.reuse_key, state)
            if verdict == "hit":
                self._running_rounds += 1
                self._spawn_locked(self._adopt_round, state, entry.outcome)
                self._dispatch_locked()
                return
            if verdict == "wait":
                self._parked_rounds += 1
                state.parked_at = time.perf_counter()
                self._dispatch_locked()
                return
            state.producing_key = work.reuse_key
        state.queued_at = time.perf_counter()
        self._ready.append(state)
        self._dispatch_locked()

    def _dispatch_locked(self) -> None:
        """Admit every queued round that fits, best-priced first.

        Queued waits age a round's *effective* priority by one whole
        class per ``aging_seconds`` (see the constructor), and a round
        that has aged at least one class acts as a barrier when it cannot
        fit: no round sorted behind it is admitted this pass, so the
        in-flight load drains until the starved round runs.  Together the
        two bound every round's wait by roughly the priority spread times
        ``aging_seconds`` plus one drain.
        """
        if not self._ready:
            return
        aging = self.aging_seconds
        now = time.perf_counter() if aging is not None else 0.0

        def effective(state: _QueryState) -> float:
            if aging is None or state.queued_at is None:
                return state.priority
            # Whole classes only: sub-threshold waits must not perturb
            # the cheapest-certified-load-first order within a class.
            return state.priority + int((now - state.queued_at) / aging)

        self._ready.sort(
            key=lambda s: (-effective(s), s.pending_work.admission_load, s.seq)
        )
        admitted: List[_QueryState] = []
        for state in self._ready:
            load = state.pending_work.admission_load
            clamped = False
            if load <= 0:
                # Degenerate certificate (empty inputs certify to zero):
                # admit at a nominal price so the ledger stays strict.
                load = 1e-9
            if load > self.admission.capacity:
                # A mid-run re-certification exceeded capacity (possible
                # only with non-exact profiles).  Clamp so the round runs
                # alone rather than deadlocking; the counter records that
                # the invariant was capacity-limited, not load-limited.
                load = self.admission.capacity
                clamped = True
            if self.admission.try_reserve(load):
                state.reserved_load = load
                if clamped:
                    # Count once, when the clamped round is actually
                    # admitted — not on every dispatch pass it waits out.
                    self._overcapacity_rounds += 1
                admitted.append(state)
            else:
                self._m_deferrals.inc()
                if (
                    aging is not None
                    and state.queued_at is not None
                    and now - state.queued_at >= aging
                ):
                    # Starvation barrier: stop backfilling behind an aged
                    # round so released capacity reaches it next pass.
                    break
        # Unqueue every admitted round before spawning any: a spawn
        # failure fails the query, whose cleanup re-enters dispatch and
        # must not re-admit rounds this pass already holds reservations
        # for.
        for state in admitted:
            self._ready.remove(state)
            self._note_admitted_locked(state)
        for state in admitted:
            self._running_rounds += 1
            self._spawn_locked(self._run_round, state)
        if self._metrics.enabled:
            self._m_queue_depth.set(float(len(self._ready)))
            self._m_in_flight.set(self.admission.stats().in_flight)
            self._m_parked.set(float(self._parked_rounds))

    def _note_admitted_locked(self, state: _QueryState) -> None:
        """Record how long the admitted round waited in the queue."""
        if state.queued_at is None:
            return
        waited = time.perf_counter() - state.queued_at
        priority = state.priority
        if waited > self._max_queued_wait.get(priority, 0.0):
            self._max_queued_wait[priority] = waited
            self._m_max_wait.set(waited, priority=f"{priority:g}")
        if self.observer is not NULL_OBSERVABILITY:
            self._tracer.record_span(
                "admission-wait",
                state.queued_at,
                waited,
                parent=state.span,
                query=state.query_id,
                priority=priority,
            )
            self._m_admission_wait.observe(waited)
        state.queued_at = None

    def _unpark_locked(self, state: _QueryState) -> None:
        """Record how long the round sat parked on a shared intermediate."""
        if state.parked_at is None:
            return
        waited = time.perf_counter() - state.parked_at
        if self.observer is not NULL_OBSERVABILITY:
            self._tracer.record_span(
                "parked",
                state.parked_at,
                waited,
                parent=state.span,
                query=state.query_id,
            )
            self._m_park_wait.observe(waited)
        state.parked_at = None

    def _spawn_locked(self, fn, state: _QueryState, *args: Any) -> None:
        """Hand one round task to the pool, or fail its query (lock held).

        The caller has already accounted the round as running (and
        possibly reserved admission load).  When the pool is gone —
        ``close(wait=False)`` — the accounting is rolled back and the
        query fails with :class:`AdmissionError`, so its handle always
        completes instead of hanging on a silently dropped submission.
        """
        if not self._pool_closed:
            try:
                self._threads.submit(fn, state, *args)
                return
            except RuntimeError:
                pass  # shutdown raced the flag; fall through to fail
        self._release_locked(state)
        self._fail_query_locked(
            state,
            AdmissionError(
                f"service closed before query {state.query_id} "
                f"({state.handle.label}) finished"
            ),
        )

    def _run_round(self, state: _QueryState) -> None:
        """Execute one admitted round end to end (worker thread)."""
        work = state.pending_work
        try:
            # The engine's per-job (and per-phase) spans nest under this
            # one via the worker thread's span stack.
            with self._tracer.span(
                "round-execute",
                parent=state.span,
                query=state.query_id,
                round=work.index,
                plan=work.plan_name,
            ):
                outcome = work.execute()
        except BaseException as exc:
            with self._lock:
                self._release_locked(state)
                self._fail_query_locked(state, exc)
            return
        state.rounds_executed += 1
        self._m_rounds.inc(mode="executed")
        self._advance(state, outcome)

    def _adopt_round(self, state: _QueryState, producer_outcome: RoundOutcome) -> None:
        """Feed a shared intermediate to a consumer round (worker thread)."""
        outcome = RoundOutcome(
            job=producer_outcome.job,
            rows=producer_outcome.rows,
            profile=producer_outcome.profile,
            reused=True,
        )
        state.rounds_reused += 1
        self._m_rounds.inc(mode="reused")
        self._m_reuse.inc()
        self._advance(state, outcome)

    def _advance(self, state: _QueryState, outcome: RoundOutcome) -> None:
        """Send the outcome into the coroutine and schedule what follows.

        The ``send`` profiles the round's rows in-stream and fills
        ``outcome.rows`` / ``outcome.profile`` — which is exactly what the
        store shares with parked consumers, so fulfilment happens *after*
        the send and before the next round is offered.
        """
        next_work: Optional[RoundWork] = None
        result: Optional[PipelineRunResult] = None
        try:
            # The send profiles the round's rows in-stream, re-certifies
            # the next round and possibly re-plans it — planning-side
            # work between rounds, traced as such.
            with self._tracer.span(
                "planning", parent=state.span, query=state.query_id
            ):
                next_work = state.gen.send(outcome)
        except StopIteration as stop:
            result = stop.value
        except BaseException as exc:
            with self._lock:
                self._release_locked(state)
                self._fail_query_locked(state, exc)
            return
        with self._lock:
            self._release_locked(state)
            if state.producing_key is not None:
                waiters = self.store.fulfill(state.producing_key, outcome)
                state.producing_key = None
                for waiter in waiters:
                    self._parked_rounds -= 1
                    self._running_rounds += 1
                    self._unpark_locked(waiter)
                    self._spawn_locked(self._adopt_round, waiter, outcome)
            if next_work is not None:
                # _offer_locked always ends with a dispatch pass, so the
                # reservation released above is redistributed even when
                # this query's next round parks or adopts a reuse hit.
                self._offer_locked(state, next_work)
            else:
                self._dispatch_locked()
        if result is not None:
            self._finish_query(state, result)

    def _release_locked(self, state: _QueryState) -> None:
        """Return the round's reservation and running slot (lock held)."""
        self._running_rounds -= 1
        if state.reserved_load is not None:
            self.admission.release(state.reserved_load)
            state.reserved_load = None

    # ------------------------------------------------------------------
    # Completion / failure
    # ------------------------------------------------------------------
    def _finish_query(self, state: _QueryState, result: PipelineRunResult) -> None:
        # Duck-typed: scripted/stub results in the scheduler tests (and
        # any custom driver) may not be PipelineRunResults.
        extractor = (
            getattr(result, "prediction_records", None) if self.telemetry else None
        )
        records = extractor(state.handle.label) if callable(extractor) else []
        with self._lock:
            self._active_queries.pop(state.query_id, None)
            self._finished += 1
            if records:
                room = TELEMETRY_PREDICTION_CAP - len(self._predictions)
                if room < len(records):
                    self._predictions_dropped += len(records) - max(room, 0)
                if room > 0:
                    self._predictions.extend(records[:room])
            self._idle.notify_all()
        self._settle_observation(state, "ok")
        logger.debug(
            "query %d (%s) finished: %d rounds executed, %d reused",
            state.query_id,
            state.handle.label,
            state.rounds_executed,
            state.rounds_reused,
        )
        state.handle._finish(result)

    def _settle_observation(self, state: _QueryState, status: str) -> None:
        """Close the query's root span and record its latency (idempotent
        through the callers' own once-only guarantees)."""
        if state.span is not None:
            state.span.set(
                status=status,
                rounds_executed=state.rounds_executed,
                rounds_reused=state.rounds_reused,
            )
            state.span.finish()
        self._m_queries.inc(status=status)
        self._last_settle_at = time.perf_counter()
        if state.submitted_at:
            self._m_query_latency.observe(
                self._last_settle_at - state.submitted_at, status=status
            )

    def _fail_query(self, state: _QueryState, exc: BaseException) -> None:
        with self._lock:
            self._fail_query_locked(state, exc)

    def _fail_query_locked(self, state: _QueryState, exc: BaseException) -> None:
        """Fail one query and reroute whatever depended on it (lock held).

        Idempotent: a query already finished or failed (e.g. once via a
        closed-pool spawn and again via ``close``'s queue sweep) is left
        alone, so counters never double-count and handles settle once.
        """
        if self._active_queries.pop(state.query_id, None) is None:
            return
        if state.producing_key is not None:
            # Waiters were counting on this materialization; requeue
            # them — the first re-offered claims the key afresh and
            # becomes the new producer.
            waiters = self.store.fail(state.producing_key)
            state.producing_key = None
            for waiter in waiters:
                self._parked_rounds -= 1
                self._unpark_locked(waiter)
                self._offer_locked(waiter, waiter.pending_work)
        self._ready = [s for s in self._ready if s is not state]
        self._failed += 1
        self._settle_observation(state, "failed")
        logger.warning(
            "query %d (%s) failed: %s",
            state.query_id,
            state.handle.label,
            exc,
        )
        self._dispatch_locked()
        self._idle.notify_all()
        state.handle._fail(exc)

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Point-in-time snapshot of the whole service, for dashboards/tests.

        One nested dict: query counts, round states, the admission
        ledger's capacity accounting (including the run-long peak that
        witnesses the invariant), shared-intermediate counters, the
        re-plan tuner, the planner's schema cache and — when the executor
        exposes them — warm-pool counters.
        """
        # The whole snapshot is taken under the scheduler lock so the
        # sections are mutually consistent — in particular the store's
        # counters are only ever mutated under this lock, so reading them
        # outside it could disagree with the queries/rounds numbers.
        # (The ledger/tuner/cache/executor locks below are leaf locks:
        # none of them ever acquires the scheduler lock.)
        with self._lock:
            snapshot = {
                "queries": {
                    "submitted": self._submitted,
                    "active": len(self._active_queries),
                    "finished": self._finished,
                    "failed": self._failed,
                },
                "rounds": {
                    "queued": len(self._ready),
                    "parked": self._parked_rounds,
                    "running": self._running_rounds,
                    "overcapacity_clamped": self._overcapacity_rounds,
                    # Starvation witness: the longest any round of each
                    # priority class has waited for admission — finished
                    # waits and the live ages of still-queued rounds
                    # merged, so a currently starving round is visible
                    # before it ever runs.
                    "max_queued_wait_by_priority": self._queued_waits_locked(),
                },
                "intermediates": self.store.stats().__dict__.copy(),
                "tuner": self.tuner.stats().__dict__.copy(),
                "schema_cache": default_schema_cache.stats().__dict__.copy(),
            }
            admission = self.admission.stats()
            attempts = admission.admitted + admission.deferrals
            snapshot["admission"] = {
                "capacity": admission.capacity,
                "in_flight_load": admission.in_flight,
                "peak_in_flight_load": admission.peak_in_flight,
                "headroom": admission.headroom,
                "admitted": admission.admitted,
                "deferrals": admission.deferrals,
                "attempts": attempts,
                # Raw deferral counts sum queue depth over dispatch
                # passes, so they scale superlinearly with how slowly a
                # run happened to go; the rate is the comparable number.
                "deferral_rate": (
                    admission.deferrals / attempts if attempts else 0.0
                ),
            }
            snapshot["telemetry"] = {
                "predictions": len(self._predictions),
                "predictions_dropped": self._predictions_dropped,
            }
            warm_stats = getattr(self.executor, "warm_stats", None)
            if callable(warm_stats):
                stats = warm_stats()
                snapshot["warm_pool"] = {
                    "warm_runs": stats.warm_runs,
                    "fallback_runs": stats.fallback_runs,
                    "active_runs": stats.active_runs,
                }
        return snapshot

    def _queued_waits_locked(self) -> Dict[str, float]:
        """Max admission wait per priority class, live queue included."""
        waits = dict(self._max_queued_wait)
        now = time.perf_counter()
        for state in self._ready:
            if state.queued_at is not None:
                age = now - state.queued_at
                if age > waits.get(state.priority, 0.0):
                    waits[state.priority] = age
        return {
            f"{priority:g}": wait for priority, wait in sorted(waits.items())
        }

    def run_record(
        self,
        bench: str = "service",
        *,
        quick: bool = False,
        fingerprint: Optional[str] = None,
        fingerprint_extra: Optional[Dict[str, Any]] = None,
        extra_metrics: Optional[Dict[str, float]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> RunRecord:
        """Export this service's run as a telemetry
        :class:`~repro.obs.record.RunRecord`.

        Headline metrics come from :meth:`describe` (throughput over the
        first-submit → last-settle window, the self-normalizing deferral
        rate, replan win rate, reuse and capacity accounting); the
        prediction pairs are every finished query's per-round records
        (when ``telemetry`` is on).  ``extra_metrics`` lets benchmarks
        add their own headlines (speedup, overhead %) before the record
        is appended to a trajectory store.
        """
        snapshot = self.describe()
        with self._lock:
            predictions = tuple(self._predictions)
            first = self._first_submit_at
            last = self._last_settle_at
        wall = (last - first) if first is not None and last is not None else 0.0
        queries = snapshot["queries"]
        tuner = snapshot["tuner"]
        scored = tuner.get("wins", 0) + tuner.get("losses", 0)
        metrics: Dict[str, float] = {
            "queries_submitted": float(queries["submitted"]),
            "queries_finished": float(queries["finished"]),
            "queries_failed": float(queries["failed"]),
            "wall_seconds": wall,
            "queries_per_second": queries["finished"] / wall if wall > 0 else 0.0,
            "deferrals": float(snapshot["admission"]["deferrals"]),
            "deferral_rate": snapshot["admission"]["deferral_rate"],
            "peak_in_flight_load": snapshot["admission"]["peak_in_flight_load"],
            "capacity": snapshot["admission"]["capacity"],
            "rounds_reused": float(snapshot["intermediates"].get("reused", 0)),
            "replan_wins": float(tuner.get("wins", 0)),
            "replan_losses": float(tuner.get("losses", 0)),
            "replan_win_rate": tuner.get("wins", 0) / scored if scored else 0.0,
            "overcapacity_clamped": float(
                snapshot["rounds"]["overcapacity_clamped"]
            ),
        }
        waits = snapshot["rounds"]["max_queued_wait_by_priority"].values()
        if waits:
            metrics["max_queued_wait"] = max(waits)
        metrics.update(extra_metrics or {})
        return make_run_record(
            bench,
            quick=quick,
            fingerprint=fingerprint,
            metrics=metrics,
            meta={"snapshot": snapshot, **(meta or {})},
            predictions=predictions,
            fingerprint_extra={
                "capacity": snapshot["admission"]["capacity"],
                "submitted": queries["submitted"],
                **(fingerprint_extra or {}),
            },
        )

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted query has finished or failed."""
        with self._idle:
            if not self._idle.wait_for(
                lambda: not self._active_queries, timeout
            ):
                raise TimeoutError(
                    f"{len(self._active_queries)} queries still active "
                    f"after {timeout}s"
                )

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries, drain, and release owned resources.

        With ``wait=False`` the service does not drain: rounds already
        handed to the pool still run to completion, but nothing new is
        scheduled — every query that still needed a future round fails
        with :class:`~repro.exceptions.AdmissionError` (queued rounds
        immediately below; parked and mid-run rounds when their next
        spawn hits the closed pool), so handles always complete.
        """
        with self._lock:
            self._closed = True
        logger.info(
            "service closing (wait=%s): %d submitted, %d finished, %d failed",
            wait, self._submitted, self._finished, self._failed,
        )
        if wait:
            self.drain()
        with self._lock:
            self._pool_closed = True
            for state in list(self._ready):
                self._fail_query_locked(
                    state,
                    AdmissionError(
                        f"service closed before query {state.query_id} "
                        f"({state.handle.label}) was scheduled"
                    ),
                )
        self._threads.shutdown(wait=wait)
        if self._owns_executor:
            closer = getattr(self.executor, "close", None)
            if callable(closer):
                closer()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()
