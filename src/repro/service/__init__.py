"""Concurrent query serving: round scheduling under certified-load admission.

The paper prices a map-reduce job by its replication and certified
max-reducer-load so that a capacity-``q`` cluster is never oversubscribed.
This subpackage carries that guarantee from one-shot execution into a
long-lived serving layer:

* :mod:`repro.service.admission` — the reserve/release ledger keeping the
  sum of in-flight certified loads at or below capacity ``q``;
* :mod:`repro.service.intermediates` — fingerprint-keyed sharing of
  bit-identical intermediates across queued pipelines;
* :mod:`repro.service.tuning` — cross-query adaptation of the mid-flight
  ``replan_factor`` from observed re-plan wins and losses;
* :mod:`repro.service.service` — :class:`QueryService` itself, scheduling
  pipeline *rounds* (not whole queries) onto one shared worker pool.

Entry point::

    with QueryService(capacity=96, executor="parallel") as service:
        handles = [service.submit(plan, records) for plan, records in work]
        results = [handle.result() for handle in handles]
"""

from repro.service.admission import AdmissionLedger, AdmissionStats
from repro.service.intermediates import (
    IntermediateStore,
    IntermediateStoreStats,
    StoreEntry,
)
from repro.service.service import QueryHandle, QueryService
from repro.service.tuning import ReplanTuner, TunerStats

__all__ = [
    "AdmissionLedger",
    "AdmissionStats",
    "IntermediateStore",
    "IntermediateStoreStats",
    "QueryHandle",
    "QueryService",
    "ReplanTuner",
    "StoreEntry",
    "TunerStats",
]
