"""Multi-round pipeline planning: cascades, size bounds, adaptive re-planning.

The paper's cost model is multi-round — two-phase matrix multiplication
beats one-phase past a communication threshold, and a multiway join can be
one Shares round or a cascade of binary joins — but the single-round
planner only prices one job at a time.  This subpackage closes that gap in
three layers:

* **logical** (:mod:`repro.pipeline.logical`) — operator nodes and the
  enumeration of round structures (one-round vs left-deep/bushy cascades,
  1- vs 2-phase matmul);
* **estimation** (:mod:`repro.pipeline.estimate`) — intermediate-size
  upper bounds from dataset-profile histograms (AGM fallback on row
  counts) and synthetic profiles that let every downstream round reuse the
  existing certification/optimization stack unchanged;
* **adaptive execution** (:mod:`repro.pipeline.execute`) — rounds run on
  the engine one at a time, intermediates are profiled in-stream, and the
  remaining rounds re-planned when the observed certificate beats or
  violates the planning-time estimate.

Entry point::

    result = PipelinePlanner().plan(problem, q=budget, profile=profile)
    run = result.best.execute(records)           # adaptive by default
"""

from repro.pipeline.estimate import (
    IntermediateEstimate,
    SizeEstimator,
    agm_bound,
    approximate_histogram,
    per_value_join_bound,
)
from repro.pipeline.execute import (
    ExecutedRound,
    PipelineRunResult,
    ReplanEvent,
    RoundOutcome,
    RoundWork,
    drive_rounds,
    execute_pipeline,
    pipeline_rounds,
)
from repro.pipeline.logical import (
    AggregateOp,
    BinaryJoinOp,
    LogicalOp,
    MatMulRoundOp,
    MultiwayJoinOp,
    RelationLeaf,
    enumerate_join_trees,
)
from repro.pipeline.planner import (
    PipelinePlan,
    PipelinePlanner,
    PipelinePlanningResult,
    PipelineRound,
    replan_round,
)

__all__ = [
    "AggregateOp",
    "BinaryJoinOp",
    "ExecutedRound",
    "IntermediateEstimate",
    "LogicalOp",
    "MatMulRoundOp",
    "MultiwayJoinOp",
    "PipelinePlan",
    "PipelinePlanner",
    "PipelinePlanningResult",
    "PipelineRound",
    "PipelineRunResult",
    "RelationLeaf",
    "ReplanEvent",
    "RoundOutcome",
    "RoundWork",
    "SizeEstimator",
    "agm_bound",
    "approximate_histogram",
    "drive_rounds",
    "enumerate_join_trees",
    "execute_pipeline",
    "per_value_join_bound",
    "pipeline_rounds",
    "replan_round",
]
