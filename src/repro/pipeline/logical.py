"""Logical operators and round-structure enumeration for multi-round plans.

The paper's cost model is inherently multi-round — the two-phase matrix
multiplication beats the one-phase tiling past a communication threshold,
and a multiway join can run as one Shares round or as a cascade of binary
Shares joins — but each physical schema family only knows its own round.
This module supplies the *logical* vocabulary the
:class:`~repro.pipeline.planner.PipelinePlanner` enumerates over:

* :class:`RelationLeaf` — a base relation (no rounds);
* :class:`BinaryJoinOp` — one Shares round joining two child operators;
* :class:`MultiwayJoinOp` — all relations joined in a single Shares round
  (the paper's Section 5.5 algorithm, the cascade's one-round rival);
* :class:`MatMulRoundOp` — a matrix-multiplication stage (the one-phase
  tiling, or the Section 6 two-phase chain);
* :class:`AggregateOp` — a grouping/aggregation round (replication 1).

:func:`enumerate_join_trees` generates every cascade shape for a join
query: left-deep and bushy binary trees whose internal nodes join
*attribute-connected* subsets only (a disconnected pair would be a cross
product, which the Shares enumeration deliberately never performs).  The
enumeration is a textbook subset dynamic program — the same search space
PostBOUND's upper-bound-driven join ordering walks — canonicalized so each
unordered tree appears exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.problems.joins import JoinQuery, RelationSchema

#: Past this many relations the bushy enumeration is cut to left-deep trees
#: only (the subset DP is exponential; left-deep keeps planning polynomial).
MAX_BUSHY_RELATIONS = 6


@dataclass(frozen=True)
class LogicalOp:
    """Base class: one node of a logical multi-round plan."""

    @property
    def schema(self) -> RelationSchema:
        raise NotImplementedError

    @property
    def base_relations(self) -> Tuple[str, ...]:
        """Names of the base relations this operator's subtree consumes."""
        raise NotImplementedError

    @property
    def num_rounds(self) -> int:
        """Map-reduce rounds needed to materialize this operator."""
        raise NotImplementedError

    def label(self) -> str:
        return self.schema.name


@dataclass(frozen=True)
class RelationLeaf(LogicalOp):
    """A base relation: already materialized, zero rounds."""

    relation: RelationSchema

    @property
    def schema(self) -> RelationSchema:
        return self.relation

    @property
    def base_relations(self) -> Tuple[str, ...]:
        return (self.relation.name,)

    @property
    def num_rounds(self) -> int:
        return 0


def _joined_schema(left: RelationSchema, right: RelationSchema) -> RelationSchema:
    """Schema of a binary join result: left's attributes, then right's new ones."""
    attributes = list(left.attributes)
    for attribute in right.attributes:
        if attribute not in attributes:
            attributes.append(attribute)
    return RelationSchema(
        name=f"({left.name}*{right.name})", attributes=tuple(attributes)
    )


@dataclass(frozen=True)
class BinaryJoinOp(LogicalOp):
    """One Shares round joining two child operators into an intermediate."""

    left: LogicalOp
    right: LogicalOp

    def __post_init__(self) -> None:
        shared = set(self.left.schema.attributes) & set(self.right.schema.attributes)
        if not shared:
            raise ConfigurationError(
                f"binary join of {self.left.schema.name!r} and "
                f"{self.right.schema.name!r} shares no attributes (cross "
                f"product); cascade enumeration never builds these"
            )

    @property
    def schema(self) -> RelationSchema:
        return _joined_schema(self.left.schema, self.right.schema)

    @property
    def shared_attributes(self) -> Tuple[str, ...]:
        right_attrs = set(self.right.schema.attributes)
        return tuple(
            attribute
            for attribute in self.left.schema.attributes
            if attribute in right_attrs
        )

    @property
    def base_relations(self) -> Tuple[str, ...]:
        return self.left.base_relations + self.right.base_relations

    @property
    def num_rounds(self) -> int:
        return self.left.num_rounds + self.right.num_rounds + 1

    def round_query(self) -> JoinQuery:
        """The two-relation join query this round's Shares schema serves."""
        left, right = self.left.schema, self.right.schema
        return JoinQuery([left, right], name=f"pipe:{left.name}*{right.name}")

    def post_order(self) -> List["BinaryJoinOp"]:
        """Internal nodes in execution order (children before parents)."""
        rounds: List[BinaryJoinOp] = []
        for child in (self.left, self.right):
            if isinstance(child, BinaryJoinOp):
                rounds.extend(child.post_order())
        rounds.append(self)
        return rounds

    def label(self) -> str:
        return f"cascade{self.schema.name}"


@dataclass(frozen=True)
class MultiwayJoinOp(LogicalOp):
    """All relations of a query joined in one Shares round (Section 5.5)."""

    query: JoinQuery

    @property
    def schema(self) -> RelationSchema:
        return RelationSchema(
            name=f"join[{self.query.name}]", attributes=self.query.attributes
        )

    @property
    def base_relations(self) -> Tuple[str, ...]:
        return tuple(relation.name for relation in self.query.relations)

    @property
    def num_rounds(self) -> int:
        return 1

    def label(self) -> str:
        return f"one-round[{self.query.name}]"


@dataclass(frozen=True)
class MatMulRoundOp(LogicalOp):
    """A matrix-multiplication stage: one-phase tiling or two-phase chain."""

    n: int
    phases: int = 1

    def __post_init__(self) -> None:
        if self.phases not in (1, 2):
            raise ConfigurationError(
                f"matmul rounds come in 1- or 2-phase form, got {self.phases}"
            )

    @property
    def schema(self) -> RelationSchema:
        return RelationSchema(name=f"matmul(n={self.n})", attributes=("i", "k"))

    @property
    def base_relations(self) -> Tuple[str, ...]:
        return ("A", "B")

    @property
    def num_rounds(self) -> int:
        return self.phases

    def label(self) -> str:
        return f"matmul-{self.phases}phase(n={self.n})"


@dataclass(frozen=True)
class AggregateOp(LogicalOp):
    """A grouping/aggregation round — trivially parallel, replication 1."""

    group_attribute: str
    input_schema: RelationSchema

    @property
    def schema(self) -> RelationSchema:
        return RelationSchema(
            name=f"agg[{self.input_schema.name}/{self.group_attribute}]",
            attributes=(self.group_attribute,),
        )

    @property
    def base_relations(self) -> Tuple[str, ...]:
        return (self.input_schema.name,)

    @property
    def num_rounds(self) -> int:
        return 1


# ----------------------------------------------------------------------
# Cascade enumeration
# ----------------------------------------------------------------------
def enumerate_join_trees(
    query: JoinQuery,
    include_bushy: bool = True,
    max_bushy_relations: int = MAX_BUSHY_RELATIONS,
) -> List[BinaryJoinOp]:
    """Every binary join tree over the query's relations, cross-product-free.

    Trees are canonical: the child containing the query's earliest-listed
    relation is always the *left* child, so each unordered tree shape is
    produced exactly once.  Subsets that induce a disconnected join graph
    are never joined (that would be a cross product).  Beyond
    ``max_bushy_relations`` relations (or with ``include_bushy=False``)
    only left-deep trees are enumerated, keeping the search polynomial.

    A two-relation query yields the single binary tree — which is the same
    physical round as the one-round Shares plan, so the pipeline planner
    prices both paths identically there.
    """
    relations = list(query.relations)
    if len(relations) < 2:
        return []
    bushy = include_bushy and len(relations) <= max_bushy_relations
    order = {relation.name: index for index, relation in enumerate(relations)}
    leaves: Dict[str, LogicalOp] = {
        relation.name: RelationLeaf(relation) for relation in relations
    }

    memo: Dict[FrozenSet[str], List[LogicalOp]] = {}

    def trees(names: FrozenSet[str]) -> List[LogicalOp]:
        cached = memo.get(names)
        if cached is not None:
            return cached
        if len(names) == 1:
            result: List[LogicalOp] = [leaves[next(iter(names))]]
            memo[names] = result
            return result
        if not query.connected(sorted(names, key=order.get)):
            memo[names] = []
            return []
        result = []
        anchor = min(names, key=order.get)
        for left_names in _splits(names, anchor, bushy):
            right_names = names - left_names
            if not right_names:
                continue
            for left in trees(left_names):
                for right in trees(right_names):
                    if set(left.schema.attributes) & set(right.schema.attributes):
                        result.append(BinaryJoinOp(left, right))
        memo[names] = result
        return result

    def _splits(
        names: FrozenSet[str], anchor: str, bushy_here: bool
    ) -> Iterator[FrozenSet[str]]:
        rest = sorted(names - {anchor}, key=order.get)
        if bushy_here:
            # Every subset containing the anchor (canonical: anchor on the
            # left) except the full set.
            for mask in range(1 << len(rest)):
                if mask == (1 << len(rest)) - 1:
                    continue
                subset = frozenset(
                    [anchor] + [rest[i] for i in range(len(rest)) if mask >> i & 1]
                )
                yield subset
        else:
            # Left-deep only: one child is always a single leaf — any of
            # the non-anchor relations on the right, or the anchor itself
            # on the left (the shape where the anchor relation joins last;
            # for a two-element set that split is already the one above).
            for name in rest:
                yield names - {name}
            if len(rest) > 1:
                yield frozenset([anchor])

    roots = trees(frozenset(order))
    return [root for root in roots if isinstance(root, BinaryJoinOp)]
