"""Adaptive execution of pipeline plans: run, observe, re-plan, continue.

Executing a cascade exposes information planning never had: the *actual*
intermediate result.  This module runs a :class:`~repro.pipeline.planner.
PipelinePlan` round by round on the engine, profiles every intermediate
**in-stream** (rows are observed as they flow toward the next round's
mappers, via :class:`~repro.stats.profile.StreamingRelationProfiler` — no
second pass over the data), and before each downstream round re-certifies
its chosen schema under the observed profile.  The certificate lookup is
keyed by the observed profile's content fingerprint through the shared
schema cache, so repeated executions of the same data re-use it.

Re-planning triggers when the observed certificate

* **beats** the planning-time estimate by more than ``replan_factor``
  (the synthetic profile was conservative — a cheaper or better-balanced
  schema may now fit), or
* **violates** it (only possible when planning ran without exact
  histograms, e.g. sampled base profiles — the estimate was an
  expectation, not a bound).

The remaining round is then re-planned from scratch against the observed
profile; every re-plan is recorded as a :class:`ReplanEvent` so reports
and the acceptance benchmark can show what mid-flight adaptation bought.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, PlanningError
from repro.mapreduce.columnar import SpilledRows
from repro.mapreduce.engine import JobResult, MapReduceEngine, PipelineResult
from repro.mapreduce.metrics import PipelineMetrics
from repro.pipeline.logical import BinaryJoinOp, RelationLeaf
from repro.pipeline.planner import PipelinePlan, PipelineRound, replan_round
from repro.planner.cache import default_schema_cache
from repro.planner.certify import (
    Certification,
    CertificationKind,
    certify_max_reducer_load,
)
from repro.stats.profile import (
    DatasetProfile,
    RelationProfile,
    StreamingRelationProfiler,
)


@dataclass(frozen=True)
class ReplanEvent:
    """One mid-flight re-planning decision, for reports and assertions."""

    round_index: int
    node: str
    reason: str  # "certificate-improved" | "certificate-violated"
    estimated_bound: float
    observed_bound: float
    old_plan: str
    new_plan: str

    def describe(self) -> dict:
        return {
            "round": self.round_index,
            "node": self.node,
            "reason": self.reason,
            "estimated_bound": self.estimated_bound,
            "observed_bound": self.observed_bound,
            "old_plan": self.old_plan,
            "new_plan": self.new_plan,
        }


@dataclass(frozen=True)
class ExecutedRound:
    """What one round planned vs what it did."""

    index: int
    op_label: str
    plan_name: str
    certification: Optional[Certification]
    estimated_inputs: float
    observed_inputs: int
    estimated_output: float
    observed_output: int
    observed_max_load: int
    replanned: bool

    @property
    def certified_load(self) -> Optional[float]:
        return self.certification.bound if self.certification is not None else None


@dataclass
class PipelineRunResult:
    """The outcome of one adaptive pipeline execution.

    ``result`` is the engine-level :class:`PipelineResult` (outputs in the
    original query's attribute order, per-round metrics, certified loads);
    ``executed`` pairs each round's estimates with its observations;
    ``replan_events`` records every mid-flight adaptation.
    """

    plan: PipelinePlan
    result: PipelineResult
    executed: List[ExecutedRound] = field(default_factory=list)
    replan_events: List[ReplanEvent] = field(default_factory=list)

    @property
    def outputs(self) -> List[Any]:
        return self.result.outputs

    @property
    def replan_count(self) -> int:
        return len(self.replan_events)

    @property
    def total_communication(self) -> int:
        return self.result.total_communication

    @property
    def max_observed_load(self) -> int:
        return self.result.max_reducer_load

    @property
    def max_certified_load(self) -> Optional[float]:
        return self.result.max_certified_load

    def certificates_hold(self) -> bool:
        """Whether every *bounding* certificate covers its observed load.

        Only exact and high-probability certificates claim to bound the
        load; EXPECTED-kind certifications (rounds planned without a
        profile — the paper's §5.5 accounting) are expectations that skew
        may legitimately exceed, so they are not checked here, mirroring
        how the single-round stack distinguishes certification kinds.
        """
        return all(
            round_.certification is None
            or round_.certification.kind is CertificationKind.EXPECTED
            or round_.observed_max_load <= round_.certification.bound
            for round_ in self.executed
        )

    def frontier(self) -> List[dict]:
        """Per-round table: estimated vs observed, certificates, re-plans."""
        rows: List[dict] = []
        for executed, result in zip(self.executed, self.result.round_results):
            rows.append(
                {
                    "round": executed.index,
                    "op": executed.op_label,
                    "plan": executed.plan_name,
                    "certified_load": executed.certified_load,
                    "observed_max_load": executed.observed_max_load,
                    "est_rows_out": executed.estimated_output,
                    "rows_out": executed.observed_output,
                    "communication": result.communication_cost,
                    "replanned": executed.replanned,
                }
            )
        return rows


def execute_pipeline(
    plan: PipelinePlan,
    records: Sequence[Any],
    engine: Optional[MapReduceEngine] = None,
    replan: bool = True,
    replan_factor: float = 0.5,
    spill_threshold: Optional[int] = None,
) -> PipelineRunResult:
    """Run a pipeline plan, adapting the remaining rounds as data arrives.

    Parameters
    ----------
    plan:
        The planned round structure (usually ``result.best``).
    records:
        Input records — for joins, ``(relation name, tuple)`` pairs as
        produced by :meth:`SharesSchema.input_records`.
    engine:
        Engine to run on; one with the plan's cluster is built if omitted.
    replan:
        Disable to execute the planned rounds verbatim (no adaptation).
    replan_factor:
        A downstream round is re-planned when its observed-profile
        certificate drops below ``replan_factor`` times the planning-time
        certificate (or exceeds it, which only non-exact planning allows).
    spill_threshold:
        When set, any intermediate of at least this many rows is spilled
        to disk as one packed int64 column block
        (:class:`~repro.mapreduce.columnar.SpilledRows`) instead of staying
        resident as Python tuples; downstream rounds re-materialize it
        lazily and bit-identically.  ``None`` (the default) keeps every
        intermediate in memory.  Intermediates outside the packed layout
        (ragged or non-integer rows) stay in memory regardless.
    """
    engine = engine or MapReduceEngine(plan.cluster)
    if not isinstance(plan.op, BinaryJoinOp):
        return _execute_single(plan, records, engine)
    return _execute_cascade(
        plan, records, engine, replan, replan_factor, spill_threshold
    )


# ----------------------------------------------------------------------
# Single-structure execution (one-round joins, matmul chains, aggregates)
# ----------------------------------------------------------------------
def _execute_single(
    plan: PipelinePlan, records: Sequence[Any], engine: MapReduceEngine
) -> PipelineRunResult:
    round_ = plan.rounds[0]
    outcome = round_.plan.execute(records, engine=engine)
    if isinstance(outcome, JobResult):
        job_results = [outcome]
        outputs = outcome.outputs
    else:  # a JobChain execution (two-phase matmul) already returns a pipeline
        job_results = outcome.round_results
        outputs = outcome.outputs
    bound = round_.certified_load
    certified = tuple(bound for _ in job_results) if bound is not None else None
    result = PipelineResult(
        outputs=outputs,
        metrics=PipelineMetrics(
            chain_name=plan.name,
            rounds=[job.metrics for job in job_results],
        ),
        round_results=job_results,
        round_certified_loads=certified,
    )
    executed = [
        ExecutedRound(
            index=index,
            op_label=plan.op.label(),
            plan_name=round_.name,
            certification=round_.certification,
            estimated_inputs=round_.estimated_inputs,
            observed_inputs=job.metrics.shuffle.num_inputs,
            estimated_output=round_.estimated_output,
            observed_output=len(job.outputs),
            observed_max_load=job.metrics.shuffle.max_reducer_size,
            replanned=False,
        )
        for index, job in enumerate(job_results)
    ]
    return PipelineRunResult(plan=plan, result=result, executed=executed)


# ----------------------------------------------------------------------
# Cascade execution with mid-flight re-planning
# ----------------------------------------------------------------------
def _base_records_by_relation(
    plan: PipelinePlan, records: Sequence[Any]
) -> Dict[str, List[Any]]:
    by_name: Dict[str, List[Any]] = {
        relation.name: [] for relation in plan.problem.query.relations
    }
    for record in records:
        name = record[0]
        if name not in by_name:
            # A malformed input is a caller configuration mistake — nothing
            # has executed yet (same taxonomy as run_chain's checks).
            raise ConfigurationError(
                f"input record names relation {name!r}, which is not part of "
                f"query {plan.problem.query.name!r}"
            )
        by_name[name].append(record)
    return by_name


def _child_profile(
    plan: PipelinePlan,
    child,
    observed: Dict[str, RelationProfile],
) -> Optional[RelationProfile]:
    """The freshest profile of a round input: observed, else planning-time.

    Intermediates always come from the in-stream observation (exact).
    Base relations reuse the planning profile — sampled ones included:
    the certifier then produces a high-probability bound, which is still
    an honest certificate to compare the planning estimate against.
    """
    if isinstance(child, RelationLeaf):
        if plan.profile is None:
            return None
        name = child.relation.name
        if name not in plan.profile.relations:
            return None
        return plan.profile.relation(name)
    return observed.get(child.schema.name)


def _fingerprinted_certification(
    round_: PipelineRound, observed_profile: DatasetProfile
) -> Certification:
    """Certify the round's schema under the observed profile, cache-keyed.

    The key is the schema name plus the observed profile's content
    fingerprint, so re-running the same pipeline on the same data hits the
    cache instead of re-bucketing the histograms.
    """
    family = round_.plan.family
    return default_schema_cache.get(
        ("pipeline-recert", family.name, observed_profile.fingerprint()),
        lambda: certify_max_reducer_load(family, observed_profile),
    )


def _execute_cascade(
    plan: PipelinePlan,
    records: Sequence[Any],
    engine: MapReduceEngine,
    replan: bool,
    replan_factor: float,
    spill_threshold: Optional[int] = None,
) -> PipelineRunResult:
    base_records = _base_records_by_relation(plan, records)
    node_outputs: Dict[str, Any] = {}
    spilled_blocks: List[SpilledRows] = []
    observed_profiles: Dict[str, RelationProfile] = {}
    rounds = list(plan.rounds)
    job_results: List[JobResult] = []
    executed: List[ExecutedRound] = []
    events: List[ReplanEvent] = []
    certified_loads: List[Optional[float]] = []
    for index, round_ in enumerate(rounds):
        op = round_.op
        assert isinstance(op, BinaryJoinOp)
        final_certification = round_.certification
        replanned = False
        consumes_intermediate = any(
            not isinstance(child, RelationLeaf) for child in (op.left, op.right)
        )
        if consumes_intermediate:
            # Assemble the freshest profile of this round's actual inputs.
            relations = {}
            for child in (op.left, op.right):
                child_profile = _child_profile(plan, child, observed_profiles)
                if child_profile is not None:
                    relations[child.schema.name] = child_profile
            if len(relations) == 2:
                observed_profile = DatasetProfile(relations=relations)
                observed_cert = _fingerprinted_certification(round_, observed_profile)
                estimated = round_.certified_load
                trigger: Optional[str] = None
                if estimated is not None:
                    if observed_cert.bound > estimated:
                        trigger = "certificate-violated"
                    elif observed_cert.bound <= replan_factor * estimated:
                        trigger = "certificate-improved"
                final_certification = observed_cert
                if replan and trigger is not None:
                    try:
                        new_round = replan_round(round_, plan, observed_profile)
                    except PlanningError:
                        # Nothing fits the budget on the observed data; the
                        # original (still sound) plan keeps running.
                        new_round = None
                    if new_round is not None:
                        events.append(
                            ReplanEvent(
                                round_index=index,
                                node=op.schema.name,
                                reason=trigger,
                                estimated_bound=float(estimated),
                                observed_bound=observed_cert.bound,
                                old_plan=round_.name,
                                new_plan=new_round.name,
                            )
                        )
                        rounds[index] = round_ = new_round
                        final_certification = round_.certification
                        replanned = True
        # Gather this round's input records: base relations verbatim,
        # intermediates from the previous rounds' materialized outputs.
        input_records: List[Any] = []
        for child in (op.left, op.right):
            if isinstance(child, RelationLeaf):
                input_records.extend(base_records[child.relation.name])
            else:
                input_records.extend(
                    (child.schema.name, row)
                    for row in node_outputs[child.schema.name]
                )
        job = round_.plan.execute(input_records, engine=engine)
        assert isinstance(job, JobResult)
        job_results.append(job)
        # Profile the intermediate in-stream while it is collected for the
        # next round — one pass, no second copy.
        profiler = StreamingRelationProfiler(op.schema.name, op.schema.attributes)
        rows = list(profiler.wrap(job.outputs))
        stored: Any = rows
        if spill_threshold is not None and len(rows) >= spill_threshold:
            spilled = SpilledRows.try_spill(rows)
            if spilled is not None:
                spilled_blocks.append(spilled)
                stored = spilled
        node_outputs[op.schema.name] = stored
        observed_profiles[op.schema.name] = profiler.finish()
        certified_loads.append(
            final_certification.bound if final_certification is not None else None
        )
        executed.append(
            ExecutedRound(
                index=index,
                op_label=op.label(),
                plan_name=round_.name,
                certification=final_certification,
                estimated_inputs=round_.estimated_inputs,
                observed_inputs=job.metrics.shuffle.num_inputs,
                estimated_output=round_.estimated_output,
                observed_output=len(rows),
                observed_max_load=job.metrics.shuffle.max_reducer_size,
                replanned=replanned,
            )
        )
    final_rows = node_outputs[plan.op.schema.name]
    if not isinstance(final_rows, list):
        final_rows = list(final_rows)
    outputs = _reorder_outputs(plan, final_rows)
    for spilled in spilled_blocks:
        spilled.close()
    result = PipelineResult(
        outputs=outputs,
        metrics=PipelineMetrics(
            chain_name=plan.name,
            rounds=[job.metrics for job in job_results],
        ),
        round_results=job_results,
        round_certified_loads=(
            tuple(load for load in certified_loads)
            if all(load is not None for load in certified_loads)
            else None
        ),
    )
    return PipelineRunResult(
        plan=plan, result=result, executed=executed, replan_events=events
    )


def _reorder_outputs(
    plan: PipelinePlan, rows: List[Tuple[int, ...]]
) -> List[Tuple[int, ...]]:
    """Reorder final tuples from the cascade's column order to the query's."""
    cascade_order = plan.op.schema.attributes
    target_order = plan.problem.query.attributes
    if cascade_order == target_order:
        return rows
    indices = [cascade_order.index(attribute) for attribute in target_order]
    return [tuple(row[i] for i in indices) for row in rows]
