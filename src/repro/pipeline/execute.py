"""Adaptive execution of pipeline plans: run, observe, re-plan, continue.

Executing a cascade exposes information planning never had: the *actual*
intermediate result.  This module runs a :class:`~repro.pipeline.planner.
PipelinePlan` round by round on the engine, profiles every intermediate
**in-stream** (rows are observed as they flow toward the next round's
mappers, via :class:`~repro.stats.profile.StreamingRelationProfiler` — no
second pass over the data), and before each downstream round re-certifies
its chosen schema under the observed profile.  The certificate lookup is
keyed by the observed profile's content fingerprint through the shared
schema cache, so repeated executions of the same data re-use it.

Re-planning triggers when the observed certificate

* **beats** the planning-time estimate by more than ``replan_factor``
  (the synthetic profile was conservative — a cheaper or better-balanced
  schema may now fit), or
* **violates** it (only possible when planning ran without exact
  histograms, e.g. sampled base profiles — the estimate was an
  expectation, not a bound).

The remaining round is then re-planned from scratch against the observed
profile; every re-plan is recorded as a :class:`ReplanEvent` so reports
and the acceptance benchmark can show what mid-flight adaptation bought.

Execution is expressed as a *round coroutine* (:func:`pipeline_rounds`):
the generator yields each round as a :class:`RoundWork` item before it
runs and receives its :class:`RoundOutcome` back via ``send``.
:func:`execute_pipeline` drives it serially (:func:`drive_rounds`) and
behaves exactly as before; the query service drives many such coroutines
at once, interleaving their rounds on one shared worker pool, pricing
each admission by ``RoundWork.admission_load`` (the round's certified
max-reducer-load) and — via ``reuse_key`` fingerprints — feeding one
materialized intermediate to every pipeline that needs it.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import ConfigurationError, PlanningError
from repro.mapreduce.columnar import SpilledRows
from repro.mapreduce.engine import JobResult, MapReduceEngine, PipelineResult
from repro.mapreduce.metrics import PipelineMetrics
from repro.mapreduce.partitioner import stable_hash
from repro.obs.record import PredictionRecord
from repro.pipeline.logical import BinaryJoinOp, RelationLeaf
from repro.pipeline.planner import PipelinePlan, PipelineRound, replan_round
from repro.planner.cache import default_schema_cache
from repro.planner.certify import (
    Certification,
    CertificationKind,
    certify_max_reducer_load,
)
from repro.stats.profile import (
    DatasetProfile,
    RelationProfile,
    StreamingRelationProfiler,
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ReplanEvent:
    """One mid-flight re-planning decision, for reports and assertions.

    ``observed_bound`` is the *old* plan's certificate under the observed
    intermediate profile; ``new_bound`` the replacement plan's certificate.
    Comparing the two says whether re-planning paid off (:attr:`won`) —
    the feedback signal the service's adaptive ``replan_factor`` tuner
    aggregates across queries.  A re-plan that found no feasible
    replacement is recorded with ``new_plan == old_plan`` and
    ``new_bound == observed_bound`` — certified no better, a loss.
    """

    round_index: int
    node: str
    reason: str  # "certificate-improved" | "certificate-violated"
    estimated_bound: float
    observed_bound: float
    old_plan: str
    new_plan: str
    #: Certificate of the re-planned round (``None`` on legacy events).
    new_bound: Optional[float] = None

    @property
    def won(self) -> bool:
        """Whether the re-plan found a strictly better certificate."""
        return self.new_bound is not None and self.new_bound < self.observed_bound

    def describe(self) -> dict:
        return {
            "round": self.round_index,
            "node": self.node,
            "reason": self.reason,
            "estimated_bound": self.estimated_bound,
            "observed_bound": self.observed_bound,
            "old_plan": self.old_plan,
            "new_plan": self.new_plan,
            "new_bound": self.new_bound,
            "won": self.won,
        }


@dataclass(frozen=True)
class ExecutedRound:
    """What one round planned vs what it did."""

    index: int
    op_label: str
    plan_name: str
    certification: Optional[Certification]
    estimated_inputs: float
    observed_inputs: int
    estimated_output: float
    observed_output: int
    observed_max_load: int
    replanned: bool
    #: True when the round's result came from another pipeline's identical
    #: round via the service's shared-intermediate store (nothing executed
    #: for this query; the observed metrics are the producer's).
    reused: bool = False
    #: Which size-bound estimator priced the round at planning time.
    estimate_method: str = ""
    #: What admission control charged to run the round (the service's
    #: ledger price; equals the certificate bound when one exists).
    admission_price: Optional[float] = None
    #: Wall-clock of the round's engine execution (0.0 for reused rounds
    #: and for the trailing jobs of a multi-job chain, whose first job
    #: carries the chain's full time).
    seconds: float = 0.0

    @property
    def certified_load(self) -> Optional[float]:
        return self.certification.bound if self.certification is not None else None


@dataclass
class PipelineRunResult:
    """The outcome of one adaptive pipeline execution.

    ``result`` is the engine-level :class:`PipelineResult` (outputs in the
    original query's attribute order, per-round metrics, certified loads);
    ``executed`` pairs each round's estimates with its observations;
    ``replan_events`` records every mid-flight adaptation.
    """

    plan: PipelinePlan
    result: PipelineResult
    executed: List[ExecutedRound] = field(default_factory=list)
    replan_events: List[ReplanEvent] = field(default_factory=list)

    @property
    def outputs(self) -> List[Any]:
        return self.result.outputs

    @property
    def replan_count(self) -> int:
        return len(self.replan_events)

    @property
    def total_communication(self) -> int:
        return self.result.total_communication

    @property
    def max_observed_load(self) -> int:
        return self.result.max_reducer_load

    @property
    def max_certified_load(self) -> Optional[float]:
        return self.result.max_certified_load

    def certificates_hold(self) -> bool:
        """Whether every *bounding* certificate covers its observed load.

        Only exact and high-probability certificates claim to bound the
        load; EXPECTED-kind certifications (rounds planned without a
        profile — the paper's §5.5 accounting) are expectations that skew
        may legitimately exceed, so they are not checked here, mirroring
        how the single-round stack distinguishes certification kinds.
        """
        return all(
            round_.certification is None
            or round_.certification.kind is CertificationKind.EXPECTED
            or round_.observed_max_load <= round_.certification.bound
            for round_ in self.executed
        )

    def frontier(self) -> List[dict]:
        """Per-round table: estimated vs observed, certificates, re-plans."""
        rows: List[dict] = []
        for executed, result in zip(self.executed, self.result.round_results):
            rows.append(
                {
                    "round": executed.index,
                    "op": executed.op_label,
                    "plan": executed.plan_name,
                    "certified_load": executed.certified_load,
                    "observed_max_load": executed.observed_max_load,
                    "est_rows_out": executed.estimated_output,
                    "rows_out": executed.observed_output,
                    "communication": result.communication_cost,
                    "replanned": executed.replanned,
                }
            )
        return rows

    def prediction_records(self, query: str = "") -> List[PredictionRecord]:
        """Per-round prediction/observation pairs for the telemetry ledger.

        ``query`` labels the records (a service handle label, a benchmark
        scenario name); defaults to the plan's name.
        """
        label = query or self.plan.name
        records: List[PredictionRecord] = []
        for executed in self.executed:
            certification = executed.certification
            records.append(
                PredictionRecord(
                    query=label,
                    round_index=executed.index,
                    op=executed.op_label,
                    plan=executed.plan_name,
                    method=executed.estimate_method
                    or (certification.method if certification is not None else ""),
                    kind=(
                        certification.kind.value
                        if certification is not None
                        else ""
                    ),
                    estimated_rows=executed.estimated_output,
                    observed_rows=float(executed.observed_output),
                    certified_load=executed.certified_load,
                    observed_max_load=float(executed.observed_max_load),
                    admission_price=executed.admission_price,
                    replanned=executed.replanned,
                    reused=executed.reused,
                    seconds=executed.seconds,
                )
            )
        return records


# ----------------------------------------------------------------------
# The round protocol: yield work, receive outcomes
# ----------------------------------------------------------------------
@dataclass
class RoundOutcome:
    """What one scheduled round produced.

    ``job`` is the engine result (a :class:`JobResult`, or the chain's
    :class:`PipelineResult` for a two-phase matmul round).  For cascade
    rounds the coroutine fills ``rows`` (the materialized intermediate) and
    ``profile`` (its in-stream observation) after receiving the outcome, so
    a driver sharing intermediates across pipelines can hand both to other
    consumers without re-materializing or re-profiling.  A driver feeding a
    cached intermediate back sets ``reused=True`` with all three fields
    populated; the coroutine then skips execution-side work entirely.
    """

    job: Any
    rows: Optional[List[Any]] = None
    profile: Optional[RelationProfile] = None
    reused: bool = False
    #: Wall-clock seconds the round's runner took (0.0 when reused).
    seconds: float = 0.0


@dataclass
class RoundWork:
    """One schedulable round of a pipeline execution.

    Yielded by :func:`pipeline_rounds` before the round runs.  The driver
    either calls :meth:`execute` (running the round on the coroutine's
    engine in the calling thread) and sends the outcome back, or — when
    ``reuse_key`` matches an intermediate another pipeline already
    materialized — sends that shared :class:`RoundOutcome` back instead.

    ``admission_load`` is what admission control charges for running this
    round: the freshest certified max-reducer-load when the round carries a
    certificate (re-certified against observed intermediates where
    available), else the plan's reducer budget ``q`` — the bound the
    planner's feasibility filter enforced.
    """

    index: int
    label: str
    plan_name: str
    certification: Optional[Certification]
    admission_load: float
    reuse_key: Optional[Tuple[Hashable, ...]]
    _runner: Callable[[], Any]

    @property
    def certified_load(self) -> Optional[float]:
        return self.certification.bound if self.certification is not None else None

    def execute(self) -> RoundOutcome:
        """Run the round now, in the calling thread, and wrap its result."""
        started = time.perf_counter()
        job = self._runner()
        return RoundOutcome(job=job, seconds=time.perf_counter() - started)


#: The coroutine type: yields RoundWork, receives RoundOutcome via
#: ``send``, returns the finished PipelineRunResult in StopIteration.
RoundGenerator = Generator[RoundWork, RoundOutcome, PipelineRunResult]


def drive_rounds(rounds: RoundGenerator) -> PipelineRunResult:
    """Serial driver: execute every yielded round in the calling thread."""
    try:
        work = next(rounds)
        while True:
            work = rounds.send(work.execute())
    except StopIteration as stop:
        return stop.value


def pipeline_rounds(
    plan: PipelinePlan,
    records: Sequence[Any],
    engine: Optional[MapReduceEngine] = None,
    replan: bool = True,
    replan_factor: float = 0.5,
    spill_threshold: Optional[int] = None,
    reuse_keys: bool = False,
    replan_observer: Optional[Callable[[ReplanEvent], None]] = None,
) -> RoundGenerator:
    """The round-level coroutine behind :func:`execute_pipeline`.

    Yields one :class:`RoundWork` per engine round *before* it runs and
    receives its :class:`RoundOutcome` via ``send``, so a driver other than
    the serial one can interleave rounds of many pipelines on a shared
    worker pool — the query service's scheduler does exactly that.  All
    adaptive behaviour (in-stream profiling, re-certification, mid-flight
    re-planning) lives here, identically for every driver.

    ``reuse_keys=True`` additionally stamps each cascade round with a
    content fingerprint of its join sub-tree (structure, base-relation
    records, chosen physical plan), letting a driver recognise that two
    pipelines are about to materialize the same intermediate.  The serial
    driver never uses the keys, so the fingerprinting cost is opt-in.
    """
    engine = engine or MapReduceEngine(plan.cluster)
    if not isinstance(plan.op, BinaryJoinOp):
        return _single_rounds(plan, records, engine)
    return _cascade_rounds(
        plan,
        records,
        engine,
        replan,
        replan_factor,
        spill_threshold,
        reuse_keys,
        replan_observer,
    )


def execute_pipeline(
    plan: PipelinePlan,
    records: Sequence[Any],
    engine: Optional[MapReduceEngine] = None,
    replan: bool = True,
    replan_factor: float = 0.5,
    spill_threshold: Optional[int] = None,
    replan_observer: Optional[Callable[[ReplanEvent], None]] = None,
) -> PipelineRunResult:
    """Run a pipeline plan, adapting the remaining rounds as data arrives.

    Parameters
    ----------
    plan:
        The planned round structure (usually ``result.best``).
    records:
        Input records — for joins, ``(relation name, tuple)`` pairs as
        produced by :meth:`SharesSchema.input_records`.
    engine:
        Engine to run on; one with the plan's cluster is built if omitted.
    replan:
        Disable to execute the planned rounds verbatim (no adaptation).
    replan_factor:
        A downstream round is re-planned when its observed-profile
        certificate drops below ``replan_factor`` times the planning-time
        certificate (or exceeds it, which only non-exact planning allows).
    spill_threshold:
        When set, any intermediate of at least this many rows is spilled
        to disk as one packed int64 column block
        (:class:`~repro.mapreduce.columnar.SpilledRows`) instead of staying
        resident as Python tuples; downstream rounds re-materialize it
        lazily and bit-identically.  ``None`` (the default) keeps every
        intermediate in memory.  Intermediates outside the packed layout
        (ragged or non-integer rows) stay in memory regardless.
    replan_observer:
        Optional callback invoked with each :class:`ReplanEvent` as it
        happens — the hook the service's adaptive ``replan_factor`` tuner
        listens on.
    """
    return drive_rounds(
        pipeline_rounds(
            plan,
            records,
            engine=engine,
            replan=replan,
            replan_factor=replan_factor,
            spill_threshold=spill_threshold,
            replan_observer=replan_observer,
        )
    )


# ----------------------------------------------------------------------
# Single-structure execution (one-round joins, matmul chains, aggregates)
# ----------------------------------------------------------------------
def _single_rounds(
    plan: PipelinePlan, records: Sequence[Any], engine: MapReduceEngine
) -> RoundGenerator:
    round_ = plan.rounds[0]
    work = RoundWork(
        index=0,
        label=plan.op.label(),
        plan_name=round_.name,
        certification=round_.certification,
        admission_load=(
            round_.certified_load
            if round_.certified_load is not None
            else plan.q_budget
        ),
        reuse_key=None,
        _runner=lambda: round_.plan.execute(records, engine=engine),
    )
    received = yield work
    outcome = received.job
    if isinstance(outcome, JobResult):
        job_results = [outcome]
        outputs = outcome.outputs
    else:  # a JobChain execution (two-phase matmul) already returns a pipeline
        job_results = outcome.round_results
        outputs = outcome.outputs
    bound = round_.certified_load
    certified = tuple(bound for _ in job_results) if bound is not None else None
    result = PipelineResult(
        outputs=outputs,
        metrics=PipelineMetrics(
            chain_name=plan.name,
            rounds=[job.metrics for job in job_results],
        ),
        round_results=job_results,
        round_certified_loads=certified,
    )
    executed = [
        ExecutedRound(
            index=index,
            op_label=plan.op.label(),
            plan_name=round_.name,
            certification=round_.certification,
            estimated_inputs=round_.estimated_inputs,
            observed_inputs=job.metrics.shuffle.num_inputs,
            estimated_output=round_.estimated_output,
            observed_output=len(job.outputs),
            observed_max_load=job.metrics.shuffle.max_reducer_size,
            replanned=False,
            reused=received.reused,
            estimate_method=round_.estimate_method,
            admission_price=work.admission_load,
            seconds=received.seconds if index == 0 else 0.0,
        )
        for index, job in enumerate(job_results)
    ]
    return PipelineRunResult(plan=plan, result=result, executed=executed)


# ----------------------------------------------------------------------
# Cascade execution with mid-flight re-planning
# ----------------------------------------------------------------------
def _base_records_by_relation(
    plan: PipelinePlan, records: Sequence[Any]
) -> Dict[str, List[Any]]:
    by_name: Dict[str, List[Any]] = {
        relation.name: [] for relation in plan.problem.query.relations
    }
    for record in records:
        name = record[0]
        if name not in by_name:
            # A malformed input is a caller configuration mistake — nothing
            # has executed yet (same taxonomy as run_chain's checks).
            raise ConfigurationError(
                f"input record names relation {name!r}, which is not part of "
                f"query {plan.problem.query.name!r}"
            )
        by_name[name].append(record)
    return by_name


def _child_profile(
    plan: PipelinePlan,
    child,
    observed: Dict[str, RelationProfile],
) -> Optional[RelationProfile]:
    """The freshest profile of a round input: observed, else planning-time.

    Intermediates always come from the in-stream observation (exact).
    Base relations reuse the planning profile — sampled ones included:
    the certifier then produces a high-probability bound, which is still
    an honest certificate to compare the planning estimate against.
    """
    if isinstance(child, RelationLeaf):
        if plan.profile is None:
            return None
        name = child.relation.name
        if name not in plan.profile.relations:
            return None
        return plan.profile.relation(name)
    return observed.get(child.schema.name)


def _fingerprinted_certification(
    round_: PipelineRound, observed_profile: DatasetProfile
) -> Certification:
    """Certify the round's schema under the observed profile, cache-keyed.

    The key is the schema name plus the observed profile's content
    fingerprint, so re-running the same pipeline on the same data hits the
    cache instead of re-bucketing the histograms.
    """
    family = round_.plan.family
    return default_schema_cache.get(
        ("pipeline-recert", family.name, observed_profile.fingerprint()),
        lambda: certify_max_reducer_load(family, observed_profile),
    )


def _base_fingerprints(base_records: Dict[str, List[Any]]) -> Dict[str, int]:
    """Content fingerprint per base relation's record list (order included).

    Row order matters: the engine's outputs are deterministic *given* the
    input record order, so two sub-trees only produce bit-identical
    intermediates when their base records arrive identically.
    """
    return {
        name: stable_hash((name, tuple(rows)))
        for name, rows in base_records.items()
    }


def _plan_token(round_: PipelineRound) -> Tuple:
    """Physical-plan identity of one round: name plus shares vector.

    Different shares vectors spread tuples over different reducer grids,
    which permutes the emitted row order — so the plan identity is part of
    what makes an intermediate bit-reproducible.
    """
    family = round_.plan.family
    shares = getattr(family, "shares", None)
    shares_token = (
        tuple(sorted(shares.items())) if isinstance(shares, dict) else None
    )
    return (round_.name, shares_token)


def _leaf_token(leaf: RelationLeaf, fingerprints: Dict[str, int]) -> Tuple:
    """Canonical token of one base relation: schema + record content."""
    return (
        "rel",
        leaf.relation.name,
        leaf.relation.attributes,
        fingerprints[leaf.relation.name],
    )


def _cascade_rounds(
    plan: PipelinePlan,
    records: Sequence[Any],
    engine: MapReduceEngine,
    replan: bool,
    replan_factor: float,
    spill_threshold: Optional[int],
    reuse_keys: bool,
    replan_observer: Optional[Callable[[ReplanEvent], None]],
) -> RoundGenerator:
    base_records = _base_records_by_relation(plan, records)
    fingerprints = _base_fingerprints(base_records) if reuse_keys else None
    tracer = engine.config.tracer
    registry = engine.config.metrics
    #: Lineage token per materialized node: leaf content plus the physical
    #: plan of every round that fed it.  Two rounds share an intermediate
    #: only when these tokens match — same structure, same base records,
    #: same plan choices all the way down — which is exactly when the rows
    #: are bit-identical (the engine is deterministic given input order).
    node_tokens: Dict[str, Tuple] = {}
    node_outputs: Dict[str, Any] = {}
    spilled_blocks: List[SpilledRows] = []
    observed_profiles: Dict[str, RelationProfile] = {}
    rounds = list(plan.rounds)
    job_results: List[JobResult] = []
    executed: List[ExecutedRound] = []
    events: List[ReplanEvent] = []
    certified_loads: List[Optional[float]] = []
    for index, round_ in enumerate(rounds):
        op = round_.op
        assert isinstance(op, BinaryJoinOp)
        final_certification = round_.certification
        replanned = False
        consumes_intermediate = any(
            not isinstance(child, RelationLeaf) for child in (op.left, op.right)
        )
        if consumes_intermediate:
            # Assemble the freshest profile of this round's actual inputs.
            relations = {}
            for child in (op.left, op.right):
                child_profile = _child_profile(plan, child, observed_profiles)
                if child_profile is not None:
                    relations[child.schema.name] = child_profile
            if len(relations) == 2:
                observed_profile = DatasetProfile(relations=relations)
                with tracer.span(
                    "re-certify", node=op.schema.name, round=index
                ):
                    observed_cert = _fingerprinted_certification(
                        round_, observed_profile
                    )
                estimated = round_.certified_load
                trigger: Optional[str] = None
                if estimated is not None:
                    if observed_cert.bound > estimated:
                        trigger = "certificate-violated"
                    elif observed_cert.bound <= replan_factor * estimated:
                        trigger = "certificate-improved"
                final_certification = observed_cert
                if replan and trigger is not None:
                    with tracer.span(
                        "replan",
                        node=op.schema.name,
                        round=index,
                        reason=trigger,
                    ):
                        try:
                            new_round = replan_round(
                                round_, plan, observed_profile
                            )
                        except PlanningError:
                            # Nothing fits the budget on the observed data;
                            # the original (still sound) plan keeps running.
                            # Still recorded below — with the old plan's
                            # name and observed bound, i.e. certified no
                            # better — so the wasted planning work is a
                            # scorable loss for the adaptive replan_factor
                            # tuner.
                            new_round = None
                    event = ReplanEvent(
                        round_index=index,
                        node=op.schema.name,
                        reason=trigger,
                        estimated_bound=float(estimated),
                        observed_bound=observed_cert.bound,
                        old_plan=round_.name,
                        new_plan=(
                            new_round.name if new_round is not None else round_.name
                        ),
                        new_bound=(
                            new_round.certified_load
                            if new_round is not None
                            else observed_cert.bound
                        ),
                    )
                    events.append(event)
                    logger.info(
                        "replan round %d (%s) on %s: plan %s -> %s, "
                        "bound %.6g -> %s (%s)",
                        index,
                        op.schema.name,
                        trigger,
                        event.old_plan,
                        event.new_plan,
                        event.observed_bound,
                        event.new_bound,
                        "win" if event.won else "loss",
                    )
                    if registry.enabled:
                        registry.counter(
                            "pipeline_replans_total",
                            "Mid-flight re-planning decisions, by trigger",
                        ).inc(reason=trigger)
                        if event.won:
                            registry.counter(
                                "pipeline_replan_wins_total",
                                "Re-plans whose new certificate beat the "
                                "observed bound",
                            ).inc()
                        else:
                            registry.counter(
                                "pipeline_replan_losses_total",
                                "Re-plans certified no better than the "
                                "running plan",
                            ).inc()
                    if replan_observer is not None:
                        replan_observer(event)
                    if new_round is not None:
                        rounds[index] = round_ = new_round
                        final_certification = round_.certification
                        replanned = True
        # Gather this round's input records: base relations verbatim,
        # intermediates from the previous rounds' materialized outputs.
        input_records: List[Any] = []
        for child in (op.left, op.right):
            if isinstance(child, RelationLeaf):
                input_records.extend(base_records[child.relation.name])
            else:
                input_records.extend(
                    (child.schema.name, row)
                    for row in node_outputs[child.schema.name]
                )
        round_token: Optional[Tuple] = None
        if reuse_keys:
            # Built after re-planning settled, so the token names the plan
            # that will actually run.
            child_tokens = tuple(
                _leaf_token(child, fingerprints)
                if isinstance(child, RelationLeaf)
                else node_tokens[child.schema.name]
                for child in (op.left, op.right)
            )
            round_token = ("join", child_tokens, _plan_token(round_))
        work = RoundWork(
            index=index,
            label=op.label(),
            plan_name=round_.name,
            certification=final_certification,
            admission_load=(
                final_certification.bound
                if final_certification is not None
                else plan.q_budget
            ),
            reuse_key=(
                ("shared-intermediate", round_token) if reuse_keys else None
            ),
            _runner=(
                lambda records_=input_records, plan_=round_.plan: plan_.execute(
                    records_, engine=engine
                )
            ),
        )
        received = yield work
        job = received.job
        assert isinstance(job, JobResult)
        job_results.append(job)
        if received.reused and received.rows is not None:
            # Another pipeline materialized (and profiled) this identical
            # intermediate; adopt its rows and observation verbatim.
            rows = received.rows
            finished_profile = received.profile
            stored: Any = rows
        else:
            # Profile the intermediate in-stream while it is collected for
            # the next round — one pass, no second copy.
            with tracer.span(
                "profile-intermediate", node=op.schema.name, round=index
            ):
                profiler = StreamingRelationProfiler(
                    op.schema.name, op.schema.attributes
                )
                rows = list(profiler.wrap(job.outputs))
                finished_profile = profiler.finish()
            # Publish rows and profile on the outcome so a sharing driver
            # can feed other consumers of the same sub-tree.
            received.rows = rows
            received.profile = finished_profile
            stored = rows
            if spill_threshold is not None and len(rows) >= spill_threshold:
                spilled = SpilledRows.try_spill(rows)
                if spilled is not None:
                    spilled_blocks.append(spilled)
                    stored = spilled
        node_outputs[op.schema.name] = stored
        if round_token is not None:
            node_tokens[op.schema.name] = round_token
        if finished_profile is not None:
            observed_profiles[op.schema.name] = finished_profile
        certified_loads.append(
            final_certification.bound if final_certification is not None else None
        )
        executed.append(
            ExecutedRound(
                index=index,
                op_label=op.label(),
                plan_name=round_.name,
                certification=final_certification,
                estimated_inputs=round_.estimated_inputs,
                observed_inputs=job.metrics.shuffle.num_inputs,
                estimated_output=round_.estimated_output,
                observed_output=len(rows),
                observed_max_load=job.metrics.shuffle.max_reducer_size,
                replanned=replanned,
                reused=received.reused,
                estimate_method=round_.estimate_method,
                admission_price=work.admission_load,
                seconds=received.seconds,
            )
        )
    final_rows = node_outputs[plan.op.schema.name]
    if not isinstance(final_rows, list):
        final_rows = list(final_rows)
    outputs = _reorder_outputs(plan, final_rows)
    for spilled in spilled_blocks:
        spilled.close()
    result = PipelineResult(
        outputs=outputs,
        metrics=PipelineMetrics(
            chain_name=plan.name,
            rounds=[job.metrics for job in job_results],
        ),
        round_results=job_results,
        round_certified_loads=(
            tuple(load for load in certified_loads)
            if all(load is not None for load in certified_loads)
            else None
        ),
    )
    return PipelineRunResult(
        plan=plan, result=result, executed=executed, replan_events=events
    )


def _reorder_outputs(
    plan: PipelinePlan, rows: List[Tuple[int, ...]]
) -> List[Tuple[int, ...]]:
    """Reorder final tuples from the cascade's column order to the query's."""
    cascade_order = plan.op.schema.attributes
    target_order = plan.problem.query.attributes
    if cascade_order == target_order:
        return rows
    indices = [cascade_order.index(attribute) for attribute in target_order]
    return [tuple(row[i] for i in indices) for row in rows]
