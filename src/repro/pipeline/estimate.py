"""Intermediate-cardinality bounds and synthetic profiles for cascades.

A cascade planner must price round *k+1* before round *k* has produced a
single record, so it needs two things about every intermediate result:

* an **upper bound on its size** — the records round *k+1* will have to
  ship; and
* a **profile** of its columns — so the downstream round can reuse the
  existing certification stack (:func:`~repro.planner.certify.
  certify_max_reducer_load`, :func:`~repro.planner.share_opt.
  optimize_shares`) unchanged.

Size bounds come from the pluggable registry in :mod:`repro.bounds` —
every applicable estimator answers, the minimum wins, and the decision
records which method produced it.  The default registry holds:

1. **per-value histogram bounds** — with exact histograms on both join
   sides, ``|L ⋈ R| ≤ min_{s ∈ shared} Σ_v cnt_L(s=v) · cnt_R(s=v)``;
   exact (not just a bound) when exactly one attribute is shared, since
   distinct tuple pairs produce distinct outputs;
2. **AGM bounds** — ``Π_e |R_e|^{x_e}`` over the subtree's induced
   sub-query with the optimal fractional edge cover weights ``x`` (Atserias
   –Grohe–Marx; the output-size bounds Abo Khamis–Ngo–Suciu build on),
   needing only row counts, so it also covers sampled profiles — labelled
   ``model-domain`` when no profile covers the query (the paper's
   full-domain ``n^arity`` accounting);
3. **degree-constraint chain bounds** — from exact ``max_degree`` caps and
   functional dependencies, ≤ AGM whenever they apply;
4. **top-k frequency bounds** — UES-style positional pairing of the
   columns' top frequency vectors (deterministic Misra–Gries uppers on
   sampled profiles; KMV refinements feed only the calibrated estimate).

Synthetic profiles mix two fidelities, deliberately.  The **join columns**
(attributes shared by the two inputs) get sound per-value upper bounds —
``cnt_T(s=v) ≤ cnt_L(s=v)·cnt_R(s=v)``, exact for a single shared
attribute — because those are where skew concentrates and where a
downstream certificate must not be fooled.  The **carried columns**
(attributes from one side only) get *calibrated projections*: each input
row is assumed to fan out by the mean multiplicity ``size_bound / |side|``,
so the projected histogram's mass matches the size bound instead of being
inflated by the worst-case per-row fan-out (marginal histograms admit
adversarial instances where every row of one value joins the heaviest key,
so a sound marginal-only column bound is necessarily ``cnt · max-degree``
— uselessly loose for planning).  Rounds certified against a projected
profile are therefore flagged ``projected``: their certificates are
planning estimates, and the adaptive executor re-certifies every such
round against the *observed* intermediate (fingerprint-keyed) before
running it — re-planning mid-flight when the estimate is beaten or
violated — so every certificate that reaches execution is sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from repro.bounds import (
    METHOD_AGM,
    METHOD_DOMAIN,
    METHOD_HISTOGRAM,
    BoundContext,
    BoundRegistry,
    ChildView,
    agm_bound,
    default_bound_registry,
    per_value_sum,
)
from repro.exceptions import ConfigurationError
from repro.obs.metrics import NULL_METRICS
from repro.pipeline.logical import BinaryJoinOp, LogicalOp, RelationLeaf
from repro.problems.joins import JoinQuery
from repro.stats.profile import AttributeProfile, DatasetProfile, RelationProfile

# ``agm_bound`` and the method labels live in :mod:`repro.bounds` now; the
# re-exports above keep this module's historical import surface working.
_per_value_sum = per_value_sum


def per_value_join_bound(
    left: RelationProfile,
    right: RelationProfile,
    shared_attributes: Tuple[str, ...],
) -> Optional[float]:
    """``min_s Σ_v cnt_L(s=v)·cnt_R(s=v)`` from exact histograms.

    Returns ``None`` when either side lacks a full histogram on some
    shared attribute.  Exact when a single attribute is shared (each
    distinct tuple pair yields a distinct output tuple); an upper bound
    otherwise, since matching on one attribute over-counts pairs that
    disagree elsewhere.
    """
    if not shared_attributes:
        return None
    best: Optional[float] = None
    for attribute in shared_attributes:
        left_stats = left.attribute(attribute)
        right_stats = right.attribute(attribute)
        if not (left_stats.exact and right_stats.exact):
            return None
        total = _per_value_sum(left_stats.histogram, right_stats.histogram)
        best = total if best is None else min(best, total)
    return best


def approximate_histogram(stats: AttributeProfile) -> Dict[Hashable, float]:
    """A calibrated value → count map for an attribute of any fidelity.

    Exact attributes return their histogram verbatim.  Sampled attributes
    are reconstructed from what the sketches know: Misra–Gries heavy
    hitters keep their guaranteed lower-bound counts, and the remaining
    mass is spread evenly over the reservoir's other distinct values (the
    best available proxy for the value population).  The result is an
    *estimate* — the projected profiles built from it are flagged and
    re-checked against observation by the adaptive executor.
    """
    if stats.exact:
        return {value: float(count) for value, count in stats.histogram.items()}
    histogram: Dict[Hashable, float] = {
        value: float(count) for value, count in stats.heavy_hitters.items()
    }
    remaining = float(stats.total_count) - sum(histogram.values())
    others = [value for value in dict.fromkeys(stats.sample) if value not in histogram]
    if others and remaining > 0:
        each = remaining / len(others)
        for value in others:
            histogram[value] = each
    elif remaining > 0 and histogram:
        # No reservoir beyond the heavy hitters: scale them up to the mass.
        scale = float(stats.total_count) / sum(histogram.values())
        histogram = {value: count * scale for value, count in histogram.items()}
    return histogram


@dataclass(frozen=True)
class IntermediateEstimate:
    """Everything the planner knows about one not-yet-materialized result.

    ``size_bound`` is a *sound* upper bound on the row count (per-value
    histogram sums when exact, AGM otherwise) — the quantity the
    estimation property tests hold against observation.  ``size_estimate``
    is the *calibrated* expectation used for pricing and synthetic-profile
    mass (equal to the bound when inputs are exactly profiled, never above
    it).  ``method`` names the bound that won; ``exact_inputs`` records
    whether every histogram feeding it was exact; ``profile`` is the
    synthetic relation profile for downstream planning (``None`` only when
    an input carries no profile at all).
    """

    name: str
    size_bound: float
    method: str
    exact_inputs: bool
    size_estimate: float = 0.0
    profile: Optional[RelationProfile] = None
    #: True when ``profile`` is a synthetic projection (an intermediate);
    #: certificates computed from it are planning estimates, not bounds.
    projected: bool = False
    #: Per-attribute value → count maps that are *sound upper bounds* on
    #: the result's true histograms: every attribute for an exactly
    #: profiled base relation, only the join columns for an intermediate
    #: (carried columns have no sound marginal-only bound worth using).
    #: ``None`` when nothing sound is known.  These — never the projected
    #: profile — feed the next level's per-value size bound.
    sound_histograms: Optional[Dict[str, Dict[Hashable, float]]] = None
    #: Per-attribute *sound* caps on any single value's multiplicity in the
    #: result (exact ``max_degree`` for profiled leaves, composed caps for
    #: intermediates).  The degree-constraint bound's raw material; ``None``
    #: when no caps are known.
    degree_caps: Optional[Dict[str, float]] = None


class SizeEstimator:
    """Estimates every node of a cascade over one (possibly profiled) query.

    Estimates are memoized per node schema name, so shared subtrees across
    the enumerated cascades (e.g. ``(R1*R2)`` inside every left-deep tree
    that starts with it) are estimated once per planning call.
    """

    def __init__(
        self,
        query: JoinQuery,
        domain_size: int,
        profile: Optional[DatasetProfile] = None,
        bounds: Optional[BoundRegistry] = None,
        metrics: Any = NULL_METRICS,
    ) -> None:
        if domain_size <= 0:
            raise ConfigurationError(f"domain size must be positive, got {domain_size}")
        self.query = query
        self.domain_size = domain_size
        names = [relation.name for relation in query.relations]
        self.profile = (
            profile if profile is not None and profile.covers(names) else None
        )
        self.bounds = bounds if bounds is not None else default_bound_registry
        self.metrics = metrics
        self._estimates: Dict[str, IntermediateEstimate] = {}

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def leaf_rows(self, relation_name: str) -> float:
        """Row count of a base relation: profiled, else the model's n^arity."""
        if self.profile is not None:
            return float(self.profile.relation(relation_name).total_rows)
        relation = self.query.relation(relation_name)
        return float(self.domain_size**relation.arity)

    def _leaf_profile(self, relation_name: str) -> Optional[RelationProfile]:
        if self.profile is None:
            return None
        return self.profile.relation(relation_name)

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def estimate(self, op: LogicalOp) -> IntermediateEstimate:
        """Size bound + synthetic profile for a logical operator's result."""
        if isinstance(op, RelationLeaf):
            # Leaves are memoized too: planning one query touches each
            # leaf several times per enumerated tree, and the sound-
            # histogram copy of a large exact profile is not free.
            cached = self._estimates.get(op.relation.name)
            if cached is not None:
                return cached
            profile = self._leaf_profile(op.relation.name)
            rows = self.leaf_rows(op.relation.name)
            sound: Optional[Dict[str, Dict[Hashable, float]]] = None
            if profile is not None and profile.exact:
                sound = {
                    attribute: {
                        value: float(count)
                        for value, count in profile.attribute(attribute).histogram.items()
                    }
                    for attribute in op.relation.attributes
                }
            caps: Optional[Dict[str, float]] = None
            if profile is not None:
                caps = {
                    attribute: float(profile.attribute(attribute).degree_cap)
                    for attribute in op.relation.attributes
                }
            leaf = IntermediateEstimate(
                name=op.relation.name,
                size_bound=rows,
                method=METHOD_HISTOGRAM if profile is not None else METHOD_DOMAIN,
                exact_inputs=profile is not None and profile.exact,
                size_estimate=rows,
                profile=profile,
                sound_histograms=sound,
                degree_caps=caps,
            )
            self._estimates[op.relation.name] = leaf
            return leaf
        if not isinstance(op, BinaryJoinOp):
            raise ConfigurationError(
                f"size estimation covers join cascades; got {type(op).__name__}"
            )
        key = op.schema.name
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        left = self.estimate(op.left)
        right = self.estimate(op.right)
        estimate = self._join_estimate(op, left, right)
        self._estimates[key] = estimate
        return estimate

    def round_input_records(self, op: BinaryJoinOp) -> float:
        """Records entering the op's round: both children, fully shipped."""
        return (
            self.estimate(op.left).size_estimate
            + self.estimate(op.right).size_estimate
        )

    def round_profile(self, op: BinaryJoinOp) -> Optional[DatasetProfile]:
        """Dataset profile for the op's two-relation round query.

        Present only when both children carry (actual or synthetic) exact
        profiles; the downstream round is then certified through exactly
        the same per-bucket path as a base-table join.
        """
        left = self.estimate(op.left)
        right = self.estimate(op.right)
        if left.profile is None or right.profile is None:
            return None
        return DatasetProfile(
            relations={left.name: left.profile, right.name: right.profile}
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _child_view(estimate: IntermediateEstimate) -> ChildView:
        collected = estimate.profile is not None and not estimate.projected
        return ChildView(
            name=estimate.name,
            rows=estimate.size_bound,
            sound_histograms=estimate.sound_histograms,
            degree_caps=estimate.degree_caps,
            attribute_profiles=(
                estimate.profile.attributes if collected else None
            ),
        )

    def query_output_bound(self) -> Tuple[float, str]:
        """Sound output bound for the whole query, with the winning method.

        The one-round planner prices its single round with this — the same
        registry the cascade nodes go through, evaluated over the full
        query instead of a subtree.
        """
        row_counts = {
            relation.name: self.leaf_rows(relation.name)
            for relation in self.query.relations
        }
        decision = self.bounds.evaluate(
            BoundContext(
                query=self.query,
                row_counts=row_counts,
                profile=self.profile,
                metrics=self.metrics,
            )
        )
        return decision.value, decision.method

    def _join_estimate(
        self,
        op: BinaryJoinOp,
        left: IntermediateEstimate,
        right: IntermediateEstimate,
    ) -> IntermediateEstimate:
        shared = op.shared_attributes
        # Every applicable registered bound, minimum wins — AGM over the
        # subtree's induced sub-query (clamped by the children's cross
        # product), per-value sums over sound histograms, degree-constraint
        # chains, top-k frequency pairings.
        induced = self.query.induced(sorted(set(op.base_relations)))
        row_counts = {name: self.leaf_rows(name) for name in set(op.base_relations)}
        decision = self.bounds.evaluate(
            BoundContext(
                query=induced,
                row_counts=row_counts,
                profile=self.profile,
                left=self._child_view(left),
                right=self._child_view(right),
                shared_attributes=shared,
                metrics=self.metrics,
            )
        )
        size = decision.value
        method = decision.method
        exact_inputs = (
            left.exact_inputs
            and right.exact_inputs
            and left.profile is not None
            and right.profile is not None
        )
        # The calibrated estimate: per-value sums over the approximate
        # histograms (exact inputs make this coincide with the bound for a
        # single shared attribute), clamped by the sound bound and by any
        # estimate-grade refinement a registered bound offered (e.g. the
        # top-k estimator's KMV-paired tail).
        estimate = min(size, decision.estimate)
        profile = None
        if left.profile is not None and right.profile is not None:
            left_hists = self._histograms(left.profile, op.left.schema.attributes)
            right_hists = self._histograms(right.profile, op.right.schema.attributes)
            approx = self._approximate_join_size(left_hists, right_hists, shared)
            if approx is not None:
                estimate = min(approx, estimate)
            profile = self._synthetic_profile(
                op,
                left_hists,
                right_hists,
                left_rows=left.size_estimate,
                right_rows=right.size_estimate,
                size_estimate=estimate,
                size_bound=size,
            )
        # Sound histograms of the result: only the join columns — per-value
        # products of the children's sound histograms, capped at the sound
        # size bound (the true count never exceeds the true total).
        sound: Optional[Dict[str, Dict[Hashable, float]]] = None
        if left.sound_histograms is not None and right.sound_histograms is not None:
            sound = {}
            for attribute in shared:
                if (
                    attribute not in left.sound_histograms
                    or attribute not in right.sound_histograms
                ):
                    continue
                combined: Dict[Hashable, float] = {}
                right_hist = right.sound_histograms[attribute]
                for value, count in left.sound_histograms[attribute].items():
                    other = right_hist.get(value)
                    if other:
                        combined[value] = min(count * other, size)
                sound[attribute] = combined
            if not sound:
                sound = None
        caps = self._result_degree_caps(op, left, right, size, sound)
        return IntermediateEstimate(
            name=op.schema.name,
            size_bound=size,
            method=method,
            exact_inputs=exact_inputs,
            size_estimate=estimate,
            profile=profile,
            projected=profile is not None,
            sound_histograms=sound,
            degree_caps=caps,
        )

    @staticmethod
    def _result_degree_caps(
        op: BinaryJoinOp,
        left: IntermediateEstimate,
        right: IntermediateEstimate,
        size_bound: float,
        sound: Optional[Dict[str, Dict[Hashable, float]]],
    ) -> Optional[Dict[str, float]]:
        """Sound per-value multiplicity caps for the join's columns.

        For a shared attribute ``a``: ``cap_T(a) ≤ cap_L(a)·cap_R(a)``
        (each matching pair multiplies).  For an attribute carried from one
        side: every row of that side with ``a = v`` joins at most
        ``min_{s shared} cap_other(s)`` rows of the other side, so
        ``cap_T(a) ≤ cap_own(a) · min_s cap_other(s)`` (the other side's
        full row bound for a cross join).  Everything is clamped by the
        size bound and, where a sound result histogram exists, by its
        largest per-value product.
        """
        left_caps = left.degree_caps
        right_caps = right.degree_caps
        if left_caps is None and right_caps is None:
            return None
        shared = set(op.shared_attributes)

        def side_cap(caps: Optional[Dict[str, float]], rows: float) -> float:
            # How many rows of this side any single other-side row matches.
            if caps is None:
                return rows
            connecting = [caps[a] for a in shared if a in caps]
            return min(connecting + [rows])

        left_fanout = side_cap(left_caps, left.size_bound)
        right_fanout = side_cap(right_caps, right.size_bound)
        result: Dict[str, float] = {}
        for attribute in op.schema.attributes:
            in_left = attribute in op.left.schema.attributes
            in_right = attribute in op.right.schema.attributes
            if in_left and in_right:
                left_cap = (left_caps or {}).get(attribute, left.size_bound)
                right_cap = (right_caps or {}).get(attribute, right.size_bound)
                cap = left_cap * right_cap
            elif in_left:
                cap = (left_caps or {}).get(attribute, left.size_bound) * right_fanout
            else:
                cap = (right_caps or {}).get(attribute, right.size_bound) * left_fanout
            cap = min(cap, size_bound)
            if sound is not None and attribute in sound and sound[attribute]:
                cap = min(cap, max(sound[attribute].values()))
            result[attribute] = cap
        return result

    @staticmethod
    def _histograms(
        profile: RelationProfile, attributes: Tuple[str, ...]
    ) -> Dict[str, Dict[Hashable, float]]:
        return {
            attribute: approximate_histogram(profile.attribute(attribute))
            for attribute in attributes
        }

    @staticmethod
    def _approximate_join_size(
        left_hists: Mapping[str, Mapping[Hashable, float]],
        right_hists: Mapping[str, Mapping[Hashable, float]],
        shared_attributes: Tuple[str, ...],
    ) -> Optional[float]:
        """``min_s Σ_v ĉ_L(s=v)·ĉ_R(s=v)`` over the approximate histograms."""
        best: Optional[float] = None
        for attribute in shared_attributes:
            total = _per_value_sum(left_hists[attribute], right_hists[attribute])
            best = total if best is None else min(best, total)
        return best

    def _synthetic_profile(
        self,
        op: BinaryJoinOp,
        left_hists: Mapping[str, Mapping[Hashable, float]],
        right_hists: Mapping[str, Mapping[Hashable, float]],
        left_rows: float,
        right_rows: float,
        size_estimate: float,
        size_bound: float,
    ) -> RelationProfile:
        """Exact-mode projected profile of the join ``T = L ⋈ R``.

        Per value ``v`` of attribute ``a`` of the result:

        * ``a`` shared: ``ĉ_L(a=v) · ĉ_R(a=v)`` — with exact inputs this is
          a sound per-value upper bound (pairs matching on *all* shared
          attributes are a subset of pairs matching on ``a``), and the
          exact count when a single attribute is shared.  Join columns are
          where skew lives, so they keep the full per-value shape.
        * ``a`` carried from one side: the side's histogram scaled by the
          mean fan-out ``size_estimate / |side|`` — a calibrated projection
          whose total mass matches the size estimate.  (A sound
          marginal-only bound would be ``count · max-degree`` of the other
          side, which inflates every carried column by the worst heavy
          hitter and makes tightly-budgeted cascade rounds spuriously
          infeasible; the adaptive executor's observed-profile
          re-certification is the sound check that replaces it.)
        """
        shared = set(op.shared_attributes)
        cap = max(1, math.ceil(size_bound))
        left_fanout = size_estimate / left_rows if left_rows else 0.0
        right_fanout = size_estimate / right_rows if right_rows else 0.0
        attributes: Dict[str, AttributeProfile] = {}
        for attribute in op.schema.attributes:
            histogram: Dict[Hashable, int] = {}
            if attribute in shared:
                left_hist = left_hists[attribute]
                right_hist = right_hists[attribute]
                for value, count in left_hist.items():
                    other = right_hist.get(value)
                    if other:
                        scaled = math.ceil(count * other)
                        histogram[value] = min(scaled, cap)
            elif attribute in left_hists:
                for value, count in left_hists[attribute].items():
                    scaled = math.ceil(count * left_fanout)
                    if scaled:
                        histogram[value] = min(scaled, cap)
            else:
                for value, count in right_hists[attribute].items():
                    scaled = math.ceil(count * right_fanout)
                    if scaled:
                        histogram[value] = min(scaled, cap)
            attributes[attribute] = AttributeProfile(
                attribute=attribute,
                total_count=int(sum(histogram.values())),
                distinct_estimate=float(len(histogram)),
                histogram=histogram,
            )
        return RelationProfile(
            name=op.schema.name,
            total_rows=max(1, math.ceil(size_estimate)),
            attributes=attributes,
        )
