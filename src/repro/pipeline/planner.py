"""The multi-round pipeline planner: enumerate cascades, bound, price, rank.

:class:`~repro.planner.planner.CostBasedPlanner` answers "which schema runs
this *one* job best"; this module answers the paper's larger question —
*how many rounds should the computation take at all*:

* a multiway join can run as **one Shares round** (Section 5.5) or as a
  **cascade of binary Shares joins** (left-deep or bushy), each round a
  planned, certified job of its own;
* matrix multiplication can run **one-phase** (a single tiled round) or
  **two-phase** (the Section 6 chain) — the cost model's original
  multi-round crossover;
* aggregations are single trivially-parallel rounds.

For each enumerated round structure the planner prices every round with
the existing single-round stack — candidate enumeration, per-bucket
certification, share optimization — fed by the estimation layer
(:mod:`repro.pipeline.estimate`): intermediate inputs get *synthetic
profiles* whose histograms dominate the truth, so downstream rounds are
certified before a single intermediate record exists.  End-to-end cost is
the sum of per-round costs, with each round's communication term scaled by
the records actually entering that round (the paper's ``a·r`` is
normalized per input record; rounds of one pipeline see very different
input cardinalities, so cross-round sums must re-multiply by them).

The ranked result mirrors :class:`~repro.planner.plan.PlanningResult`;
``result.best.execute(records)`` runs the winning structure on the engine
with adaptive mid-flight re-planning (:mod:`repro.pipeline.execute`).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.cost import ClusterCostModel, CostBreakdown
from repro.core.problem import Problem
from repro.exceptions import PlanningError
from repro.mapreduce.cluster import ClusterConfig
from repro.bounds import BoundRegistry
from repro.pipeline.estimate import SizeEstimator
from repro.pipeline.logical import (
    AggregateOp,
    BinaryJoinOp,
    LogicalOp,
    MatMulRoundOp,
    MultiwayJoinOp,
    enumerate_join_trees,
)
from repro.planner.plan import ExecutionPlan
from repro.planner.planner import CostBasedPlanner
from repro.problems.grouping import GroupByAggregationProblem
from repro.problems.joins import MultiwayJoinProblem, RelationSchema
from repro.problems.matmul import MatrixMultiplicationProblem
from repro.stats.profile import DatasetProfile


@dataclass(frozen=True)
class PipelineRound:
    """One planned round of a pipeline: a logical op bound to a physical plan.

    ``estimated_inputs`` is the record count entering the round (base rows
    plus intermediate size bounds); ``estimated_output`` the upper bound on
    the rows it produces; ``cost`` the round's absolute priced cost —
    ``a·r·inputs`` plus the breakdown's processing and wall-clock terms.
    ``estimate_exact`` records whether every histogram feeding the bounds
    was exact, i.e. whether the round's certificate is a sound upper bound
    on what execution will observe.
    """

    index: int
    op: LogicalOp
    plan: ExecutionPlan
    estimated_inputs: float
    estimated_output: float
    estimate_method: str
    estimate_exact: bool
    cost: float
    #: Sound upper bound on the round's output rows (``estimated_output``
    #: is the calibrated estimate; they coincide for exact profiles).
    estimated_output_bound: float = 0.0
    #: True when the round was certified against a *projected* (synthetic)
    #: intermediate profile: the certificate is a planning estimate, and
    #: the adaptive executor re-certifies it on the observed intermediate
    #: before the round runs.  False means the certificate is already a
    #: sound bound (base relations with exact profiles, or re-planned).
    projected: bool = False

    @property
    def name(self) -> str:
        return self.plan.name

    @property
    def certification(self):
        return self.plan.certification

    @property
    def certified_load(self) -> Optional[float]:
        certification = self.plan.certification
        return certification.bound if certification is not None else None

    @property
    def bound_method(self) -> Optional[str]:
        """How the round's load certificate was derived (None = uncertified)."""
        certification = self.plan.certification
        if certification is None or not certification.method:
            return None
        return certification.method

    def describe(self) -> dict:
        """Flat per-round row for the pipeline's ``describe()`` table."""
        family = self.plan.family
        shares = getattr(family, "shares", None)
        return {
            "round": self.index,
            "op": self.op.label(),
            "plan": self.name,
            "shares": dict(shares) if shares is not None else None,
            "certified": self.plan.certification_label,
            "certified_load": self.certified_load,
            "bound_method": self.bound_method,
            "projected": self.projected,
            "pricing": self.plan.cost_pricing,
            "replication_rate": self.plan.replication_rate,
            "est_inputs": self.estimated_inputs,
            "est_rows_out": self.estimated_output,
            "rows_bound": self.estimated_output_bound,
            "estimate": self.estimate_method,
            "round_cost": self.cost,
        }


@dataclass
class PipelinePlan:
    """One ranked multi-round structure, executable end to end.

    ``rounds`` are in execution order (cascade rounds post-order, children
    before parents).  ``execute`` runs them adaptively: each intermediate
    is profiled in-stream and the remaining rounds re-planned when the
    observed certificate beats or violates the estimate (see
    :func:`repro.pipeline.execute.execute_pipeline`).
    """

    problem: Problem
    op: LogicalOp
    rounds: List[PipelineRound]
    cluster: ClusterConfig
    q_budget: float
    cost_model: ClusterCostModel
    planner: CostBasedPlanner
    profile: Optional[DatasetProfile] = None
    planning_seconds: float = 0.0
    planning_cost: float = 0.0
    rank: int = 0

    @property
    def name(self) -> str:
        return self.op.label()

    @property
    def num_rounds(self) -> int:
        """Total engine rounds (a two-phase matmul entry counts as two)."""
        return sum(round_.plan.rounds for round_ in self.rounds)

    @property
    def total_cost(self) -> float:
        """Summed per-round priced cost plus the priced planning time."""
        return sum(round_.cost for round_ in self.rounds) + self.planning_cost

    @property
    def max_certified_load(self) -> Optional[float]:
        bounds = [r.certified_load for r in self.rounds if r.certified_load is not None]
        return max(bounds) if bounds else None

    @property
    def estimated_communication(self) -> float:
        """Σ per-round replication · inputs — the shipped-records estimate."""
        return sum(
            round_.plan.replication_rate * round_.estimated_inputs
            for round_ in self.rounds
        )

    @property
    def is_cascade(self) -> bool:
        return isinstance(self.op, BinaryJoinOp)

    def describe(self) -> List[dict]:
        """Per-round table: shares vector, certification, pricing, sizes."""
        return [round_.describe() for round_ in self.rounds]

    def execute(
        self,
        records: Sequence[Any],
        engine=None,
        replan: bool = True,
        replan_factor: float = 0.5,
        spill_threshold=None,
        replan_observer=None,
    ):
        """Run the pipeline; see :func:`repro.pipeline.execute.execute_pipeline`.

        ``replan_observer``, when given, is called with each
        :class:`~repro.pipeline.execute.ReplanEvent` as it fires — the
        feedback hook the query service's adaptive ``replan_factor`` tuner
        listens on.
        """
        from repro.pipeline.execute import execute_pipeline

        return execute_pipeline(
            self,
            records,
            engine=engine,
            replan=replan,
            replan_factor=replan_factor,
            spill_threshold=spill_threshold,
            replan_observer=replan_observer,
        )


@dataclass
class PipelinePlanningResult:
    """Ranked pipeline structures for one problem, cheapest first.

    ``rejected`` lists round structures no candidate could serve within
    the budget, with the planner's reason — so reports can show where the
    feasible region ends instead of silently dropping shapes.
    """

    problem: Problem
    q_budget: float
    cluster: ClusterConfig
    plans: List[PipelinePlan] = field(default_factory=list)
    rejected: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def best(self) -> PipelinePlan:
        if not self.plans:
            raise PlanningError(
                f"pipeline planning for {self.problem.name!r} holds no plans"
            )
        return self.plans[0]

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self) -> Iterator[PipelinePlan]:
        return iter(self.plans)

    def __getitem__(self, index: int) -> PipelinePlan:
        return self.plans[index]

    def one_round(self) -> Optional[PipelinePlan]:
        """The single-round structure, when it was feasible."""
        for plan in self.plans:
            if isinstance(plan.op, (MultiwayJoinOp, MatMulRoundOp, AggregateOp)):
                if plan.num_rounds == 1:
                    return plan
        return None

    def cascades(self) -> List[PipelinePlan]:
        return [plan for plan in self.plans if plan.is_cascade]

    def table(self) -> List[dict]:
        """One summary row per ranked structure."""
        return [
            {
                "rank": plan.rank,
                "structure": plan.name,
                "rounds": plan.num_rounds,
                "total_cost": plan.total_cost,
                "max_certified_load": plan.max_certified_load,
                "est_communication": plan.estimated_communication,
                "planning_s": plan.planning_seconds,
            }
            for plan in self.plans
        ]


class PipelinePlanner:
    """Enumerates and prices multi-round structures for a problem.

    Parameters
    ----------
    planner:
        The single-round planner each round is delegated to; defaults to a
        fresh :class:`CostBasedPlanner` over the default registry.
    include_bushy:
        Whether join-tree enumeration includes bushy shapes (left-deep
        trees are always enumerated).
    max_bushy_relations:
        Bushy enumeration cutoff; larger queries fall back to left-deep.
    """

    def __init__(
        self,
        planner: Optional[CostBasedPlanner] = None,
        include_bushy: bool = True,
        max_bushy_relations: int = 6,
        bound_registry: Optional["BoundRegistry"] = None,
    ) -> None:
        self.planner = planner or CostBasedPlanner()
        self.include_bushy = include_bushy
        self.max_bushy_relations = max_bushy_relations
        #: ``None`` means the process-wide default registry; tests pass
        #: :func:`repro.bounds.legacy_bound_registry` to pin pre-refactor
        #: numbers bit-for-bit.
        self.bound_registry = bound_registry

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        problem: Problem,
        cluster: Optional[ClusterConfig] = None,
        q: Optional[float] = None,
        profile: Optional[DatasetProfile] = None,
    ) -> PipelinePlanningResult:
        """Rank every feasible round structure for ``problem`` under ``q``."""
        started = time.perf_counter()
        cluster = cluster or ClusterConfig()
        budget = CostBasedPlanner._resolve_budget(problem, cluster, q)
        model = self.planner.cost_model or ClusterCostModel(
            communication_rate=cluster.communication_cost_per_record,
            processing_rate=cluster.worker_cost_per_unit,
            planning_rate=cluster.planning_cost_per_second,
        )
        with cluster.tracer.span(
            "pipeline-plan", problem=problem.name, q_budget=budget
        ) as span:
            if isinstance(problem, MultiwayJoinProblem):
                plans, rejected = self._join_structures(
                    problem, cluster, budget, model, profile
                )
            elif isinstance(problem, MatrixMultiplicationProblem):
                plans, rejected = self._matmul_structures(
                    problem, cluster, budget, model
                )
            elif isinstance(problem, GroupByAggregationProblem):
                plans, rejected = self._aggregate_structures(
                    problem, cluster, budget, model
                )
            else:
                raise PlanningError(
                    f"the pipeline planner covers joins, matrix multiplication "
                    f"and aggregation; got {type(problem).__name__}"
                )
            if not plans:
                reasons = "; ".join(
                    f"{label}: {reason}" for label, reason in rejected
                )
                raise PlanningError(
                    f"no round structure for {problem.name!r} fits within the "
                    f"reducer-size budget q={budget:g} ({reasons})"
                )
            plans.sort(
                key=lambda plan: (plan.total_cost, plan.num_rounds, plan.name)
            )
            if cluster.tracer.enabled:
                span.set(structures=len(plans), rejected=len(rejected))
        planning_seconds = time.perf_counter() - started
        planning_cost = model.planning_rate * planning_seconds
        registry = cluster.metrics
        if registry.enabled:
            registry.counter(
                "planner_plans_total", "Pipeline planning invocations"
            ).inc()
            registry.counter(
                "planner_structures_total",
                "Feasible round structures enumerated across plans",
            ).inc(len(plans))
            registry.counter(
                "planner_rejected_total",
                "Round structures rejected by the feasibility filter",
            ).inc(len(rejected))
            registry.histogram(
                "planner_seconds", "Wall-clock seconds per planning invocation"
            ).observe(planning_seconds)
        for rank, plan in enumerate(plans):
            plan.rank = rank
            plan.planning_seconds = planning_seconds
            plan.planning_cost = planning_cost
        return PipelinePlanningResult(
            problem=problem,
            q_budget=budget,
            cluster=cluster,
            plans=plans,
            rejected=rejected,
        )

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _join_structures(
        self,
        problem: MultiwayJoinProblem,
        cluster: ClusterConfig,
        budget: float,
        model: ClusterCostModel,
        profile: Optional[DatasetProfile],
    ) -> Tuple[List[PipelinePlan], List[Tuple[str, str]]]:
        query = problem.query
        estimator = SizeEstimator(
            query,
            problem.domain_size,
            profile,
            bounds=self.bound_registry,
            metrics=cluster.metrics,
        )
        plans: List[PipelinePlan] = []
        rejected: List[Tuple[str, str]] = []
        # The one-round Shares structure (Section 5.5).
        one_round_op = MultiwayJoinOp(query)
        try:
            best = self.planner.plan(problem, cluster, q=budget, profile=profile).best
        except PlanningError as error:
            rejected.append((one_round_op.label(), str(error)))
        else:
            inputs = sum(
                estimator.leaf_rows(relation.name) for relation in query.relations
            )
            output, output_method = estimator.query_output_bound()
            plans.append(
                PipelinePlan(
                    problem=problem,
                    op=one_round_op,
                    rounds=[
                        PipelineRound(
                            index=0,
                            op=one_round_op,
                            plan=best,
                            estimated_inputs=inputs,
                            estimated_output=output,
                            estimate_method=output_method,
                            estimate_exact=estimator.profile is not None
                            and estimator.profile.exact,
                            cost=_round_cost(best.cost, inputs),
                            estimated_output_bound=output,
                        )
                    ],
                    cluster=cluster,
                    q_budget=budget,
                    cost_model=model,
                    planner=self.planner,
                    profile=profile,
                )
            )
        # Every cascade of binary Shares joins.
        for tree in enumerate_join_trees(
            query,
            include_bushy=self.include_bushy,
            max_bushy_relations=self.max_bushy_relations,
        ):
            try:
                plans.append(
                    self._plan_cascade(
                        problem, tree, estimator, cluster, budget, model, profile
                    )
                )
            except PlanningError as error:
                rejected.append((tree.label(), str(error)))
        return plans, rejected

    def _plan_cascade(
        self,
        problem: MultiwayJoinProblem,
        tree: BinaryJoinOp,
        estimator: SizeEstimator,
        cluster: ClusterConfig,
        budget: float,
        model: ClusterCostModel,
        profile: Optional[DatasetProfile],
    ) -> PipelinePlan:
        rounds: List[PipelineRound] = []
        for index, node in enumerate(tree.post_order()):
            round_problem = MultiwayJoinProblem(
                node.round_query(), problem.domain_size
            )
            round_profile = estimator.round_profile(node)
            try:
                best = self.planner.plan(
                    round_problem, cluster, q=budget, profile=round_profile
                ).best
            except PlanningError as error:
                raise PlanningError(
                    f"round {index} ({node.schema.name}): {error}"
                ) from error
            estimate = estimator.estimate(node)
            inputs = estimator.round_input_records(node)
            rounds.append(
                PipelineRound(
                    index=index,
                    op=node,
                    plan=best,
                    estimated_inputs=inputs,
                    estimated_output=estimate.size_estimate,
                    estimate_method=estimate.method,
                    estimate_exact=estimate.exact_inputs,
                    cost=_round_cost(best.cost, inputs),
                    estimated_output_bound=estimate.size_bound,
                    projected=any(
                        estimator.estimate(child).projected
                        for child in (node.left, node.right)
                    ),
                )
            )
        return PipelinePlan(
            problem=problem,
            op=tree,
            rounds=rounds,
            cluster=cluster,
            q_budget=budget,
            cost_model=model,
            planner=self.planner,
            profile=profile,
        )

    # ------------------------------------------------------------------
    # Matrix multiplication: 1-phase vs 2-phase
    # ------------------------------------------------------------------
    def _matmul_structures(
        self,
        problem: MatrixMultiplicationProblem,
        cluster: ClusterConfig,
        budget: float,
        model: ClusterCostModel,
    ) -> Tuple[List[PipelinePlan], List[Tuple[str, str]]]:
        try:
            result = self.planner.plan(problem, cluster, q=budget)
        except PlanningError as error:
            return [], [(f"matmul(n={problem.n})", str(error))]
        plans: List[PipelinePlan] = []
        inputs = float(problem.num_inputs)
        for plan in result:
            op = MatMulRoundOp(problem.n, phases=plan.rounds)
            plans.append(
                PipelinePlan(
                    problem=problem,
                    op=op,
                    rounds=[
                        PipelineRound(
                            index=0,
                            op=op,
                            plan=plan,
                            estimated_inputs=inputs,
                            estimated_output=float(problem.num_outputs),
                            estimate_method="closed-form",
                            estimate_exact=True,
                            cost=_round_cost(plan.cost, inputs),
                        )
                    ],
                    cluster=cluster,
                    q_budget=budget,
                    cost_model=model,
                    planner=self.planner,
                )
            )
        return plans, []

    # ------------------------------------------------------------------
    # Aggregation: a single trivially-parallel round
    # ------------------------------------------------------------------
    def _aggregate_structures(
        self,
        problem: GroupByAggregationProblem,
        cluster: ClusterConfig,
        budget: float,
        model: ClusterCostModel,
    ) -> Tuple[List[PipelinePlan], List[Tuple[str, str]]]:
        try:
            result = self.planner.plan(problem, cluster, q=budget)
        except PlanningError as error:
            return [], [(problem.name, str(error))]
        input_schema = RelationSchema(name=problem.name, attributes=("A", "B"))
        plans: List[PipelinePlan] = []
        inputs = float(problem.num_inputs)
        for plan in result:
            op = AggregateOp(group_attribute="A", input_schema=input_schema)
            plans.append(
                PipelinePlan(
                    problem=problem,
                    op=op,
                    rounds=[
                        PipelineRound(
                            index=0,
                            op=op,
                            plan=plan,
                            estimated_inputs=inputs,
                            estimated_output=float(problem.a_domain_size),
                            estimate_method="closed-form",
                            estimate_exact=True,
                            cost=_round_cost(plan.cost, inputs),
                        )
                    ],
                    cluster=cluster,
                    q_budget=budget,
                    cost_model=model,
                    planner=self.planner,
                )
            )
        return plans, []


def _round_cost(breakdown: CostBreakdown, inputs: float) -> float:
    """Absolute priced cost of one round over ``inputs`` records.

    ``breakdown.communication_cost`` is ``a·r`` — normalized per input
    record — so the cross-round sum re-multiplies it by the records
    entering the round.  The breakdown's own planning term is excluded:
    pipeline-level planning time (which already contains the per-round
    planner calls) is priced once on the whole pipeline.
    """
    return (
        breakdown.communication_cost * inputs
        + breakdown.processing_cost
        + breakdown.wall_clock_cost
    )


def replan_round(
    round_: PipelineRound,
    plan: PipelinePlan,
    observed_profile: DatasetProfile,
) -> PipelineRound:
    """Re-plan one cascade round against an observed intermediate profile.

    Used by the adaptive executor: the round's two-relation problem is
    re-planned from scratch with the *materialized* intermediate's exact
    profile, and the round's pricing re-derived from the observed input
    cardinality.  Raises :class:`PlanningError` when nothing fits — the
    executor then keeps the original (still sound) plan.
    """
    if not isinstance(round_.op, BinaryJoinOp):
        raise PlanningError("only cascade join rounds can be re-planned")
    round_problem = MultiwayJoinProblem(
        round_.op.round_query(), plan.problem.domain_size
    )
    best = plan.planner.plan(
        round_problem, plan.cluster, q=plan.q_budget, profile=observed_profile
    ).best
    inputs = float(
        sum(
            observed_profile.relation(child.schema.name).total_rows
            for child in (round_.op.left, round_.op.right)
        )
    )
    return dataclasses.replace(
        round_,
        plan=best,
        estimated_inputs=inputs,
        cost=_round_cost(best.cost, inputs),
        # Certified against the materialized intermediate: a sound bound.
        projected=False,
    )
