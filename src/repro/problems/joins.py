"""Join problems: natural join, chain joins, star joins (Sections 2.1, 5.5).

The join problems are parameterized by a *query hypergraph*: nodes are
attributes (variables), hyperedges are relation schemas.  The size bound on
the number of outputs coverable with ``q`` inputs is ``g(q) = q^ρ`` where
``ρ`` is the optimal fractional edge cover value of the hypergraph
(Atserias–Grohe–Marx), computed in :mod:`repro.analysis.fractional_cover`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.problem import InputId, OutputId, Problem
from repro.exceptions import ConfigurationError, ProblemDomainError


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation in a join query: a name plus attribute names."""

    name: str
    attributes: Tuple[str, ...]

    @property
    def arity(self) -> int:
        return len(self.attributes)


class JoinQuery:
    """A multiway natural-join query, i.e. a named query hypergraph."""

    def __init__(self, relations: Sequence[RelationSchema], name: str = "join-query") -> None:
        if not relations:
            raise ConfigurationError("a join query needs at least one relation")
        names = [relation.name for relation in relations]
        if len(set(names)) != len(names):
            raise ConfigurationError("relation names in a join query must be distinct")
        self.relations: Tuple[RelationSchema, ...] = tuple(relations)
        self.name = name

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes (hypergraph nodes) in first-appearance order."""
        seen: List[str] = []
        for relation in self.relations:
            for attribute in relation.attributes:
                if attribute not in seen:
                    seen.append(attribute)
        return tuple(seen)

    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    def hyperedges(self) -> List[FrozenSet[str]]:
        """The hypergraph's edges: one attribute set per relation."""
        return [frozenset(relation.attributes) for relation in self.relations]

    def relation(self, name: str) -> RelationSchema:
        """The named relation's schema."""
        for relation in self.relations:
            if relation.name == name:
                return relation
        raise ConfigurationError(
            f"query {self.name!r} has no relation {name!r} "
            f"(relations: {[r.name for r in self.relations]})"
        )

    def induced(self, relation_names: Sequence[str], name: Optional[str] = None) -> "JoinQuery":
        """The sub-query over a subset of this query's relations.

        Relations keep their schemas and this query's relative order.  The
        multi-round pipeline planner uses induced sub-queries to price and
        bound the intermediate result of a cascade subtree (e.g. the AGM
        bound of ``R1 ⋈ R2`` inside a longer chain).
        """
        wanted = set(relation_names)
        unknown = wanted - {relation.name for relation in self.relations}
        if unknown:
            raise ConfigurationError(
                f"query {self.name!r} has no relations {sorted(unknown)}"
            )
        kept = [relation for relation in self.relations if relation.name in wanted]
        return JoinQuery(
            kept,
            name=name or f"{self.name}[{'+'.join(r.name for r in kept)}]",
        )

    def connected(self, relation_names: Optional[Sequence[str]] = None) -> bool:
        """Whether the join graph over the given relations is connected.

        Two relations are adjacent when they share at least one attribute.
        A cascade planner only joins connected subsets — joining a
        disconnected pair is a cross product, which the Shares analysis
        (and this library's enumeration) deliberately avoids.
        """
        names = (
            [relation.name for relation in self.relations]
            if relation_names is None
            else list(relation_names)
        )
        if not names:
            return False
        schemas = {name: self.relation(name) for name in names}
        visited = {names[0]}
        frontier = [names[0]]
        while frontier:
            current = schemas[frontier.pop()]
            for other in names:
                if other in visited:
                    continue
                if set(current.attributes) & set(schemas[other].attributes):
                    visited.add(other)
                    frontier.append(other)
        return len(visited) == len(names)

    # -- standard query shapes -----------------------------------------
    @classmethod
    def binary_join(cls) -> "JoinQuery":
        """R(A,B) ⋈ S(B,C) — the Example 2.1 join."""
        return cls(
            [
                RelationSchema("R", ("A", "B")),
                RelationSchema("S", ("B", "C")),
            ],
            name="binary-join",
        )

    @classmethod
    def chain(cls, num_relations: int) -> "JoinQuery":
        """R1(A0,A1) ⋈ R2(A1,A2) ⋈ ... ⋈ RN(A_{N-1}, A_N)."""
        if num_relations < 2:
            raise ConfigurationError("a chain join needs at least two relations")
        relations = [
            RelationSchema(f"R{index + 1}", (f"A{index}", f"A{index + 1}"))
            for index in range(num_relations)
        ]
        return cls(relations, name=f"chain-join-{num_relations}")

    @classmethod
    def star(cls, num_dimensions: int) -> "JoinQuery":
        """F(K1..KN) ⋈ D1(K1,V1) ⋈ ... ⋈ DN(KN,VN)."""
        if num_dimensions < 1:
            raise ConfigurationError("a star join needs at least one dimension table")
        fact = RelationSchema("F", tuple(f"K{i + 1}" for i in range(num_dimensions)))
        dimensions = [
            RelationSchema(f"D{i + 1}", (f"K{i + 1}", f"V{i + 1}"))
            for i in range(num_dimensions)
        ]
        return cls([fact] + dimensions, name=f"star-join-{num_dimensions}")

    @classmethod
    def cycle(cls, length: int) -> "JoinQuery":
        """R1(A0,A1) ⋈ ... ⋈ RL(A_{L-1}, A0) — a cyclic binary-relation join."""
        if length < 3:
            raise ConfigurationError("a cycle join needs at least three relations")
        relations = [
            RelationSchema(
                f"R{index + 1}",
                (f"A{index}", f"A{(index + 1) % length}"),
            )
            for index in range(length)
        ]
        return cls(relations, name=f"cycle-join-{length}")


class MultiwayJoinProblem(Problem):
    """The multiway-join problem over a finite attribute domain of size n.

    Inputs are all possible tuples of every relation in the query; outputs
    are all assignments of domain values to the query's attributes.  An
    output depends on one tuple per relation — the projection of the
    assignment onto that relation's schema.
    """

    def __init__(self, query: JoinQuery, domain_size: int, rho: Optional[float] = None) -> None:
        if domain_size <= 0:
            raise ConfigurationError(f"domain size must be positive, got {domain_size}")
        self.query = query
        self.domain_size = domain_size
        self._rho = rho
        self.name = f"{query.name}(n={domain_size})"

    # ------------------------------------------------------------------
    # Domain
    # ------------------------------------------------------------------
    def inputs(self) -> Iterator[InputId]:
        """Each input is (relation name, tuple of attribute values)."""
        for relation in self.query.relations:
            for values in itertools.product(range(self.domain_size), repeat=relation.arity):
                yield (relation.name, values)

    def outputs(self) -> Iterator[OutputId]:
        """Each output is a full assignment: a tuple of values, one per attribute."""
        for values in itertools.product(
            range(self.domain_size), repeat=self.query.num_attributes
        ):
            yield values

    def inputs_of(self, output: OutputId) -> FrozenSet[InputId]:
        assignment = self._assignment(output)
        needed = set()
        for relation in self.query.relations:
            projected = tuple(assignment[attribute] for attribute in relation.attributes)
            needed.add((relation.name, projected))
        return frozenset(needed)

    def _assignment(self, output: OutputId) -> Dict[str, int]:
        attributes = self.query.attributes
        if not isinstance(output, tuple) or len(output) != len(attributes):
            raise ProblemDomainError(
                f"output {output!r} is not an assignment to {len(attributes)} attributes"
            )
        for value in output:
            if not (0 <= value < self.domain_size):
                raise ProblemDomainError(
                    f"output {output!r} has a value outside [0, {self.domain_size})"
                )
        return dict(zip(attributes, output))

    # ------------------------------------------------------------------
    # Counts and g(q)
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return sum(self.domain_size ** relation.arity for relation in self.query.relations)

    @property
    def num_outputs(self) -> int:
        return self.domain_size ** self.query.num_attributes

    @property
    def rho(self) -> float:
        """The fractional edge cover value ρ used in g(q) = q^ρ.

        Computed lazily from the query hypergraph unless supplied at
        construction time.  Imported here (not at module import) to keep the
        problems package import-light.
        """
        if self._rho is None:
            from repro.analysis.fractional_cover import fractional_edge_cover

            self._rho = fractional_edge_cover(self.query).value
        return self._rho

    def max_outputs_covered(self, q: float) -> float:
        """AGM-style bound ``g(q) = q^ρ`` (constant factors dropped)."""
        if q <= 0:
            return 0.0
        return float(q) ** self.rho

    # ------------------------------------------------------------------
    # Closed-form lower bounds (Section 5.5.1)
    # ------------------------------------------------------------------
    def lower_bound(self, q: float) -> float:
        """``r >= n^{m-2} / q^{ρ-1}`` with m attributes and domain size n."""
        if q <= 0:
            return float("inf")
        n = self.domain_size
        m = self.query.num_attributes
        return max(1.0, n ** (m - 2) / q ** (self.rho - 1.0))

    def chain_lower_bound(self, q: float) -> float:
        """Chain-join specialisation ``r >= (n/√q)^{N-1}`` (Section 5.5.2)."""
        if q <= 0:
            return float("inf")
        num_relations = self.query.num_relations
        return max(1.0, (self.domain_size / math.sqrt(q)) ** (num_relations - 1))

    def describe(self) -> dict:
        return {
            "name": self.name,
            "relations": self.query.num_relations,
            "attributes": self.query.num_attributes,
            "domain_size": self.domain_size,
            "num_inputs": self.num_inputs,
            "num_outputs": self.num_outputs,
            "rho": self.rho,
        }


class NaturalJoinProblem(MultiwayJoinProblem):
    """The two-relation natural join R(A,B) ⋈ S(B,C) of Example 2.1.

    Provided as its own class because the paper uses it as the introductory
    example; it is simply the chain join with two relations.
    """

    def __init__(self, domain_size: int) -> None:
        super().__init__(JoinQuery.binary_join(), domain_size)
        self.name = f"natural-join(n={domain_size})"
