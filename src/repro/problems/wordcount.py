"""Word count (Example 2.5): the embarrassingly parallel corner of the model.

The subtlety the paper points out is the choice of what counts as an input.
If inputs are *word occurrences* rather than documents, each input produces
exactly one key-value pair, the replication rate is identically 1 and there
is no tradeoff with reducer size.  This module models both views so the
example can be demonstrated and tested.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

from repro.core.problem import InputId, OutputId, Problem
from repro.exceptions import ConfigurationError, ProblemDomainError
from repro.mapreduce.job import MapReduceJob


class WordCountProblem(Problem):
    """Count occurrences of each word over a finite vocabulary.

    Inputs are word *occurrences* ``(position, word)`` — the paper's
    preferred modelling — over a given corpus; outputs are one count per
    vocabulary word that appears at least once somewhere in the domain.
    """

    def __init__(self, corpus: Sequence[Sequence[str]]) -> None:
        if not corpus:
            raise ConfigurationError("word count needs a non-empty corpus")
        self.corpus = [list(document) for document in corpus]
        self.name = f"word-count(documents={len(self.corpus)})"
        self._occurrences: List[Tuple[int, int, str]] = []
        multiplicities: Dict[str, int] = {}
        for doc_index, document in enumerate(self.corpus):
            for word_index, word in enumerate(document):
                self._occurrences.append((doc_index, word_index, word))
                multiplicities[word] = multiplicities.get(word, 0) + 1
        if not self._occurrences:
            raise ConfigurationError("word count corpus contains no words")
        self._peak_multiplicity = max(multiplicities.values())

    def inputs(self) -> Iterator[InputId]:
        return iter(self._occurrences)

    def outputs(self) -> Iterator[OutputId]:
        vocabulary = sorted({word for _, _, word in self._occurrences})
        return iter(vocabulary)

    def inputs_of(self, output: OutputId) -> FrozenSet[InputId]:
        occurrences = frozenset(
            occurrence for occurrence in self._occurrences if occurrence[2] == output
        )
        if not occurrences:
            raise ProblemDomainError(f"word {output!r} does not occur in the corpus")
        return occurrences

    @property
    def num_inputs(self) -> int:
        return len(self._occurrences)

    @property
    def peak_multiplicity(self) -> int:
        """Largest per-word occurrence count — the job's exact max reducer size.

        Precomputed at construction so planner candidate enumeration (which
        runs once per budget of a sweep) never rescans the corpus.
        """
        return self._peak_multiplicity

    def max_outputs_covered(self, q: float) -> float:
        """A reducer with q occurrence inputs covers at most q word outputs.

        (Each occurrence belongs to exactly one word.)  With g(q) = q the
        recipe gives r >= |O|·q / (q·|I|) = |O|/|I| <= 1, i.e. only the
        trivial bound — confirming the problem is embarrassingly parallel.
        """
        return max(0.0, float(q))

    def word_counts(self) -> Dict[str, int]:
        """Serial oracle: the expected output of the map-reduce job."""
        counts: Dict[str, int] = {}
        for _, _, word in self._occurrences:
            counts[word] = counts.get(word, 0) + 1
        return counts

    def job(self) -> MapReduceJob:
        """The canonical word-count job over occurrence inputs.

        Each occurrence maps to exactly one ``(word, 1)`` pair, so the job's
        measured replication rate is exactly 1 whatever the reducer limit.
        """

        def mapper(occurrence: Tuple[int, int, str]):
            _, _, word = occurrence
            yield (word, 1)

        def reducer(word: str, ones: List[int]):
            yield (word, sum(ones))

        return MapReduceJob(mapper=mapper, reducer=reducer, name="word-count")
