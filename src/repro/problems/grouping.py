"""Grouping and aggregation (Example 2.4): SELECT A, SUM(B) GROUP BY A.

This example illustrates outputs whose value is *computed from* whichever of
their associated inputs are actually present: the output for a group key
``a`` exists as soon as any tuple with A-value ``a`` is present, and its
value is the sum of the B-values that are present.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.core.problem import InputId, OutputId, Problem
from repro.exceptions import ConfigurationError, ProblemDomainError
from repro.mapreduce.job import MapReduceJob


class GroupByAggregationProblem(Problem):
    """Group-by-and-sum over a relation R(A, B) with finite domains.

    Inputs are all possible tuples ``(a, b)`` with ``a`` in the A-domain and
    ``b`` in the B-domain; outputs are one aggregate per A-value.  Each
    output depends on the full set of tuples sharing its A-value.
    """

    def __init__(self, a_domain_size: int, b_domain_size: int) -> None:
        if a_domain_size <= 0 or b_domain_size <= 0:
            raise ConfigurationError("both attribute domains must be non-empty")
        self.a_domain_size = a_domain_size
        self.b_domain_size = b_domain_size
        self.name = f"group-by-sum(|A|={a_domain_size}, |B|={b_domain_size})"

    def inputs(self) -> Iterator[InputId]:
        for a in range(self.a_domain_size):
            for b in range(self.b_domain_size):
                yield (a, b)

    def outputs(self) -> Iterator[OutputId]:
        return iter(range(self.a_domain_size))

    def inputs_of(self, output: OutputId) -> FrozenSet[InputId]:
        if not isinstance(output, int) or not (0 <= output < self.a_domain_size):
            raise ProblemDomainError(
                f"group key {output!r} outside the A-domain of size {self.a_domain_size}"
            )
        return frozenset((output, b) for b in range(self.b_domain_size))

    @property
    def num_inputs(self) -> int:
        return self.a_domain_size * self.b_domain_size

    @property
    def num_outputs(self) -> int:
        return self.a_domain_size

    def max_outputs_covered(self, q: float) -> float:
        """A reducer with q tuple inputs covers at most ``q / |B|`` groups
        fully, but because a group's aggregate only needs the *present*
        tuples, the appropriate g(q) for the covering argument is the number
        of distinct A-values among q tuples, which is at most q.

        As with word count, the recipe then yields only the trivial bound,
        reflecting that grouping/aggregation is embarrassingly parallel when
        combiners are allowed.
        """
        return max(0.0, float(q))

    def aggregate_oracle(self, tuples: List[Tuple[int, int]]) -> Dict[int, int]:
        """Serial oracle: SUM(B) per A over the actually-present tuples."""
        sums: Dict[int, int] = {}
        for a, b in tuples:
            if not (0 <= a < self.a_domain_size and 0 <= b < self.b_domain_size):
                raise ProblemDomainError(f"tuple ({a}, {b}) outside the declared domains")
            sums[a] = sums.get(a, 0) + b
        return sums

    def job(self, use_combiner: bool = True) -> MapReduceJob:
        """Map-reduce job computing SELECT A, SUM(B) GROUP BY A."""

        def mapper(record: Tuple[int, int]):
            a, b = record
            yield (a, b)

        def reducer(a: int, values: List[int]):
            yield (a, sum(values))

        def combiner(a: int, values: List[int]):
            yield (a, sum(values))

        return MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            combiner=combiner if use_combiner else None,
            name="group-by-sum",
        )
