"""Concrete problems from the paper, expressed in the input/output model.

Each problem class provides the domain enumeration, the dependency mapping,
closed-form |I| / |O| counts, the coverage bound g(q), and the closed-form
lower bound on replication rate where the paper derives one.
"""

from repro.problems.grouping import GroupByAggregationProblem
from repro.problems.hamming import HammingDistanceProblem, hamming_g
from repro.problems.joins import (
    JoinQuery,
    MultiwayJoinProblem,
    NaturalJoinProblem,
    RelationSchema,
)
from repro.problems.matmul import MatrixMultiplicationProblem, matmul_g
from repro.problems.subgraphs import (
    SampleGraph,
    SampleGraphProblem,
    TwoPathProblem,
)
from repro.problems.triangles import TriangleProblem, triangle_g
from repro.problems.wordcount import WordCountProblem

__all__ = [
    "GroupByAggregationProblem",
    "HammingDistanceProblem",
    "JoinQuery",
    "MatrixMultiplicationProblem",
    "MultiwayJoinProblem",
    "NaturalJoinProblem",
    "RelationSchema",
    "SampleGraph",
    "SampleGraphProblem",
    "TriangleProblem",
    "TwoPathProblem",
    "WordCountProblem",
    "hamming_g",
    "matmul_g",
    "triangle_g",
]
